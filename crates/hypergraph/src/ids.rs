//! Strongly typed identifiers for vertices, nets, and partitions.
//!
//! These are thin `u32`-backed newtypes. The extra type safety prevents the
//! classic bug family where a net index is used to index a vertex array —
//! while `index()` keeps hot loops free of conversion noise.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $letter:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw `u32` index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `raw` does not fit in `u32`.
            #[inline]
            pub fn from_index(raw: usize) -> Self {
                Self(u32::try_from(raw).expect("id overflows u32"))
            }

            /// Returns the raw index as `usize`, suitable for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a vertex (cell / module) in a [`crate::Hypergraph`].
    VertexId,
    "v"
);

id_type!(
    /// Identifier of a net (hyperedge) in a [`crate::Hypergraph`].
    NetId,
    "e"
);

/// Identifier of one side of a bipartitioning: partition 0 or partition 1.
///
/// The engines in this workspace are 2-way partitioners (the paper addresses
/// only FM-based 2-way partitioning), so the partition id is a dedicated
/// two-valued type rather than a general integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum PartId {
    /// Partition 0 (by convention the "left" side).
    #[default]
    P0,
    /// Partition 1 (by convention the "right" side).
    P1,
}

impl PartId {
    /// Both partitions, in order.
    pub const ALL: [PartId; 2] = [PartId::P0, PartId::P1];

    /// Returns the opposite partition.
    ///
    /// ```
    /// use hypart_hypergraph::PartId;
    /// assert_eq!(PartId::P0.other(), PartId::P1);
    /// assert_eq!(PartId::P1.other(), PartId::P0);
    /// ```
    #[inline]
    pub const fn other(self) -> PartId {
        match self {
            PartId::P0 => PartId::P1,
            PartId::P1 => PartId::P0,
        }
    }

    /// Returns 0 for `P0` and 1 for `P1`, suitable for array indexing.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            PartId::P0 => 0,
            PartId::P1 => 1,
        }
    }

    /// Builds a `PartId` from an index.
    ///
    /// Returns `None` if `index > 1`.
    #[inline]
    pub const fn from_index(index: usize) -> Option<PartId> {
        match index {
            0 => Some(PartId::P0),
            1 => Some(PartId::P1),
            _ => None,
        }
    }
}

impl fmt::Display for PartId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_round_trip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(VertexId::from_index(42), v);
        assert_eq!(usize::from(v), 42);
    }

    #[test]
    fn net_id_debug_format() {
        assert_eq!(format!("{:?}", NetId::new(7)), "e7");
        assert_eq!(format!("{:?}", VertexId::new(7)), "v7");
        assert_eq!(format!("{}", NetId::new(7)), "7");
    }

    #[test]
    fn part_id_other_is_involution() {
        for p in PartId::ALL {
            assert_eq!(p.other().other(), p);
            assert_ne!(p.other(), p);
        }
    }

    #[test]
    fn part_id_index_round_trip() {
        assert_eq!(PartId::from_index(0), Some(PartId::P0));
        assert_eq!(PartId::from_index(1), Some(PartId::P1));
        assert_eq!(PartId::from_index(2), None);
        assert_eq!(PartId::P1.index(), 1);
    }

    #[test]
    #[should_panic(expected = "id overflows u32")]
    fn from_index_overflow_panics() {
        let _ = VertexId::from_index(usize::MAX);
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(NetId::new(0) < NetId::new(100));
    }
}
