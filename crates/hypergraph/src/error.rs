//! Error types for hypergraph construction and parsing.

use std::error::Error;
use std::fmt;

/// Error produced while building a [`crate::Hypergraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// A net referenced a vertex id that was never added.
    UnknownVertex {
        /// Index of the offending net (in insertion order).
        net: usize,
        /// The out-of-range vertex index.
        vertex: u32,
        /// Number of vertices actually present.
        num_vertices: usize,
    },
    /// A net was added with no pins at all.
    EmptyNet {
        /// Index of the offending net (in insertion order).
        net: usize,
    },
    /// A fixed-vertex assignment referenced an unknown vertex.
    FixUnknownVertex {
        /// The out-of-range vertex index.
        vertex: u32,
        /// Number of vertices actually present.
        num_vertices: usize,
    },
    /// Total pin count overflows the `u32` CSR offsets.
    TooManyPins,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownVertex {
                net,
                vertex,
                num_vertices,
            } => write!(
                f,
                "net {net} references vertex {vertex} but only {num_vertices} vertices exist"
            ),
            BuildError::EmptyNet { net } => write!(f, "net {net} has no pins"),
            BuildError::FixUnknownVertex {
                vertex,
                num_vertices,
            } => write!(
                f,
                "fixed assignment references vertex {vertex} but only {num_vertices} vertices exist"
            ),
            BuildError::TooManyPins => write!(f, "total pin count exceeds u32 capacity"),
        }
    }
}

impl Error for BuildError {}

/// Error produced while parsing a hypergraph or partition file.
#[derive(Debug)]
#[non_exhaustive]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file violated the expected syntax.
    Syntax {
        /// 1-based line number of the offense.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parsed structure failed hypergraph validation.
    Build(BuildError),
}

impl ParseError {
    /// Convenience constructor for a syntax error at `line`.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        ParseError::Syntax {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Build(e) => write!(f, "invalid hypergraph: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Build(e) => Some(e),
            ParseError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

impl From<BuildError> for ParseError {
    fn from(e: BuildError) -> Self {
        ParseError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_error_messages_are_informative() {
        let e = BuildError::UnknownVertex {
            net: 3,
            vertex: 10,
            num_vertices: 5,
        };
        let s = e.to_string();
        assert!(s.contains("net 3"));
        assert!(s.contains("vertex 10"));
        assert!(s.contains("5 vertices"));
    }

    #[test]
    fn parse_error_wraps_sources() {
        let io = ParseError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.source().is_some());
        let b = ParseError::from(BuildError::EmptyNet { net: 0 });
        assert!(b.source().is_some());
        let s = ParseError::syntax(12, "bad token");
        assert!(s.source().is_none());
        assert!(s.to_string().contains("line 12"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BuildError>();
        assert_send_sync::<ParseError>();
    }
}
