//! The immutable [`Hypergraph`] structure.

use crate::ids::{NetId, PartId, VertexId};

/// An immutable vertex- and net-weighted hypergraph with optional fixed
/// vertices, stored in CSR form in both directions.
///
/// Construct one with [`crate::HypergraphBuilder`]. Once built, the structure
/// is immutable; partitioning engines keep their mutable state (partition
/// assignments, gain containers) outside the hypergraph so that many
/// concurrent runs can share one instance.
///
/// # Representation
///
/// * net → pins: `net_pin_offsets` / `net_pin_list` (CSR)
/// * vertex → incident nets: `vertex_net_offsets` / `vertex_net_list` (CSR)
/// * `vertex_weights[v]`: cell area of `v` (`u64`)
/// * `net_weights[e]`: weight of net `e` (`u32`, typically 1)
/// * `fixed[v]`: `Some(part)` if vertex `v` is preplaced
#[derive(Clone, Debug)]
pub struct Hypergraph {
    name: String,
    net_pin_offsets: Vec<u32>,
    net_pin_list: Vec<VertexId>,
    vertex_net_offsets: Vec<u32>,
    vertex_net_list: Vec<NetId>,
    vertex_weights: Vec<u64>,
    net_weights: Vec<u32>,
    fixed: Vec<Option<PartId>>,
    total_vertex_weight: u64,
    num_fixed: usize,
}

/// Reusable scratch for the inverse-CSR counting pass of hypergraph
/// construction.
///
/// [`crate::HypergraphBuilder::build_in`] runs its vertex-degree counting
/// and scatter cursors inside this arena instead of allocating two
/// `O(|V|)` vectors per build. The arenas grow on demand and are kept, so
/// a caller that builds many hypergraphs in sequence (the multilevel
/// coarsener builds one per level per start) pays the allocation once.
#[derive(Clone, Debug, Default)]
pub struct CsrScratch {
    /// Vertex degrees, then re-used as scatter cursors.
    degree: Vec<u32>,
    /// Scatter cursors (next free inverse-CSR slot per vertex).
    cursor: Vec<u32>,
}

impl CsrScratch {
    /// Creates an empty scratch; arenas grow on first use.
    pub fn new() -> Self {
        CsrScratch::default()
    }
}

impl Hypergraph {
    /// Assembles a hypergraph from raw CSR parts, running the inverse-CSR
    /// counting pass in recycled `scratch`. The offset accumulator is
    /// `u32`: the builder rejects pin counts beyond `u32::MAX` with
    /// [`crate::BuildError::TooManyPins`] before reaching this point, and
    /// the debug assertion below guards any future internal caller that
    /// might skip that check (an unchecked overflow here would silently
    /// corrupt the CSR).
    pub(crate) fn from_parts_in(
        name: String,
        net_pin_offsets: Vec<u32>,
        net_pin_list: Vec<VertexId>,
        vertex_weights: Vec<u64>,
        net_weights: Vec<u32>,
        fixed: Vec<Option<PartId>>,
        scratch: &mut CsrScratch,
    ) -> Self {
        let num_vertices = vertex_weights.len();
        debug_assert_eq!(net_pin_offsets.len(), net_weights.len() + 1);
        debug_assert_eq!(fixed.len(), num_vertices);
        debug_assert!(
            u32::try_from(net_pin_list.len()).is_ok(),
            "pin count {} overflows the u32 CSR offsets — builders must \
             reject this with BuildError::TooManyPins",
            net_pin_list.len()
        );

        // Build the inverse (vertex -> nets) CSR with a counting pass.
        let degree = &mut scratch.degree;
        degree.clear();
        degree.resize(num_vertices, 0);
        for &v in &net_pin_list {
            degree[v.index()] += 1;
        }
        let mut vertex_net_offsets = Vec::with_capacity(num_vertices + 1);
        let mut acc = 0u32;
        vertex_net_offsets.push(0);
        for &d in degree.iter() {
            acc += d;
            vertex_net_offsets.push(acc);
        }
        let cursor = &mut scratch.cursor;
        cursor.clear();
        cursor.extend_from_slice(&vertex_net_offsets[..num_vertices]);
        let mut vertex_net_list = vec![NetId::new(0); net_pin_list.len()];
        for e in 0..net_weights.len() {
            let start = net_pin_offsets[e] as usize;
            let end = net_pin_offsets[e + 1] as usize;
            for &v in &net_pin_list[start..end] {
                let slot = cursor[v.index()];
                vertex_net_list[slot as usize] = NetId::from_index(e);
                cursor[v.index()] = slot + 1;
            }
        }

        let total_vertex_weight = vertex_weights.iter().sum();
        let num_fixed = fixed.iter().filter(|f| f.is_some()).count();

        Hypergraph {
            name,
            net_pin_offsets,
            net_pin_list,
            vertex_net_offsets,
            vertex_net_list,
            vertex_weights,
            net_weights,
            fixed,
            total_vertex_weight,
            num_fixed,
        }
    }

    /// Human-readable instance name (e.g. `"ibm01s"`); empty if unnamed.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices (cells).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of nets (hyperedges).
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Total number of pins (sum of net sizes).
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.net_pin_list.len()
    }

    /// Iterator over all vertex ids, `v0 .. v(n-1)`.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = VertexId> + Clone {
        (0..self.num_vertices() as u32).map(VertexId::new)
    }

    /// Iterator over all net ids, `e0 .. e(m-1)`.
    pub fn nets(&self) -> impl ExactSizeIterator<Item = NetId> + Clone {
        (0..self.num_nets() as u32).map(NetId::new)
    }

    /// The pins (member vertices) of net `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn net_pins(&self, e: NetId) -> &[VertexId] {
        let start = self.net_pin_offsets[e.index()] as usize;
        let end = self.net_pin_offsets[e.index() + 1] as usize;
        &self.net_pin_list[start..end]
    }

    /// The size (pin count) of net `e`.
    #[inline]
    pub fn net_size(&self, e: NetId) -> usize {
        (self.net_pin_offsets[e.index() + 1] - self.net_pin_offsets[e.index()]) as usize
    }

    /// The nets incident to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn vertex_nets(&self, v: VertexId) -> &[NetId] {
        let start = self.vertex_net_offsets[v.index()] as usize;
        let end = self.vertex_net_offsets[v.index() + 1] as usize;
        &self.vertex_net_list[start..end]
    }

    /// The degree (number of incident nets) of vertex `v`.
    #[inline]
    pub fn vertex_degree(&self, v: VertexId) -> usize {
        (self.vertex_net_offsets[v.index() + 1] - self.vertex_net_offsets[v.index()]) as usize
    }

    /// The weight (cell area) of vertex `v`.
    #[inline]
    pub fn vertex_weight(&self, v: VertexId) -> u64 {
        self.vertex_weights[v.index()]
    }

    /// The weight of net `e`.
    #[inline]
    pub fn net_weight(&self, e: NetId) -> u32 {
        self.net_weights[e.index()]
    }

    /// Sum of all vertex weights.
    #[inline]
    pub fn total_vertex_weight(&self) -> u64 {
        self.total_vertex_weight
    }

    /// The partition vertex `v` is fixed in, or `None` if it is free.
    #[inline]
    pub fn fixed_part(&self, v: VertexId) -> Option<PartId> {
        self.fixed[v.index()]
    }

    /// `true` if vertex `v` is fixed in some partition.
    #[inline]
    pub fn is_fixed(&self, v: VertexId) -> bool {
        self.fixed[v.index()].is_some()
    }

    /// Number of fixed vertices.
    #[inline]
    pub fn num_fixed(&self) -> usize {
        self.num_fixed
    }

    /// A 128-bit content digest of the hypergraph, for use as an
    /// instance-cache key: two hypergraphs have the same digest exactly
    /// when they describe the same partitioning problem.
    ///
    /// The digest covers what the partitioners can observe — vertex
    /// count, per-vertex weights and fixed sides (in vertex-id order,
    /// since pins refer to vertex ids), and the multiset of nets, where a
    /// net is its weight plus its *set* of pins. It is deliberately
    /// invariant under the two representation choices that carry no
    /// semantic content: the order nets were added in, and the order of
    /// pins within a net (both combine commutatively). Any change to a
    /// pin, a weight, a fixed side, or the net multiset changes the
    /// digest (modulo 128-bit collisions). The instance
    /// [`name`](Hypergraph::name) is metadata and excluded.
    pub fn content_digest(&self) -> u128 {
        // SplitMix64 finalizer: the per-element mixer. Elements must be
        // well mixed *before* the commutative sum/xor combines so that
        // nearby raw values cannot cancel.
        #[inline]
        fn mix(mut z: u64) -> u64 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        #[inline]
        fn fnv(h: u64, x: u64) -> u64 {
            (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
        }

        // Ordered lane: vertex identity is positional, so vertex content
        // hashes in id order.
        let mut ordered: u64 = 0xcbf2_9ce4_8422_2325;
        ordered = fnv(ordered, self.num_vertices() as u64);
        for v in 0..self.num_vertices() {
            ordered = fnv(ordered, mix(self.vertex_weights[v]));
            let side = match self.fixed[v] {
                None => 0u64,
                Some(PartId::P0) => 1,
                Some(PartId::P1) => 2,
            };
            ordered = fnv(ordered, mix(side));
        }

        // Unordered lane: each net hashes to one well-mixed word (its
        // pins combined commutatively), and the nets combine
        // commutatively in turn — sum and xor accumulators are each
        // order-invariant, and together they make multiset collisions
        // require simultaneous cancellation in both.
        let mut net_sum: u64 = 0;
        let mut net_xor: u64 = 0;
        for e in 0..self.num_nets() {
            let start = self.net_pin_offsets[e] as usize;
            let end = self.net_pin_offsets[e + 1] as usize;
            let pins = &self.net_pin_list[start..end];
            let mut pin_sum: u64 = 0;
            let mut pin_xor: u64 = 0;
            for &p in pins {
                let ph = mix(u64::from(p.raw()) ^ 0x517c_c1b7_2722_0a95);
                pin_sum = pin_sum.wrapping_add(ph);
                pin_xor ^= ph;
            }
            let mut nh = 0xcbf2_9ce4_8422_2325u64;
            nh = fnv(nh, u64::from(self.net_weights[e]));
            nh = fnv(nh, pins.len() as u64);
            nh = fnv(nh, pin_sum);
            nh = fnv(nh, pin_xor);
            let nh = mix(nh);
            net_sum = net_sum.wrapping_add(nh);
            net_xor ^= nh;
        }

        let hi = mix(ordered ^ net_sum.wrapping_add(self.num_nets() as u64));
        let lo = mix(ordered.wrapping_add(net_xor) ^ mix(self.num_pins() as u64));
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// `true` if all vertices have weight 1 (the classic "unit-area" mode the
    /// paper warns against using exclusively).
    pub fn is_unit_area(&self) -> bool {
        self.vertex_weights.iter().all(|&w| w == 1)
    }

    /// Maximum vertex weight (0 for an empty hypergraph).
    pub fn max_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().copied().max().unwrap_or(0)
    }

    /// Maximum vertex degree (0 for an empty hypergraph).
    pub fn max_vertex_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.vertex_degree(VertexId::from_index(v)))
            .max()
            .unwrap_or(0)
    }

    /// Maximum net size (0 for a hypergraph with no nets).
    pub fn max_net_size(&self) -> usize {
        (0..self.num_nets())
            .map(|e| self.net_size(NetId::from_index(e)))
            .max()
            .unwrap_or(0)
    }

    /// Upper bound on the gain of any single vertex move under the weighted
    /// net-cut objective: the maximum over vertices of the sum of incident
    /// net weights. Gain containers size their bucket arrays with this.
    pub fn max_gain_bound(&self) -> i64 {
        self.vertices()
            .map(|v| {
                self.vertex_nets(v)
                    .iter()
                    .map(|&e| i64::from(self.net_weight(e)))
                    .sum::<i64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Returns a copy of this hypergraph with a different name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Returns a copy of this hypergraph with all vertex weights set to 1
    /// ("unit-area mode", as historically used with the MCNC benchmarks).
    pub fn to_unit_area(&self) -> Hypergraph {
        let mut h = self.clone();
        h.vertex_weights.iter_mut().for_each(|w| *w = 1);
        h.total_vertex_weight = h.vertex_weights.len() as u64;
        h
    }

    /// Returns a copy with vertex `v` fixed in partition `part` (or freed,
    /// with `None`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn with_fixed(&self, v: VertexId, part: Option<PartId>) -> Hypergraph {
        let mut h = self.clone();
        let was = h.fixed[v.index()];
        h.fixed[v.index()] = part;
        match (was, part) {
            (None, Some(_)) => h.num_fixed += 1,
            (Some(_), None) => h.num_fixed -= 1,
            _ => {}
        }
        h
    }

    /// Checks internal consistency (CSR offsets monotone, ids in range, the
    /// two CSR directions agree). Intended for tests and debug assertions;
    /// returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        let m = self.num_nets();
        if self.net_pin_offsets.len() != m + 1 {
            return Err("net offset array has wrong length".into());
        }
        if self.vertex_net_offsets.len() != n + 1 {
            return Err("vertex offset array has wrong length".into());
        }
        for w in self.net_pin_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("net offsets not monotone".into());
            }
        }
        for w in self.vertex_net_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("vertex offsets not monotone".into());
            }
        }
        for &v in &self.net_pin_list {
            if v.index() >= n {
                return Err(format!("pin references out-of-range vertex {v:?}"));
            }
        }
        // Cross-check: v appears in net_pins(e) iff e appears in vertex_nets(v).
        let mut pin_pairs: Vec<(u32, u32)> = Vec::with_capacity(self.num_pins());
        for e in self.nets() {
            for &v in self.net_pins(e) {
                pin_pairs.push((v.raw(), e.raw()));
            }
        }
        let mut inv_pairs: Vec<(u32, u32)> = Vec::with_capacity(self.num_pins());
        for v in self.vertices() {
            for &e in self.vertex_nets(v) {
                inv_pairs.push((v.raw(), e.raw()));
            }
        }
        pin_pairs.sort_unstable();
        inv_pairs.sort_unstable();
        if pin_pairs != inv_pairs {
            return Err("forward and inverse CSR disagree".into());
        }
        let expected_total: u64 = self.vertex_weights.iter().sum();
        if expected_total != self.total_vertex_weight {
            return Err("cached total vertex weight is stale".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::{HypergraphBuilder, NetId, PartId, VertexId};

    fn tiny() -> crate::Hypergraph {
        // v0 --e0-- v1 --e1-- v2 ; e2 = {v0, v1, v2}
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(2);
        let v2 = b.add_vertex(3);
        b.add_net([v0, v1], 1).unwrap();
        b.add_net([v1, v2], 5).unwrap();
        b.add_net([v0, v1, v2], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let h = tiny();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_nets(), 3);
        assert_eq!(h.num_pins(), 7);
        assert_eq!(h.total_vertex_weight(), 6);
        assert_eq!(h.vertex_weight(VertexId::new(2)), 3);
        assert_eq!(h.net_weight(NetId::new(1)), 5);
        assert_eq!(h.net_size(NetId::new(2)), 3);
        assert_eq!(h.vertex_degree(VertexId::new(1)), 3);
        assert_eq!(h.max_net_size(), 3);
        assert_eq!(h.max_vertex_degree(), 3);
        assert_eq!(h.max_vertex_weight(), 3);
        assert!(!h.is_unit_area());
        h.validate().unwrap();
    }

    #[test]
    fn inverse_csr_matches_forward() {
        let h = tiny();
        let nets_of_v1: Vec<u32> = h
            .vertex_nets(VertexId::new(1))
            .iter()
            .map(|e| e.raw())
            .collect();
        let mut sorted = nets_of_v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn max_gain_bound_is_weighted_degree() {
        let h = tiny();
        // v1 touches nets of weight 1, 5, 1 -> bound 7.
        assert_eq!(h.max_gain_bound(), 7);
    }

    #[test]
    fn unit_area_conversion() {
        let h = tiny().to_unit_area();
        assert!(h.is_unit_area());
        assert_eq!(h.total_vertex_weight(), 3);
        h.validate().unwrap();
    }

    #[test]
    fn fixed_vertices() {
        let h = tiny();
        assert_eq!(h.num_fixed(), 0);
        let h = h.with_fixed(VertexId::new(0), Some(PartId::P1));
        assert_eq!(h.num_fixed(), 1);
        assert!(h.is_fixed(VertexId::new(0)));
        assert_eq!(h.fixed_part(VertexId::new(0)), Some(PartId::P1));
        let h = h.with_fixed(VertexId::new(0), None);
        assert_eq!(h.num_fixed(), 0);
    }

    #[test]
    fn with_name_renames() {
        let h = tiny().with_name("tiny3");
        assert_eq!(h.name(), "tiny3");
    }

    #[test]
    fn empty_graph_is_valid() {
        let h = HypergraphBuilder::new().build().unwrap();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_nets(), 0);
        assert_eq!(h.max_gain_bound(), 0);
        h.validate().unwrap();
    }

    #[test]
    fn iterators_cover_everything() {
        let h = tiny();
        assert_eq!(h.vertices().count(), 3);
        assert_eq!(h.nets().count(), 3);
        let total_pins: usize = h.nets().map(|e| h.net_pins(e).len()).sum();
        assert_eq!(total_pins, h.num_pins());
    }
}
