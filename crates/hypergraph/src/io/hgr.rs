//! hMETIS `.hgr` format.
//!
//! Layout (all indices 1-based, `%` starts a comment line):
//!
//! ```text
//! <num_nets> <num_vertices> [fmt]
//! [net-weight] v1 v2 ...        (one line per net)
//! [vertex-weight]               (one line per vertex, if fmt has 10-bit)
//! ```
//!
//! `fmt` is omitted or one of `1` (net weights), `10` (vertex weights),
//! `11` (both) — exactly as in the hMETIS user manual.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::error::ParseError;
use crate::{Hypergraph, HypergraphBuilder, VertexId};

/// Upper bound accepted for the header's declared net/vertex counts.
///
/// The declared counts size pre-allocations before any pin data is read,
/// so an adversarial header like `99999999999999 99999999999999` must be
/// rejected up front rather than aborting the process on an impossible
/// allocation. The largest published VLSI benchmarks are orders of
/// magnitude below this bound.
pub const MAX_DECLARED_COUNT: usize = 1 << 28;

/// Which weights an `.hgr` file carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HgrFormat {
    /// No weights: all nets and vertices weight 1.
    #[default]
    Plain,
    /// Net weights only (`fmt = 1`).
    NetWeights,
    /// Vertex weights only (`fmt = 10`).
    VertexWeights,
    /// Both net and vertex weights (`fmt = 11`).
    BothWeights,
}

impl HgrFormat {
    fn has_net_weights(self) -> bool {
        matches!(self, HgrFormat::NetWeights | HgrFormat::BothWeights)
    }
    fn has_vertex_weights(self) -> bool {
        matches!(self, HgrFormat::VertexWeights | HgrFormat::BothWeights)
    }
    fn code(self) -> Option<u32> {
        match self {
            HgrFormat::Plain => None,
            HgrFormat::NetWeights => Some(1),
            HgrFormat::VertexWeights => Some(10),
            HgrFormat::BothWeights => Some(11),
        }
    }
    fn from_code(code: u32, line: usize) -> Result<Self, ParseError> {
        match code {
            1 => Ok(HgrFormat::NetWeights),
            10 => Ok(HgrFormat::VertexWeights),
            11 => Ok(HgrFormat::BothWeights),
            other => Err(ParseError::syntax(
                line,
                format!("unknown hgr fmt code {other} (expected 1, 10, or 11)"),
            )),
        }
    }
}

/// Parses a hypergraph from `.hgr` text.
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure, malformed syntax, out-of-range
/// vertex references, or a net/vertex count mismatch.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "3 4\n1 2\n2 3 4\n1 4\n";
/// let h = hypart_hypergraph::io::hgr::read(text.as_bytes())?;
/// assert_eq!(h.num_nets(), 3);
/// assert_eq!(h.num_vertices(), 4);
/// # Ok(())
/// # }
/// ```
pub fn read<R: std::io::Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();

    let (header_line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if i == 0 && line.starts_with('\u{feff}') {
                    return Err(ParseError::syntax(
                        1,
                        "file begins with a UTF-8 byte-order mark; re-save without a BOM",
                    ));
                }
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break (i + 1, line);
            }
            None => return Err(ParseError::syntax(1, "empty file: missing header")),
        }
    };

    let mut it = header.split_whitespace();
    let num_nets: usize = parse_field(it.next(), header_line_no, "net count")?;
    let num_vertices: usize = parse_field(it.next(), header_line_no, "vertex count")?;
    let fmt = match it.next() {
        None => HgrFormat::Plain,
        Some(tok) => {
            let code: u32 = tok
                .parse()
                .map_err(|_| ParseError::syntax(header_line_no, "fmt field is not an integer"))?;
            HgrFormat::from_code(code, header_line_no)?
        }
    };
    if it.next().is_some() {
        return Err(ParseError::syntax(
            header_line_no,
            "trailing tokens after header",
        ));
    }
    for (count, what) in [(num_nets, "net count"), (num_vertices, "vertex count")] {
        if count > MAX_DECLARED_COUNT {
            return Err(ParseError::syntax(
                header_line_no,
                format!(
                    "declared {what} {count} exceeds the supported maximum {MAX_DECLARED_COUNT}"
                ),
            ));
        }
    }

    let mut builder = HypergraphBuilder::with_capacity(num_vertices, num_nets);
    // Vertex weights are read after the nets; add unit placeholders now and
    // rebuild at the end if the file carries vertex weights.
    builder.add_vertices(num_vertices, 1);

    let mut nets: Vec<(Vec<VertexId>, u32)> = Vec::with_capacity(num_nets);
    let mut nets_read = 0usize;
    let mut vertex_weights: Vec<u64> = Vec::new();
    let mut total_weight = 0u64;
    let mut last_line = header_line_no;

    for (i, line) in lines {
        let line_no = i + 1;
        last_line = line_no;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if nets_read < num_nets {
            let mut toks = t.split_whitespace();
            let weight: u32 = if fmt.has_net_weights() {
                parse_field(toks.next(), line_no, "net weight")?
            } else {
                1
            };
            let mut pins = Vec::new();
            for tok in toks {
                let one_based: usize = tok.parse().map_err(|_| {
                    ParseError::syntax(line_no, format!("pin `{tok}` is not an integer"))
                })?;
                if one_based == 0 || one_based > num_vertices {
                    return Err(ParseError::syntax(
                        line_no,
                        format!("pin {one_based} out of range 1..={num_vertices}"),
                    ));
                }
                pins.push(VertexId::from_index(one_based - 1));
            }
            if pins.is_empty() {
                return Err(ParseError::syntax(line_no, "net line has no pins"));
            }
            nets.push((pins, weight));
            nets_read += 1;
        } else if fmt.has_vertex_weights() && vertex_weights.len() < num_vertices {
            let w: u64 = t.parse().map_err(|_| {
                ParseError::syntax(line_no, format!("vertex weight `{t}` is not an integer"))
            })?;
            total_weight = total_weight
                .checked_add(w)
                .ok_or_else(|| ParseError::syntax(line_no, "total vertex weight overflows u64"))?;
            vertex_weights.push(w);
        } else {
            return Err(ParseError::syntax(line_no, "unexpected trailing content"));
        }
    }

    if nets_read != num_nets {
        return Err(ParseError::syntax(
            last_line,
            format!("header promised {num_nets} nets but file contains {nets_read}"),
        ));
    }
    if fmt.has_vertex_weights() && vertex_weights.len() != num_vertices {
        return Err(ParseError::syntax(
            last_line,
            format!(
                "header promised {} vertex weights but file contains {}",
                num_vertices,
                vertex_weights.len()
            ),
        ));
    }

    let mut builder = if fmt.has_vertex_weights() {
        let mut b = HypergraphBuilder::with_capacity(num_vertices, num_nets);
        for &w in &vertex_weights {
            b.add_vertex(w);
        }
        b
    } else {
        builder
    };
    for (pins, w) in nets {
        builder.add_net(pins, w)?;
    }
    Ok(builder.build()?)
}

/// Reads an `.hgr` file from `path`.
///
/// # Errors
///
/// See [`read`].
pub fn read_path(path: impl AsRef<Path>) -> Result<Hypergraph, ParseError> {
    let file = std::fs::File::open(path)?;
    read(file)
}

/// Writes `h` in `.hgr` format. Weights are emitted only when any differ
/// from 1, choosing the minimal `fmt` code.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write<W: Write>(h: &Hypergraph, mut writer: W) -> std::io::Result<()> {
    let net_weighted = h.nets().any(|e| h.net_weight(e) != 1);
    let vertex_weighted = !h.is_unit_area();
    let fmt = match (net_weighted, vertex_weighted) {
        (false, false) => HgrFormat::Plain,
        (true, false) => HgrFormat::NetWeights,
        (false, true) => HgrFormat::VertexWeights,
        (true, true) => HgrFormat::BothWeights,
    };
    match fmt.code() {
        None => writeln!(writer, "{} {}", h.num_nets(), h.num_vertices())?,
        Some(code) => writeln!(writer, "{} {} {}", h.num_nets(), h.num_vertices(), code)?,
    }
    let mut line = String::new();
    for e in h.nets() {
        line.clear();
        if fmt.has_net_weights() {
            line.push_str(&h.net_weight(e).to_string());
        }
        for &v in h.net_pins(e) {
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&(v.index() + 1).to_string());
        }
        writeln!(writer, "{line}")?;
    }
    if fmt.has_vertex_weights() {
        for v in h.vertices() {
            writeln!(writer, "{}", h.vertex_weight(v))?;
        }
    }
    Ok(())
}

/// Writes `h` to an `.hgr` file at `path`.
///
/// # Errors
///
/// See [`write()`].
pub fn write_path(h: &Hypergraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut buf = std::io::BufWriter::new(file);
    write(h, &mut buf)
}

fn parse_field<T: std::str::FromStr>(
    tok: Option<&str>,
    line: usize,
    what: &str,
) -> Result<T, ParseError> {
    tok.ok_or_else(|| ParseError::syntax(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::syntax(line, format!("{what} is not a valid integer")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn weighted_sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = [3u64, 1, 1, 7].iter().map(|&w| b.add_vertex(w)).collect();
        b.add_net([v[0], v[1]], 2).unwrap();
        b.add_net([v[1], v[2], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn plain_round_trip() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2], v[3]], 1).unwrap();
        let h = b.build().unwrap();

        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("2 4\n"));
        let h2 = read(&buf[..]).unwrap();
        assert_eq!(h2.num_nets(), 2);
        assert_eq!(h2.num_vertices(), 4);
        assert_eq!(h2.net_pins(crate::NetId::new(1)).len(), 3);
    }

    #[test]
    fn both_weights_round_trip() {
        let h = weighted_sample();
        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("2 4 11\n"), "got: {text}");
        let h2 = read(&buf[..]).unwrap();
        assert_eq!(h2.net_weight(crate::NetId::new(0)), 2);
        assert_eq!(h2.vertex_weight(crate::VertexId::new(3)), 7);
        assert_eq!(h2.total_vertex_weight(), h.total_vertex_weight());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "% a comment\n\n2 3\n% nets follow\n1 2\n\n2 3\n";
        let h = read(text.as_bytes()).unwrap();
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.num_vertices(), 3);
    }

    #[test]
    fn pin_out_of_range_is_reported_with_line() {
        let text = "1 2\n1 5\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn missing_nets_is_an_error() {
        let text = "3 4\n1 2\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("promised 3 nets"), "{err}");
    }

    #[test]
    fn zero_pin_index_rejected() {
        let text = "1 2\n0 1\n";
        assert!(read(text.as_bytes()).is_err());
    }

    #[test]
    fn bad_fmt_code_rejected() {
        let text = "1 2 7\n1 2\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown hgr fmt"), "{err}");
    }

    #[test]
    fn net_weight_only_round_trip() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 9).unwrap();
        let h = b.build().unwrap();
        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf).starts_with("1 2 1\n"));
        let h2 = read(&buf[..]).unwrap();
        assert_eq!(h2.net_weight(crate::NetId::new(0)), 9);
    }

    #[test]
    fn path_round_trip() {
        let h = weighted_sample();
        let dir = std::env::temp_dir().join("hypart_hgr_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.hgr");
        write_path(&h, &path).unwrap();
        let h2 = read_path(&path).unwrap();
        assert_eq!(h2.num_pins(), h.num_pins());
        std::fs::remove_file(&path).ok();
    }
}
