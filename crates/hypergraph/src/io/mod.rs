//! Reading and writing hypergraphs and partitionings in the interchange
//! formats used by the VLSI partitioning community.
//!
//! * [`hgr`] — the hMETIS plain-text hypergraph format (`.hgr`), with
//!   optional net and vertex weights.
//! * [`netd`] — a simplified ISPD98 `netD`-style netlist format with cell
//!   areas and pad (fixed-terminal) records.
//! * [`partfile`] — one-partition-id-per-line solution files, as consumed by
//!   downstream placement flows and external evaluators.
//! * [`fixfile`] — hMETIS-style fixed-vertex files (`-1` / `0` / `1` per
//!   vertex), pairing with `.hgr` to express fixed terminals.
//!
//! All readers work on any [`std::io::BufRead`]; all writers on any
//! [`std::io::Write`]; path-based convenience wrappers are provided.
//!
//! Parsers here face arbitrary user files, so panicking extractors are
//! denied outright: every malformed input must surface as a typed
//! [`crate::error::ParseError`] naming the offending line. Test modules
//! opt back in via an explicit allow.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod fixfile;
pub mod hgr;
pub mod netd;
pub mod partfile;
