//! hMETIS-style fix files: one line per vertex, the partition the vertex
//! is fixed in (`0` / `1`) or `-1` for free vertices.
//!
//! hMETIS consumes these alongside `.hgr` files to express the fixed
//! terminals that top-down placement produces; the pair
//! ([`hgr`](super::hgr), `fixfile`) round-trips everything our
//! [`Hypergraph`] carries.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::error::ParseError;
use crate::{Hypergraph, PartId};

/// Reads a fix file: entry `i` is `Some(part)` if vertex `i` is fixed.
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure or a token other than `-1`,
/// `0`, or `1`.
pub fn read<R: std::io::Read>(reader: R) -> Result<Vec<Option<PartId>>, ParseError> {
    let reader = BufReader::new(reader);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let entry = match t {
            "-1" => None,
            "0" => Some(PartId::P0),
            "1" => Some(PartId::P1),
            other => {
                return Err(ParseError::syntax(
                    line_no,
                    format!("`{other}` is not -1, 0, or 1"),
                ))
            }
        };
        out.push(entry);
    }
    Ok(out)
}

/// Reads a fix file from `path`.
///
/// # Errors
///
/// See [`read`].
pub fn read_path(path: impl AsRef<Path>) -> Result<Vec<Option<PartId>>, ParseError> {
    read(std::fs::File::open(path)?)
}

/// Writes the fixed-vertex assignments of `h` as a fix file.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write<W: Write>(h: &Hypergraph, mut writer: W) -> std::io::Result<()> {
    for v in h.vertices() {
        match h.fixed_part(v) {
            None => writeln!(writer, "-1")?,
            Some(p) => writeln!(writer, "{}", p.index())?,
        }
    }
    Ok(())
}

/// Writes the fix file for `h` to `path`.
///
/// # Errors
///
/// See [`write()`].
pub fn write_path(h: &Hypergraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write(h, std::io::BufWriter::new(file))
}

/// Applies fix-file entries to a copy of `h`.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] (line 0) if the entry count does not
/// match the vertex count.
pub fn apply(h: &Hypergraph, fixes: &[Option<PartId>]) -> Result<Hypergraph, ParseError> {
    if fixes.len() != h.num_vertices() {
        return Err(ParseError::syntax(
            0,
            format!(
                "fix file has {} entries but hypergraph has {} vertices",
                fixes.len(),
                h.num_vertices()
            ),
        ));
    }
    let mut out = h.clone();
    for (i, &fix) in fixes.iter().enumerate() {
        out = out.with_fixed(crate::VertexId::from_index(i), fix);
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, VertexId};

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[2], v[3]], 1).unwrap();
        b.fix_vertex(v[1], PartId::P0);
        b.fix_vertex(v[3], PartId::P1);
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "-1\n0\n-1\n1\n");
        let fixes = read(&buf[..]).unwrap();
        assert_eq!(fixes, vec![None, Some(PartId::P0), None, Some(PartId::P1)]);
    }

    #[test]
    fn apply_transfers_fixes() {
        let h = sample();
        let mut free = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| free.add_vertex(1)).collect();
        free.add_net([v[0], v[1]], 1).unwrap();
        free.add_net([v[2], v[3]], 1).unwrap();
        let free = free.build().unwrap();
        assert_eq!(free.num_fixed(), 0);

        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        let fixes = read(&buf[..]).unwrap();
        let fixed = apply(&free, &fixes).unwrap();
        assert_eq!(fixed.num_fixed(), 2);
        assert_eq!(fixed.fixed_part(VertexId::new(3)), Some(PartId::P1));
    }

    #[test]
    fn bad_token_rejected() {
        assert!(read("2\n".as_bytes()).is_err());
        assert!(read("x\n".as_bytes()).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let h = sample();
        let err = apply(&h, &[None]).unwrap_err();
        assert!(err.to_string().contains("1 entries"), "{err}");
    }

    #[test]
    fn comments_skipped() {
        let fixes = read("% header\n-1\n1\n".as_bytes()).unwrap();
        assert_eq!(fixes, vec![None, Some(PartId::P1)]);
    }

    #[test]
    fn path_round_trip() {
        let h = sample();
        let dir = std::env::temp_dir().join("hypart_fix_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fix");
        write_path(&h, &path).unwrap();
        let fixes = read_path(&path).unwrap();
        assert_eq!(fixes.len(), 4);
        std::fs::remove_file(&path).ok();
    }
}
