//! Partition solution files: one partition id (0 or 1) per line, line `i`
//! giving the partition of vertex `i` — the format hMETIS emits and
//! placement flows consume.

use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::error::ParseError;
use crate::PartId;

/// Reads a partition assignment (one id per line).
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure or if a line is not `0` or `1`.
pub fn read<R: std::io::Read>(reader: R) -> Result<Vec<PartId>, ParseError> {
    let reader = BufReader::new(reader);
    let mut parts = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let idx: usize = t
            .parse()
            .map_err(|_| ParseError::syntax(line_no, format!("`{t}` is not a partition id")))?;
        let part = PartId::from_index(idx)
            .ok_or_else(|| ParseError::syntax(line_no, format!("partition {idx} is not 0 or 1")))?;
        parts.push(part);
    }
    Ok(parts)
}

/// Reads a partition file from `path`.
///
/// # Errors
///
/// See [`read`].
pub fn read_path(path: impl AsRef<Path>) -> Result<Vec<PartId>, ParseError> {
    read(std::fs::File::open(path)?)
}

/// Writes a partition assignment, one id per line.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write<W: Write>(parts: &[PartId], mut writer: W) -> std::io::Result<()> {
    for p in parts {
        writeln!(writer, "{}", p.index())?;
    }
    Ok(())
}

/// Writes a partition assignment to `path`.
///
/// # Errors
///
/// See [`write()`].
pub fn write_path(parts: &[PartId], path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write(parts, std::io::BufWriter::new(file))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let parts = vec![PartId::P0, PartId::P1, PartId::P1, PartId::P0];
        let mut buf = Vec::new();
        write(&parts, &mut buf).unwrap();
        assert_eq!(String::from_utf8_lossy(&buf), "0\n1\n1\n0\n");
        assert_eq!(read(&buf[..]).unwrap(), parts);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "% solution\n0\n\n1\n";
        assert_eq!(read(text.as_bytes()).unwrap(), vec![PartId::P0, PartId::P1]);
    }

    #[test]
    fn invalid_id_rejected() {
        assert!(read("2\n".as_bytes()).is_err());
        assert!(read("x\n".as_bytes()).is_err());
    }

    #[test]
    fn path_round_trip() {
        let parts = vec![PartId::P1, PartId::P0];
        let dir = std::env::temp_dir().join("hypart_part_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sol.part");
        write_path(&parts, &path).unwrap();
        assert_eq!(read_path(&path).unwrap(), parts);
        std::fs::remove_file(&path).ok();
    }
}
