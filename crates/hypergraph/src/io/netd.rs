//! Simplified ISPD98 `netD`/`are`-style netlist format.
//!
//! The real IBM-internal format is a pair of files: a `.netD` pin list and a
//! `.are` area file. This module implements a faithful single-file rendition
//! that keeps the load-bearing features — a flat pin list where each net
//! starts at an `s` record, per-cell areas, and pad (`p`) cells that are
//! fixed terminals — while dropping legacy header fields nobody consumes.
//!
//! ```text
//! netD <num_vertices> <num_nets> <num_pins>
//! a0 s          # pin list: cell id (aN = movable, pN = pad), s = net start
//! a1
//! p0 s
//! a1
//! ...
//! % areas
//! a0 16
//! a1 1
//! p0 0
//! % pads        # optional: fixed partition per pad
//! p0 0
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::path::Path;

use crate::error::ParseError;
use crate::{Hypergraph, HypergraphBuilder, PartId, VertexId};

/// Parses a hypergraph from simplified `netD` text.
///
/// Cells named `aN` are movable; cells named `pN` are pads. Pads without an
/// explicit `% pads` record stay free; with one, they are fixed in the given
/// partition. Areas default to 1 when the `% areas` section is absent.
///
/// # Errors
///
/// Returns [`ParseError`] on I/O failure or malformed syntax.
pub fn read<R: std::io::Read>(reader: R) -> Result<Hypergraph, ParseError> {
    let reader = BufReader::new(reader);
    #[derive(PartialEq)]
    enum Section {
        Pins,
        Areas,
        Pads,
    }
    let mut section = Section::Pins;
    let mut header: Option<(usize, usize, usize)> = None;
    let mut nets: Vec<Vec<String>> = Vec::new();
    let mut areas: HashMap<String, u64> = HashMap::new();
    let mut pads: HashMap<String, PartId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut name_index: HashMap<String, usize> = HashMap::new();

    let intern =
        |name: &str, names: &mut Vec<String>, name_index: &mut HashMap<String, usize>| -> usize {
            if let Some(&i) = name_index.get(name) {
                i
            } else {
                let i = names.len();
                names.push(name.to_string());
                name_index.insert(name.to_string(), i);
                i
            }
        };

    let mut last_line = 0usize;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        last_line = line_no;
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix('%') {
            match rest.trim() {
                "areas" => section = Section::Areas,
                "pads" => section = Section::Pads,
                _ => {} // arbitrary comment
            }
            continue;
        }
        if header.is_none() {
            let mut it = t.split_whitespace();
            if it.next() != Some("netD") {
                return Err(ParseError::syntax(line_no, "expected `netD` header"));
            }
            let nv = parse_usize(it.next(), line_no, "vertex count")?;
            let ne = parse_usize(it.next(), line_no, "net count")?;
            let np = parse_usize(it.next(), line_no, "pin count")?;
            header = Some((nv, ne, np));
            continue;
        }
        match section {
            Section::Pins => {
                let mut it = t.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| ParseError::syntax(line_no, "missing cell name"))?;
                if !name.starts_with('a') && !name.starts_with('p') {
                    return Err(ParseError::syntax(
                        line_no,
                        format!("cell name `{name}` must start with `a` or `p`"),
                    ));
                }
                let is_start = match it.next() {
                    None => false,
                    Some("s") => true,
                    Some(other) => {
                        return Err(ParseError::syntax(
                            line_no,
                            format!("unexpected token `{other}` after cell name"),
                        ))
                    }
                };
                intern(name, &mut names, &mut name_index);
                if is_start {
                    nets.push(vec![name.to_string()]);
                } else {
                    match nets.last_mut() {
                        Some(net) => net.push(name.to_string()),
                        None => {
                            return Err(ParseError::syntax(
                                line_no,
                                "pin before any net start record",
                            ))
                        }
                    }
                }
            }
            Section::Areas => {
                let mut it = t.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| ParseError::syntax(line_no, "missing cell name"))?;
                let area: u64 = parse_usize(it.next(), line_no, "area")? as u64;
                intern(name, &mut names, &mut name_index);
                areas.insert(name.to_string(), area);
            }
            Section::Pads => {
                let mut it = t.split_whitespace();
                let name = it
                    .next()
                    .ok_or_else(|| ParseError::syntax(line_no, "missing pad name"))?;
                let part = parse_usize(it.next(), line_no, "partition")?;
                let part = PartId::from_index(part).ok_or_else(|| {
                    ParseError::syntax(line_no, format!("partition {part} is not 0 or 1"))
                })?;
                intern(name, &mut names, &mut name_index);
                pads.insert(name.to_string(), part);
            }
        }
    }

    let (nv, ne, np) = header.ok_or_else(|| ParseError::syntax(1, "missing `netD` header"))?;
    if names.len() != nv {
        return Err(ParseError::syntax(
            last_line,
            format!("header promised {nv} cells, file names {}", names.len()),
        ));
    }
    if nets.len() != ne {
        return Err(ParseError::syntax(
            last_line,
            format!("header promised {ne} nets, file contains {}", nets.len()),
        ));
    }
    let pin_count: usize = nets.iter().map(Vec::len).sum();
    if pin_count != np {
        return Err(ParseError::syntax(
            last_line,
            format!("header promised {np} pins, file contains {pin_count}"),
        ));
    }

    let mut b = HypergraphBuilder::with_capacity(nv, ne);
    for name in &names {
        let default = if name.starts_with('p') { 0 } else { 1 };
        b.add_vertex(*areas.get(name).unwrap_or(&default));
    }
    for net in &nets {
        let pins = net
            .iter()
            .map(|n| VertexId::from_index(name_index[n]))
            .collect::<Vec<_>>();
        b.add_net(pins, 1)?;
    }
    for (name, part) in &pads {
        if let Some(&i) = name_index.get(name) {
            b.fix_vertex(VertexId::from_index(i), *part);
        }
    }
    Ok(b.build()?)
}

/// Reads a simplified `netD` file from `path`.
///
/// # Errors
///
/// See [`read`].
pub fn read_path(path: impl AsRef<Path>) -> Result<Hypergraph, ParseError> {
    read(std::fs::File::open(path)?)
}

/// Writes `h` in simplified `netD` format. Fixed vertices become pads
/// (`pN`), free vertices movable cells (`aN`).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write<W: Write>(h: &Hypergraph, mut writer: W) -> std::io::Result<()> {
    writeln!(
        writer,
        "netD {} {} {}",
        h.num_vertices(),
        h.num_nets(),
        h.num_pins()
    )?;
    let cell_name = |v: VertexId| {
        if h.is_fixed(v) {
            format!("p{}", v.raw())
        } else {
            format!("a{}", v.raw())
        }
    };
    for e in h.nets() {
        for (k, &v) in h.net_pins(e).iter().enumerate() {
            if k == 0 {
                writeln!(writer, "{} s", cell_name(v))?;
            } else {
                writeln!(writer, "{}", cell_name(v))?;
            }
        }
    }
    writeln!(writer, "% areas")?;
    for v in h.vertices() {
        writeln!(writer, "{} {}", cell_name(v), h.vertex_weight(v))?;
    }
    if h.num_fixed() > 0 {
        writeln!(writer, "% pads")?;
        for v in h.vertices() {
            if let Some(p) = h.fixed_part(v) {
                writeln!(writer, "{} {}", cell_name(v), p.index())?;
            }
        }
    }
    Ok(())
}

/// Writes `h` to a simplified `netD` file at `path`.
///
/// # Errors
///
/// See [`write()`].
pub fn write_path(h: &Hypergraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write(h, std::io::BufWriter::new(file))
}

fn parse_usize(tok: Option<&str>, line: usize, what: &str) -> Result<usize, ParseError> {
    tok.ok_or_else(|| ParseError::syntax(line, format!("missing {what}")))?
        .parse()
        .map_err(|_| ParseError::syntax(line, format!("{what} is not a valid integer")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = [4u64, 1, 1, 0].iter().map(|&w| b.add_vertex(w)).collect();
        b.add_net([v[0], v[1], v[3]], 1).unwrap();
        b.add_net([v[1], v[2]], 1).unwrap();
        b.fix_vertex(v[3], PartId::P1);
        b.build().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let h = sample();
        let mut buf = Vec::new();
        write(&h, &mut buf).unwrap();
        let h2 = read(&buf[..]).unwrap();
        assert_eq!(h2.num_vertices(), 4);
        assert_eq!(h2.num_nets(), 2);
        assert_eq!(h2.num_pins(), 5);
        assert_eq!(h2.num_fixed(), 1);
        assert_eq!(h2.total_vertex_weight(), h.total_vertex_weight());
        h2.validate().unwrap();
    }

    #[test]
    fn read_hand_written() {
        let text = "\
netD 3 2 4
a0 s
a1
p0 s
a1
% areas
a0 5
a1 2
p0 0
% pads
p0 1
";
        let h = read(text.as_bytes()).unwrap();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.num_fixed(), 1);
        assert_eq!(h.total_vertex_weight(), 7);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read("a0 s\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("netD"), "{err}");
    }

    #[test]
    fn pin_before_net_start_is_error() {
        let text = "netD 1 1 1\na0\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("before any net start"), "{err}");
    }

    #[test]
    fn count_mismatch_is_error() {
        let text = "netD 2 2 2\na0 s\na1\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("promised 2 nets"), "{err}");
    }

    #[test]
    fn default_areas_when_section_absent() {
        let text = "netD 2 1 2\na0 s\na1\n";
        let h = read(text.as_bytes()).unwrap();
        assert_eq!(h.total_vertex_weight(), 2);
    }

    #[test]
    fn bad_pad_partition_is_error() {
        let text = "netD 1 1 1\np0 s\n% pads\np0 3\n";
        let err = read(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("not 0 or 1"), "{err}");
    }

    #[test]
    fn path_round_trip() {
        let h = sample();
        let dir = std::env::temp_dir().join("hypart_netd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.netD");
        write_path(&h, &path).unwrap();
        let h2 = read_path(&path).unwrap();
        assert_eq!(h2.num_pins(), h.num_pins());
        std::fs::remove_file(&path).ok();
    }
}
