//! Induced sub-hypergraphs and connectivity analysis.
//!
//! Top-down placement flows repeatedly partition *regions*: the
//! sub-hypergraph induced by the cells of one partition block. This module
//! provides that extraction plus connected-component analysis (useful for
//! validating generated instances and for understanding why a cut of 0 is
//! sometimes trivially achievable).

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;
use crate::ids::VertexId;

/// The result of [`induce`]: the sub-hypergraph plus the mapping back to
/// the parent's vertex ids.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The induced hypergraph. Vertex `i` corresponds to `back_map[i]` in
    /// the parent.
    pub graph: Hypergraph,
    /// `back_map[sub_vertex] = parent_vertex`.
    pub back_map: Vec<VertexId>,
}

/// Induces the sub-hypergraph of `h` on `cells`: vertex weights and fixed
/// sides are inherited; each net is restricted to its pins inside the
/// region, and nets with fewer than two remaining pins are dropped
/// (they can never be cut).
///
/// Duplicate entries in `cells` are ignored after the first.
///
/// # Example
///
/// ```
/// use hypart_hypergraph::{HypergraphBuilder, subgraph::induce};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
/// b.add_net([v[0], v[1], v[2]], 1)?;
/// b.add_net([v[2], v[3]], 1)?;
/// let h = b.build()?;
/// let sub = induce(&h, &[v[0], v[1]]);
/// assert_eq!(sub.graph.num_vertices(), 2);
/// assert_eq!(sub.graph.num_nets(), 1); // net0 restricted to {v0, v1}
/// # Ok(())
/// # }
/// ```
pub fn induce(h: &Hypergraph, cells: &[VertexId]) -> InducedSubgraph {
    let mut index_of = vec![u32::MAX; h.num_vertices()];
    let mut back_map = Vec::with_capacity(cells.len());
    let mut builder = HypergraphBuilder::with_capacity(cells.len(), cells.len());
    for &v in cells {
        if index_of[v.index()] != u32::MAX {
            continue;
        }
        index_of[v.index()] = back_map.len() as u32;
        back_map.push(v);
        let sub_v = builder.add_vertex(h.vertex_weight(v));
        if let Some(p) = h.fixed_part(v) {
            builder.fix_vertex(sub_v, p);
        }
    }
    let mut seen = vec![false; h.num_nets()];
    for &v in &back_map {
        for &e in h.vertex_nets(v) {
            if seen[e.index()] {
                continue;
            }
            seen[e.index()] = true;
            let pins: Vec<VertexId> = h
                .net_pins(e)
                .iter()
                .filter(|p| index_of[p.index()] != u32::MAX)
                .map(|p| VertexId::new(index_of[p.index()]))
                .collect();
            if pins.len() >= 2 {
                builder
                    .add_net(pins, h.net_weight(e))
                    .expect("restricted pins are valid");
            }
        }
    }
    InducedSubgraph {
        graph: builder
            .name(format!("{}|sub{}", h.name(), back_map.len()))
            .build()
            .expect("induced graph is valid"),
        back_map,
    }
}

/// Computes the connected components of `h` (two vertices are connected if
/// they share a net). Returns `component[v]` labels in `0..count`, where
/// label order follows the smallest vertex id in each component.
pub fn connected_components(h: &Hypergraph) -> (Vec<u32>, usize) {
    const UNSEEN: u32 = u32::MAX;
    let mut component = vec![UNSEEN; h.num_vertices()];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in h.vertices() {
        if component[start.index()] != UNSEEN {
            continue;
        }
        component[start.index()] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &e in h.vertex_nets(v) {
                for &u in h.net_pins(e) {
                    if component[u.index()] == UNSEEN {
                        component[u.index()] = count;
                        stack.push(u);
                    }
                }
            }
        }
        count += 1;
    }
    (component, count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, PartId};

    fn two_islands() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|i| b.add_vertex(i as u64 + 1)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2]], 3).unwrap();
        b.add_net([v[3], v[4], v[5]], 1).unwrap();
        b.fix_vertex(v[0], PartId::P1);
        b.build().unwrap()
    }

    #[test]
    fn induce_keeps_weights_and_fixed() {
        let h = two_islands();
        let sub = induce(&h, &[VertexId::new(0), VertexId::new(1), VertexId::new(2)]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_nets(), 2);
        assert_eq!(sub.graph.vertex_weight(VertexId::new(1)), 2);
        assert_eq!(sub.graph.fixed_part(VertexId::new(0)), Some(PartId::P1));
        assert_eq!(sub.graph.net_weight(crate::NetId::new(1)), 3);
        sub.graph.validate().unwrap();
    }

    #[test]
    fn induce_drops_boundary_nets_below_two_pins() {
        let h = two_islands();
        // Only v1: both its nets reduce to single pins and vanish.
        let sub = induce(&h, &[VertexId::new(1)]);
        assert_eq!(sub.graph.num_vertices(), 1);
        assert_eq!(sub.graph.num_nets(), 0);
    }

    #[test]
    fn induce_ignores_duplicates() {
        let h = two_islands();
        let sub = induce(&h, &[VertexId::new(3), VertexId::new(3), VertexId::new(4)]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.back_map.len(), 2);
    }

    #[test]
    fn back_map_round_trips() {
        let h = two_islands();
        let cells = [VertexId::new(4), VertexId::new(0)];
        let sub = induce(&h, &cells);
        assert_eq!(sub.back_map, vec![VertexId::new(4), VertexId::new(0)]);
        for (i, &orig) in sub.back_map.iter().enumerate() {
            assert_eq!(
                sub.graph.vertex_weight(VertexId::from_index(i)),
                h.vertex_weight(orig)
            );
        }
    }

    #[test]
    fn components_found() {
        let h = two_islands();
        let (labels, count) = connected_components(&h);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn isolated_vertices_are_singleton_components() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, 1);
        let h = b.build().unwrap();
        let (_, count) = connected_components(&h);
        assert_eq!(count, 3);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let h = HypergraphBuilder::new().build().unwrap();
        let (labels, count) = connected_components(&h);
        assert!(labels.is_empty());
        assert_eq!(count, 0);
    }
}
