//! Hypergraph data structures for VLSI netlist partitioning.
//!
//! This crate provides the substrate on which the `hypart` partitioning
//! engines operate: a compact, immutable [`Hypergraph`] with CSR (compressed
//! sparse row) pin storage in both directions (net → pins and vertex →
//! incident nets), integer vertex weights (cell areas), integer net weights,
//! and optional *fixed-vertex* constraints (terminals preplaced in a
//! partition, as arises in top-down placement).
//!
//! # Model
//!
//! A hypergraph `H = (V, E)` consists of `|V|` vertices (cells) and `|E|`
//! hyperedges (nets). Each net is a set of two or more distinct vertices
//! (single-pin nets are permitted but can never be cut). Vertices carry a
//! weight (`u64`, typically cell area); nets carry a weight (`u32`, typically
//! 1). Vertices may be *fixed* to a partition, which partitioning engines
//! must honor.
//!
//! # Example
//!
//! ```
//! use hypart_hypergraph::{HypergraphBuilder, NetId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = HypergraphBuilder::new();
//! let a = b.add_vertex(2);
//! let c = b.add_vertex(3);
//! let d = b.add_vertex(1);
//! b.add_net([a, c], 1)?;
//! b.add_net([a, c, d], 1)?;
//! let h = b.build()?;
//! assert_eq!(h.num_vertices(), 3);
//! assert_eq!(h.num_nets(), 2);
//! assert_eq!(h.total_vertex_weight(), 6);
//! assert_eq!(h.net_pins(NetId::new(1)).len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod ids;
pub mod io;
pub mod stats;
pub mod subgraph;

pub use builder::HypergraphBuilder;
pub use error::{BuildError, ParseError};
pub use graph::{CsrScratch, Hypergraph};
pub use ids::{NetId, PartId, VertexId};
