//! Instance statistics: the "salient attributes of real-world inputs" the
//! paper enumerates (size, sparsity, degree/net-size averages, large nets,
//! area variation).
//!
//! [`InstanceStats::of`] computes all of them in one pass so experiment
//! reports can print a profile line per benchmark, and the synthetic
//! generators in `hypart-benchgen` can assert their outputs actually match
//! the ISPD98-style profiles they claim to emulate.

use crate::graph::Hypergraph;

/// Aggregate statistics of a hypergraph instance.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceStats {
    /// Number of vertices (cells).
    pub num_vertices: usize,
    /// Number of nets.
    pub num_nets: usize,
    /// Number of pins.
    pub num_pins: usize,
    /// Average vertex degree (pins / vertices); 0 if empty.
    pub avg_vertex_degree: f64,
    /// Maximum vertex degree.
    pub max_vertex_degree: usize,
    /// Average net size (pins / nets); 0 if no nets.
    pub avg_net_size: f64,
    /// Maximum net size.
    pub max_net_size: usize,
    /// Number of "large" nets: size > 50 pins (clock/reset-like).
    pub num_large_nets: usize,
    /// Sparsity ratio nets / vertices; the paper notes this is ≈ 1 for
    /// real designs.
    pub net_vertex_ratio: f64,
    /// Total cell area.
    pub total_vertex_weight: u64,
    /// Smallest cell area.
    pub min_vertex_weight: u64,
    /// Largest cell area (macros).
    pub max_vertex_weight: u64,
    /// Largest cell area as a fraction of total area. A value above the
    /// balance tolerance means the instance can cork a CLIP pass.
    pub max_weight_fraction: f64,
    /// Number of fixed vertices (terminals).
    pub num_fixed: usize,
}

/// Net size above which a net counts as "large" (clock/reset-like) in
/// [`InstanceStats::num_large_nets`].
pub const LARGE_NET_THRESHOLD: usize = 50;

impl InstanceStats {
    /// Computes statistics for `h`.
    ///
    /// ```
    /// use hypart_hypergraph::{HypergraphBuilder, stats::InstanceStats};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = HypergraphBuilder::new();
    /// let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
    /// b.add_net([v[0], v[1]], 1)?;
    /// b.add_net([v[1], v[2], v[3]], 1)?;
    /// let s = InstanceStats::of(&b.build()?);
    /// assert_eq!(s.num_pins, 5);
    /// assert!((s.avg_net_size - 2.5).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(h: &Hypergraph) -> Self {
        let num_vertices = h.num_vertices();
        let num_nets = h.num_nets();
        let num_pins = h.num_pins();
        let mut max_net_size = 0;
        let mut num_large_nets = 0;
        for e in h.nets() {
            let s = h.net_size(e);
            max_net_size = max_net_size.max(s);
            if s > LARGE_NET_THRESHOLD {
                num_large_nets += 1;
            }
        }
        let mut min_w = u64::MAX;
        let mut max_w = 0u64;
        for v in h.vertices() {
            let w = h.vertex_weight(v);
            min_w = min_w.min(w);
            max_w = max_w.max(w);
        }
        if num_vertices == 0 {
            min_w = 0;
        }
        let total = h.total_vertex_weight();
        InstanceStats {
            num_vertices,
            num_nets,
            num_pins,
            avg_vertex_degree: ratio(num_pins, num_vertices),
            max_vertex_degree: h.max_vertex_degree(),
            avg_net_size: ratio(num_pins, num_nets),
            max_net_size,
            num_large_nets,
            net_vertex_ratio: ratio(num_nets, num_vertices),
            total_vertex_weight: total,
            min_vertex_weight: min_w,
            max_vertex_weight: max_w,
            max_weight_fraction: if total == 0 {
                0.0
            } else {
                max_w as f64 / total as f64
            },
            num_fixed: h.num_fixed(),
        }
    }

    /// One-line human-readable profile, e.g. for experiment logs.
    pub fn summary(&self) -> String {
        format!(
            "|V|={} |E|={} pins={} deg={:.2} net={:.2} maxnet={} large={} area=[{},{}] maxfrac={:.4} fixed={}",
            self.num_vertices,
            self.num_nets,
            self.num_pins,
            self.avg_vertex_degree,
            self.avg_net_size,
            self.max_net_size,
            self.num_large_nets,
            self.min_vertex_weight,
            self.max_vertex_weight,
            self.max_weight_fraction,
            self.num_fixed,
        )
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Histogram of net sizes (index = size, value = count), useful for checking
/// that synthetic instances match a target distribution.
pub fn net_size_histogram(h: &Hypergraph) -> Vec<usize> {
    let mut hist = vec![0usize; h.max_net_size() + 1];
    for e in h.nets() {
        hist[h.net_size(e)] += 1;
    }
    hist
}

/// Histogram of vertex degrees (index = degree, value = count).
pub fn vertex_degree_histogram(h: &Hypergraph) -> Vec<usize> {
    let mut hist = vec![0usize; h.max_vertex_degree() + 1];
    for v in h.vertices() {
        hist[h.vertex_degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = [1u64, 1, 4, 10].iter().map(|&w| b.add_vertex(w)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2], v[3]], 1).unwrap();
        b.add_net([v[0], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn stats_basics() {
        let s = InstanceStats::of(&sample());
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_nets, 3);
        assert_eq!(s.num_pins, 7);
        assert_eq!(s.max_net_size, 3);
        assert_eq!(s.num_large_nets, 0);
        assert_eq!(s.min_vertex_weight, 1);
        assert_eq!(s.max_vertex_weight, 10);
        assert_eq!(s.total_vertex_weight, 16);
        assert!((s.max_weight_fraction - 10.0 / 16.0).abs() < 1e-12);
        assert!((s.net_vertex_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats_are_zero() {
        let h = HypergraphBuilder::new().build().unwrap();
        let s = InstanceStats::of(&h);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.min_vertex_weight, 0);
        assert_eq!(s.max_weight_fraction, 0.0);
        assert_eq!(s.avg_net_size, 0.0);
    }

    #[test]
    fn histograms_sum_to_counts() {
        let h = sample();
        let nh = net_size_histogram(&h);
        assert_eq!(nh.iter().sum::<usize>(), h.num_nets());
        assert_eq!(nh[2], 2);
        assert_eq!(nh[3], 1);
        let dh = vertex_degree_histogram(&h);
        assert_eq!(dh.iter().sum::<usize>(), h.num_vertices());
    }

    #[test]
    fn large_net_detection() {
        let mut b = HypergraphBuilder::new();
        let first = b.add_vertices(60, 1);
        let pins: Vec<_> = (0..60)
            .map(|i| crate::VertexId::new(first.raw() + i))
            .collect();
        b.add_net(pins, 1).unwrap();
        let s = InstanceStats::of(&b.build().unwrap());
        assert_eq!(s.num_large_nets, 1);
        assert_eq!(s.max_net_size, 60);
    }

    #[test]
    fn summary_contains_key_fields() {
        let s = InstanceStats::of(&sample());
        let line = s.summary();
        assert!(line.contains("|V|=4"));
        assert!(line.contains("pins=7"));
    }
}
