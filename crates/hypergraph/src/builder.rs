//! Incremental construction of [`Hypergraph`] instances.

use crate::error::BuildError;
use crate::graph::Hypergraph;
use crate::ids::{NetId, PartId, VertexId};

/// Builder for [`Hypergraph`].
///
/// Vertices are added first (each returning its [`VertexId`]), then nets
/// referencing those vertices. Duplicate pins within one net are silently
/// collapsed (ISPD98-style netlists routinely contain them); nets reduced to
/// a single pin are kept, since a single-pin net is legal (it simply can
/// never be cut).
///
/// # Example
///
/// ```
/// use hypart_hypergraph::{HypergraphBuilder, PartId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_capacity(4, 2);
/// let pads: Vec<_> = (0..4).map(|i| b.add_vertex(i + 1)).collect();
/// b.add_net([pads[0], pads[1], pads[2]], 1)?;
/// b.add_net([pads[2], pads[3]], 2)?;
/// b.fix_vertex(pads[0], PartId::P0);
/// let h = b.name("pads").build()?;
/// assert_eq!(h.num_fixed(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    name: String,
    vertex_weights: Vec<u64>,
    net_weights: Vec<u32>,
    net_pin_offsets: Vec<u32>,
    net_pin_list: Vec<VertexId>,
    fixed: Vec<(u32, PartId)>,
    scratch: Vec<VertexId>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            net_pin_offsets: vec![0],
            ..Self::default()
        }
    }

    /// Creates a builder with capacity reserved for `vertices` vertices and
    /// `nets` nets (an average net size of 4 pins is assumed for pin storage).
    pub fn with_capacity(vertices: usize, nets: usize) -> Self {
        let mut b = Self::new();
        b.vertex_weights.reserve(vertices);
        b.net_weights.reserve(nets);
        b.net_pin_offsets.reserve(nets + 1);
        b.net_pin_list.reserve(nets.saturating_mul(4));
        b
    }

    /// Sets the instance name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Adds a vertex with the given weight (cell area) and returns its id.
    /// Weight 0 is permitted (e.g. pad cells) but note that zero-weight
    /// vertices are free to move under any balance constraint.
    pub fn add_vertex(&mut self, weight: u64) -> VertexId {
        let id = VertexId::from_index(self.vertex_weights.len());
        self.vertex_weights.push(weight);
        id
    }

    /// Adds `n` vertices of identical weight, returning the id of the first;
    /// ids are consecutive.
    pub fn add_vertices(&mut self, n: usize, weight: u64) -> VertexId {
        let first = VertexId::from_index(self.vertex_weights.len());
        self.vertex_weights.extend(std::iter::repeat_n(weight, n));
        first
    }

    /// Adds a net over the given pins with the given weight and returns its
    /// id. Duplicate pins are collapsed; pin order is otherwise preserved.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyNet`] if `pins` is empty and
    /// [`BuildError::UnknownVertex`] if any pin is out of range.
    pub fn add_net<I>(&mut self, pins: I, weight: u32) -> Result<NetId, BuildError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let net_index = self.net_weights.len();
        self.scratch.clear();
        for v in pins {
            if v.index() >= self.vertex_weights.len() {
                return Err(BuildError::UnknownVertex {
                    net: net_index,
                    vertex: v.raw(),
                    num_vertices: self.vertex_weights.len(),
                });
            }
            if !self.scratch.contains(&v) {
                self.scratch.push(v);
            }
        }
        if self.scratch.is_empty() {
            return Err(BuildError::EmptyNet { net: net_index });
        }
        let new_len = self
            .net_pin_list
            .len()
            .checked_add(self.scratch.len())
            .filter(|&l| u32::try_from(l).is_ok())
            .ok_or(BuildError::TooManyPins)?;
        self.net_pin_list.extend_from_slice(&self.scratch);
        self.net_pin_offsets.push(new_len as u32);
        self.net_weights.push(weight);
        Ok(NetId::from_index(net_index))
    }

    /// Marks vertex `v` as fixed in partition `part`. The check that `v`
    /// exists is deferred to [`build`](Self::build) so pads can be fixed
    /// before or after net insertion in any order.
    pub fn fix_vertex(&mut self, v: VertexId, part: PartId) {
        self.fixed.push((v.raw(), part));
    }

    /// Finalizes the builder into an immutable [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::FixUnknownVertex`] if a fixed-vertex assignment
    /// references a vertex that was never added.
    pub fn build(self) -> Result<Hypergraph, BuildError> {
        let num_vertices = self.vertex_weights.len();
        let mut fixed = vec![None; num_vertices];
        for (raw, part) in self.fixed {
            if raw as usize >= num_vertices {
                return Err(BuildError::FixUnknownVertex {
                    vertex: raw,
                    num_vertices,
                });
            }
            fixed[raw as usize] = Some(part);
        }
        Ok(Hypergraph::from_parts(
            self.name,
            self.net_pin_offsets,
            self.net_pin_list,
            self.vertex_weights,
            self.net_weights,
            fixed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pins_are_collapsed() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        let e = b.add_net([v0, v1, v0, v1, v0], 1).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.net_size(e), 2);
        h.validate().unwrap();
    }

    #[test]
    fn single_pin_net_is_allowed() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let e = b.add_net([v0], 1).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.net_size(e), 1);
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        let err = b.add_net(std::iter::empty(), 1).unwrap_err();
        assert_eq!(err, BuildError::EmptyNet { net: 0 });
    }

    #[test]
    fn unknown_pin_is_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        let err = b.add_net([VertexId::new(5)], 1).unwrap_err();
        assert!(matches!(err, BuildError::UnknownVertex { vertex: 5, .. }));
    }

    #[test]
    fn fix_unknown_vertex_is_rejected_at_build() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        b.fix_vertex(VertexId::new(9), PartId::P0);
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            BuildError::FixUnknownVertex { vertex: 9, .. }
        ));
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = HypergraphBuilder::new();
        let first = b.add_vertices(5, 7);
        assert_eq!(first.index(), 0);
        assert_eq!(b.num_vertices(), 5);
        let h = b.build().unwrap();
        assert_eq!(h.total_vertex_weight(), 35);
    }

    #[test]
    fn later_fix_overrides_earlier() {
        let mut b = HypergraphBuilder::new();
        let v = b.add_vertex(1);
        b.fix_vertex(v, PartId::P0);
        b.fix_vertex(v, PartId::P1);
        let h = b.build().unwrap();
        assert_eq!(h.fixed_part(v), Some(PartId::P1));
        assert_eq!(h.num_fixed(), 1);
    }
}
