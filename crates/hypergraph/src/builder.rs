//! Incremental construction of [`Hypergraph`] instances.

use crate::error::BuildError;
use crate::graph::{CsrScratch, Hypergraph};
use crate::ids::{NetId, PartId, VertexId};

/// Builder for [`Hypergraph`].
///
/// Vertices are added first (each returning its [`VertexId`]), then nets
/// referencing those vertices. Duplicate pins within one net are silently
/// collapsed (ISPD98-style netlists routinely contain them); nets reduced to
/// a single pin are kept, since a single-pin net is legal (it simply can
/// never be cut).
///
/// # Example
///
/// ```
/// use hypart_hypergraph::{HypergraphBuilder, PartId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::with_capacity(4, 2);
/// let pads: Vec<_> = (0..4).map(|i| b.add_vertex(i + 1)).collect();
/// b.add_net([pads[0], pads[1], pads[2]], 1)?;
/// b.add_net([pads[2], pads[3]], 2)?;
/// b.fix_vertex(pads[0], PartId::P0);
/// let h = b.name("pads").build()?;
/// assert_eq!(h.num_fixed(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct HypergraphBuilder {
    name: String,
    vertex_weights: Vec<u64>,
    net_weights: Vec<u32>,
    net_pin_offsets: Vec<u32>,
    net_pin_list: Vec<VertexId>,
    fixed: Vec<(u32, PartId)>,
    scratch: Vec<VertexId>,
}

impl Default for HypergraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            name: String::new(),
            vertex_weights: Vec::new(),
            net_weights: Vec::new(),
            // CSR invariant: offsets always lead with the 0 sentinel.
            net_pin_offsets: vec![0],
            net_pin_list: Vec::new(),
            fixed: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Creates a builder with capacity reserved for `vertices` vertices and
    /// `nets` nets (an average net size of 4 pins is assumed for pin storage).
    pub fn with_capacity(vertices: usize, nets: usize) -> Self {
        let mut b = Self::new();
        b.vertex_weights.reserve(vertices);
        b.net_weights.reserve(nets);
        b.net_pin_offsets.reserve(nets + 1);
        b.net_pin_list.reserve(nets.saturating_mul(4));
        b
    }

    /// Sets the instance name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the instance name in place (for builders held by reference,
    /// e.g. one recycled across coarsening levels).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Reserves capacity for `vertices` additional vertices and `nets`
    /// additional nets carrying `pins` pins in total. Callers that know
    /// the exact coarse sizes (the multilevel coarsener does) avoid every
    /// growth reallocation of the CSR arrays.
    pub fn reserve(&mut self, vertices: usize, nets: usize, pins: usize) {
        self.vertex_weights.reserve(vertices);
        self.net_weights.reserve(nets);
        self.net_pin_offsets.reserve(nets);
        self.net_pin_list.reserve(pins);
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.net_weights.len()
    }

    /// Adds a vertex with the given weight (cell area) and returns its id.
    /// Weight 0 is permitted (e.g. pad cells) but note that zero-weight
    /// vertices are free to move under any balance constraint.
    pub fn add_vertex(&mut self, weight: u64) -> VertexId {
        let id = VertexId::from_index(self.vertex_weights.len());
        self.vertex_weights.push(weight);
        id
    }

    /// Adds `n` vertices of identical weight, returning the id of the first;
    /// ids are consecutive.
    pub fn add_vertices(&mut self, n: usize, weight: u64) -> VertexId {
        let first = VertexId::from_index(self.vertex_weights.len());
        self.vertex_weights.extend(std::iter::repeat_n(weight, n));
        first
    }

    /// Adds a net over the given pins with the given weight and returns its
    /// id. Duplicate pins are collapsed; pin order is otherwise preserved.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyNet`] if `pins` is empty and
    /// [`BuildError::UnknownVertex`] if any pin is out of range.
    pub fn add_net<I>(&mut self, pins: I, weight: u32) -> Result<NetId, BuildError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        let net_index = self.net_weights.len();
        self.scratch.clear();
        for v in pins {
            if v.index() >= self.vertex_weights.len() {
                return Err(BuildError::UnknownVertex {
                    net: net_index,
                    vertex: v.raw(),
                    num_vertices: self.vertex_weights.len(),
                });
            }
            if !self.scratch.contains(&v) {
                self.scratch.push(v);
            }
        }
        if self.scratch.is_empty() {
            return Err(BuildError::EmptyNet { net: net_index });
        }
        let new_len = self
            .net_pin_list
            .len()
            .checked_add(self.scratch.len())
            .filter(|&l| u32::try_from(l).is_ok())
            .ok_or(BuildError::TooManyPins)?;
        self.net_pin_list.extend_from_slice(&self.scratch);
        self.net_pin_offsets.push(new_len as u32);
        self.net_weights.push(weight);
        Ok(NetId::from_index(net_index))
    }

    /// Adds a net whose pins are already strictly sorted (therefore
    /// duplicate-free), skipping [`add_net`](Self::add_net)'s per-pin
    /// duplicate scan. The hot path of the multilevel coarsener emits
    /// exactly such slices.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyNet`] if `pins` is empty,
    /// [`BuildError::UnknownVertex`] if any pin is out of range, and
    /// [`BuildError::TooManyPins`] if the total pin count would overflow
    /// the `u32` CSR offsets.
    pub fn add_net_sorted_unique(
        &mut self,
        pins: &[VertexId],
        weight: u32,
    ) -> Result<NetId, BuildError> {
        let net_index = self.net_weights.len();
        debug_assert!(
            pins.windows(2).all(|w| w[0] < w[1]),
            "add_net_sorted_unique requires strictly sorted pins"
        );
        if pins.is_empty() {
            return Err(BuildError::EmptyNet { net: net_index });
        }
        // Strictly sorted pins: the last one is the largest.
        if let Some(&last) = pins.last() {
            if last.index() >= self.vertex_weights.len() {
                return Err(BuildError::UnknownVertex {
                    net: net_index,
                    vertex: last.raw(),
                    num_vertices: self.vertex_weights.len(),
                });
            }
        }
        let new_len = self
            .net_pin_list
            .len()
            .checked_add(pins.len())
            .filter(|&l| u32::try_from(l).is_ok())
            .ok_or(BuildError::TooManyPins)?;
        self.net_pin_list.extend_from_slice(pins);
        self.net_pin_offsets.push(new_len as u32);
        self.net_weights.push(weight);
        Ok(NetId::from_index(net_index))
    }

    /// Marks vertex `v` as fixed in partition `part`. The check that `v`
    /// exists is deferred to [`build`](Self::build) so pads can be fixed
    /// before or after net insertion in any order.
    pub fn fix_vertex(&mut self, v: VertexId, part: PartId) {
        self.fixed.push((v.raw(), part));
    }

    /// Finalizes the builder into an immutable [`Hypergraph`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::FixUnknownVertex`] if a fixed-vertex assignment
    /// references a vertex that was never added.
    pub fn build(self) -> Result<Hypergraph, BuildError> {
        let mut builder = self;
        builder.build_in(&mut CsrScratch::default())
    }

    /// [`build`](Self::build) with the inverse-CSR counting pass run in
    /// recycled `scratch`, leaving the builder empty and reusable. The
    /// CSR arrays themselves move into the returned [`Hypergraph`] (it
    /// owns them for its lifetime); only the `O(|V|)` counting/cursor
    /// scratch is recyclable, and `scratch` keeps it across builds.
    ///
    /// # Errors
    ///
    /// Same contract as [`build`](Self::build).
    pub fn build_in(&mut self, scratch: &mut CsrScratch) -> Result<Hypergraph, BuildError> {
        let num_vertices = self.vertex_weights.len();
        let mut fixed = vec![None; num_vertices];
        for &(raw, part) in &self.fixed {
            if raw as usize >= num_vertices {
                return Err(BuildError::FixUnknownVertex {
                    vertex: raw,
                    num_vertices,
                });
            }
            fixed[raw as usize] = Some(part);
        }
        self.fixed.clear();
        let name = std::mem::take(&mut self.name);
        let net_pin_offsets = std::mem::replace(&mut self.net_pin_offsets, vec![0]);
        let net_pin_list = std::mem::take(&mut self.net_pin_list);
        let vertex_weights = std::mem::take(&mut self.vertex_weights);
        let net_weights = std::mem::take(&mut self.net_weights);
        Ok(Hypergraph::from_parts_in(
            name,
            net_pin_offsets,
            net_pin_list,
            vertex_weights,
            net_weights,
            fixed,
            scratch,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_pins_are_collapsed() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        let e = b.add_net([v0, v1, v0, v1, v0], 1).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.net_size(e), 2);
        h.validate().unwrap();
    }

    #[test]
    fn single_pin_net_is_allowed() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let e = b.add_net([v0], 1).unwrap();
        let h = b.build().unwrap();
        assert_eq!(h.net_size(e), 1);
    }

    #[test]
    fn empty_net_is_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        let err = b.add_net(std::iter::empty(), 1).unwrap_err();
        assert_eq!(err, BuildError::EmptyNet { net: 0 });
    }

    #[test]
    fn unknown_pin_is_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        let err = b.add_net([VertexId::new(5)], 1).unwrap_err();
        assert!(matches!(err, BuildError::UnknownVertex { vertex: 5, .. }));
    }

    #[test]
    fn fix_unknown_vertex_is_rejected_at_build() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        b.fix_vertex(VertexId::new(9), PartId::P0);
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            BuildError::FixUnknownVertex { vertex: 9, .. }
        ));
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = HypergraphBuilder::new();
        let first = b.add_vertices(5, 7);
        assert_eq!(first.index(), 0);
        assert_eq!(b.num_vertices(), 5);
        let h = b.build().unwrap();
        assert_eq!(h.total_vertex_weight(), 35);
    }

    #[test]
    fn sorted_unique_fast_path_matches_add_net() {
        let mut a = HypergraphBuilder::new();
        let mut b = HypergraphBuilder::new();
        for builder in [&mut a, &mut b] {
            builder.add_vertices(5, 2);
        }
        let pins = [VertexId::new(0), VertexId::new(2), VertexId::new(4)];
        a.add_net(pins, 3).unwrap();
        b.add_net_sorted_unique(&pins, 3).unwrap();
        let (ha, hb) = (a.build().unwrap(), b.build().unwrap());
        assert_eq!(ha.net_pins(NetId::new(0)), hb.net_pins(NetId::new(0)));
        assert_eq!(ha.net_weight(NetId::new(0)), hb.net_weight(NetId::new(0)));
        hb.validate().unwrap();
    }

    #[test]
    fn sorted_unique_rejects_empty_and_out_of_range() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        assert_eq!(
            b.add_net_sorted_unique(&[], 1).unwrap_err(),
            BuildError::EmptyNet { net: 0 }
        );
        let err = b
            .add_net_sorted_unique(&[VertexId::new(0), VertexId::new(7)], 1)
            .unwrap_err();
        assert!(matches!(err, BuildError::UnknownVertex { vertex: 7, .. }));
    }

    #[test]
    fn build_in_recycles_and_resets() {
        let mut scratch = CsrScratch::new();
        let mut b = HypergraphBuilder::new();
        // Two successive builds through the same builder + scratch.
        for round in 0..2u64 {
            let v0 = b.add_vertex(round + 1);
            let v1 = b.add_vertex(round + 2);
            b.add_net([v0, v1], 1).unwrap();
            b.fix_vertex(v0, PartId::P1);
            b.set_name(format!("round{round}"));
            let h = b.build_in(&mut scratch).unwrap();
            assert_eq!(h.name(), format!("round{round}"));
            assert_eq!(h.num_vertices(), 2);
            assert_eq!(h.num_nets(), 1);
            assert_eq!(h.total_vertex_weight(), 2 * round + 3);
            assert_eq!(h.fixed_part(VertexId::new(0)), Some(PartId::P1));
            h.validate().unwrap();
            // The builder is empty and reusable after build_in.
            assert_eq!(b.num_vertices(), 0);
            assert_eq!(b.num_nets(), 0);
        }
    }

    #[test]
    fn later_fix_overrides_earlier() {
        let mut b = HypergraphBuilder::new();
        let v = b.add_vertex(1);
        b.fix_vertex(v, PartId::P0);
        b.fix_vertex(v, PartId::P1);
        let h = b.build().unwrap();
        assert_eq!(h.fixed_part(v), Some(PartId::P1));
        assert_eq!(h.num_fixed(), 1);
    }
}
