//! Property tests of [`Hypergraph::content_digest`].
//!
//! The digest keys the service's instance and hierarchy caches, so its
//! contract is load-bearing in both directions:
//!
//! * **invariance** — two builds with the same *content* must collide:
//!   net declaration order and pin order within a net are presentation,
//!   not content (the `.hgr` format fixes neither), and the instance
//!   name is metadata;
//! * **sensitivity** — any change to actual content (a vertex weight, a
//!   net weight, a pin, a fixed side, an extra net) must change the
//!   digest, else the cache would serve a wrong instance.
//!
//! Sensitivity is probabilistic (the digest is 128 bits wide), so the
//! tests assert inequality on generated instances — a failure is a real
//! mixing bug, not bad luck.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use hypart_hypergraph::{Hypergraph, HypergraphBuilder, PartId, VertexId};

/// A generated instance description we can rebuild in permuted forms:
/// vertex weights, fixed sides, and nets as (pins, weight).
#[derive(Debug, Clone)]
struct Spec {
    weights: Vec<u64>,
    fixed: Vec<Option<PartId>>,
    nets: Vec<(Vec<usize>, u32)>,
}

impl Spec {
    /// Builds the hypergraph with nets in `net_order` and each net's
    /// pins optionally reversed — same content, different presentation.
    fn build(&self, net_order: &[usize], reverse_pins: bool) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let vs: Vec<VertexId> = self.weights.iter().map(|&w| b.add_vertex(w)).collect();
        for (v, side) in self.fixed.iter().enumerate() {
            if let Some(side) = side {
                b.fix_vertex(vs[v], *side);
            }
        }
        for &n in net_order {
            let (pins, w) = &self.nets[n];
            let mut ids: Vec<VertexId> = pins.iter().map(|&p| vs[p]).collect();
            if reverse_pins {
                ids.reverse();
            }
            b.add_net(ids, *w).unwrap();
        }
        b.build().unwrap()
    }

    fn digest(&self, net_order: &[usize], reverse_pins: bool) -> u128 {
        self.build(net_order, reverse_pins).content_digest()
    }

    fn identity_order(&self) -> Vec<usize> {
        (0..self.nets.len()).collect()
    }
}

const MAX_N: usize = 24;

fn spec() -> impl Strategy<Value = Spec> {
    (
        3usize..MAX_N,
        proptest::collection::vec(1u64..16, MAX_N..MAX_N + 1),
        proptest::collection::vec(0u8..6, MAX_N..MAX_N + 1),
        proptest::collection::vec(
            (proptest::collection::vec(any::<u32>(), 2..5), 0u32..5),
            2..24,
        ),
    )
        .prop_map(|(n, weights, fixed, raw_nets)| {
            let weights: Vec<u64> = weights.into_iter().take(n).collect();
            let fixed: Vec<Option<PartId>> = fixed
                .into_iter()
                .take(n)
                .map(|f| match f {
                    0 => Some(PartId::P0),
                    1 => Some(PartId::P1),
                    _ => None,
                })
                .collect();
            // Deduplicate pins per net (the builder collapses duplicates
            // anyway; keeping the spec canonical makes pin-mutations in
            // the sensitivity tests honest).
            let nets: Vec<(Vec<usize>, u32)> = raw_nets
                .into_iter()
                .map(|(pins, w)| {
                    let mut pins: Vec<usize> = pins.into_iter().map(|p| p as usize % n).collect();
                    pins.sort_unstable();
                    pins.dedup();
                    (pins, w)
                })
                .collect();
            Spec {
                weights,
                fixed,
                nets,
            }
        })
}

proptest! {
    /// Net declaration order is presentation: any rotation of the net
    /// list digests identically, as does reversing every net's pins.
    #[test]
    fn digest_invariant_under_net_and_pin_reordering(s in spec(), rot in 1usize..8) {
        let identity = s.identity_order();
        let reference = s.digest(&identity, false);

        let mut rotated = identity.clone();
        let len = rotated.len().max(1);
        rotated.rotate_left(rot % len);
        prop_assert_eq!(s.digest(&rotated, false), reference);

        let mut reversed = identity.clone();
        reversed.reverse();
        prop_assert_eq!(s.digest(&reversed, false), reference);

        prop_assert_eq!(s.digest(&identity, true), reference);
        prop_assert_eq!(s.digest(&reversed, true), reference);
    }

    /// The instance name is metadata, not content.
    #[test]
    fn digest_ignores_the_name(s in spec()) {
        let named = {
            let mut b = HypergraphBuilder::new();
            let vs: Vec<VertexId> = s.weights.iter().map(|&w| b.add_vertex(w)).collect();
            for (v, side) in s.fixed.iter().enumerate() {
                if let Some(side) = side {
                    b.fix_vertex(vs[v], *side);
                }
            }
            for (pins, w) in &s.nets {
                b.add_net(pins.iter().map(|&p| vs[p]), *w).unwrap();
            }
            b.name("renamed-instance").build().unwrap()
        };
        prop_assert_eq!(named.content_digest(), s.digest(&s.identity_order(), false));
    }

    /// Every content mutation moves the digest: vertex weight, net
    /// weight, a dropped pin, a flipped fixed side, an appended net.
    #[test]
    fn digest_is_sensitive_to_content_changes(s in spec(), which in any::<u32>()) {
        let identity = s.identity_order();
        let reference = s.digest(&identity, false);

        let mut bumped = s.clone();
        let v = which as usize % bumped.weights.len();
        bumped.weights[v] += 1;
        prop_assert_ne!(bumped.digest(&identity, false), reference);

        let mut reweighted = s.clone();
        let n = which as usize % reweighted.nets.len();
        reweighted.nets[n].1 += 1;
        prop_assert_ne!(reweighted.digest(&identity, false), reference);

        let mut flipped = s.clone();
        let v = (which as usize).wrapping_mul(7) % flipped.fixed.len();
        flipped.fixed[v] = match flipped.fixed[v] {
            Some(PartId::P0) => Some(PartId::P1),
            Some(PartId::P1) => None,
            None => Some(PartId::P0),
        };
        prop_assert_ne!(flipped.digest(&identity, false), reference);

        let mut grown = s.clone();
        grown.nets.push((vec![0, 1, 2], 1));
        let grown_order: Vec<usize> = (0..grown.nets.len()).collect();
        prop_assert_ne!(grown.digest(&grown_order, false), reference);

        let mut shrunk = s.clone();
        if let Some(net) = shrunk.nets.iter_mut().find(|(pins, _)| pins.len() > 2) {
            net.0.pop();
            prop_assert_ne!(shrunk.digest(&identity, false), reference);
        }
    }
}

/// A digest survives an `.hgr` round trip: serialization is one of the
/// permutation-free presentations of the same content.
#[test]
fn digest_survives_hgr_round_trip() {
    let mut b = HypergraphBuilder::new();
    let vs: Vec<VertexId> = (0..9).map(|i| b.add_vertex(1 + (i % 3) as u64)).collect();
    for w in vs.windows(3) {
        b.add_net([w[0], w[1], w[2]], 2).unwrap();
    }
    let h = b.build().unwrap();
    let mut text = Vec::new();
    hypart_hypergraph::io::hgr::write(&h, &mut text).unwrap();
    let back = hypart_hypergraph::io::hgr::read(text.as_slice()).unwrap();
    assert_eq!(back.content_digest(), h.content_digest());
}
