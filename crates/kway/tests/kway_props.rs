//! Property tests of the k-way substrate: incremental bookkeeping vs
//! from-scratch recomputation, engine invariants, k = 2 consistency with
//! the 2-way engine's model.

use proptest::prelude::*;

use hypart_benchgen::random_hypergraph;
use hypart_hypergraph::VertexId;
use hypart_kway::{KWayBalance, KWayConfig, KWayFmPartitioner, KWayPartition};

fn params() -> impl Strategy<Value = (usize, usize, usize, u64, u64, usize)> {
    (
        6usize..40,
        5usize..60,
        2usize..5,
        1u64..6,
        any::<u64>(),
        2usize..6, // k
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any sequence of moves, incrementally maintained cut, (λ−1)
    /// cost, span, and part weights match from-scratch recomputation.
    #[test]
    fn incremental_matches_scratch((n, m, s, w, seed, k) in params(),
                                   moves in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..80)) {
        let h = random_hypergraph(n, m, s, w, seed);
        let assignment: Vec<u16> = (0..n).map(|i| (i % k) as u16).collect();
        let mut p = KWayPartition::new(&h, k, assignment);
        for (vr, tr) in moves {
            let v = VertexId::new(vr % n as u32);
            let to = (tr as usize) % k;
            if to == p.part_of(v) {
                continue;
            }
            let predicted = p.gain(v, to);
            let realized = p.move_vertex(v, to);
            prop_assert_eq!(predicted, realized);
            prop_assert_eq!(p.cut(), p.recompute_cut());
            prop_assert_eq!(p.lambda_minus_one(), p.recompute_lambda_minus_one());
        }
        let total: u64 = (0..k).map(|q| p.part_weight(q)).sum();
        prop_assert_eq!(total, h.total_vertex_weight());
    }

    /// The k-way engine's reported numbers always verify, and the
    /// lexicographic (violation, cut) score never worsens vs its own
    /// initial solution (checked via determinism and the refine contract).
    #[test]
    fn engine_results_verify((n, m, s, w, seed, k) in params()) {
        let h = random_hypergraph(n, m, s, w, seed);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), k, 0.5);
        let out = KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, seed);
        let p = KWayPartition::new(&h, k, out.assignment.clone());
        prop_assert_eq!(p.recompute_cut(), out.cut);
        prop_assert_eq!(p.recompute_lambda_minus_one(), out.lambda_minus_one);
        let weights: Vec<u64> = (0..k).map(|q| p.part_weight(q)).collect();
        prop_assert_eq!(&weights, &out.part_weights);
    }

    /// λ−1 cost dominates hyperedge cut and both are bounded by their
    /// trivial maxima.
    #[test]
    fn objective_bounds((n, m, s, w, seed, k) in params()) {
        let h = random_hypergraph(n, m, s, w, seed);
        let assignment: Vec<u16> = (0..n).map(|i| ((i * 7 + 3) % k) as u16).collect();
        let p = KWayPartition::new(&h, k, assignment);
        prop_assert!(p.lambda_minus_one() >= p.cut());
        let total_weight: u64 = h.nets().map(|e| u64::from(h.net_weight(e))).sum();
        prop_assert!(p.cut() <= total_weight);
        prop_assert!(p.lambda_minus_one() <= total_weight * (k as u64 - 1));
    }

    /// k = 2 hyperedge cut equals the 2-way Bisection cut for identical
    /// assignments.
    #[test]
    fn two_way_consistency((n, m, s, w, seed, _k) in params(),
                           mask in any::<u64>()) {
        use hypart_core::Bisection;
        use hypart_hypergraph::PartId;
        let h = random_hypergraph(n, m, s, w, seed);
        let assignment: Vec<u16> = (0..n).map(|i| ((mask >> (i % 64)) & 1) as u16).collect();
        let kp = KWayPartition::new(&h, 2, assignment.clone());
        let parts: Vec<PartId> = assignment
            .iter()
            .map(|&p| if p == 0 { PartId::P0 } else { PartId::P1 })
            .collect();
        let bis = Bisection::new(&h, parts).expect("valid");
        prop_assert_eq!(kp.cut(), bis.cut());
        // For k = 2, λ−1 cost equals the cut (λ is 1 or 2).
        prop_assert_eq!(kp.lambda_minus_one(), bis.cut());
    }
}
