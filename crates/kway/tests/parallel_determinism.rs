//! Thread-count-invariance of the multilevel k-way engine's parallel
//! hierarchy build: with `MlKWayConfig::deterministic` (the default),
//! the JSONL trace and the solution are bitwise identical for every
//! lane count — the k-way leg of the determinism contract tested for
//! the 2-way engine in `hypart-ml`'s `parallel_determinism` suite.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use hypart_benchgen::ispd98_like;
use hypart_core::{AuditLevel, RunCtx};
use hypart_kway::{KWayBalance, KWayPartition, MlKWayConfig, MlKWayPartitioner};
use hypart_trace::JsonlSink;

#[test]
fn kway_traces_bitwise_identical_across_lane_counts() {
    let h = ispd98_like(1, 0.08, 0xD1CE);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.15);
    let run = |threads: usize| {
        let sink = JsonlSink::new(Vec::new());
        let mut ctx = RunCtx::new(42).with_sink(&sink);
        let out = MlKWayPartitioner::new(MlKWayConfig::default().with_threads(threads))
            .run_with(&h, &balance, &mut ctx);
        (sink.finish().expect("in-memory sink"), out)
    };
    let (reference_bytes, reference_out) = run(1);
    assert!(!reference_bytes.is_empty());
    for threads in [2usize, 4, 8] {
        let (bytes, out) = run(threads);
        assert_eq!(
            bytes, reference_bytes,
            "JSONL trace at {threads} lanes differs from the 1-lane trace"
        );
        assert_eq!(out.assignment, reference_out.assignment, "{threads} lanes");
        assert_eq!(out.cut, reference_out.cut, "{threads} lanes");
    }
}

#[test]
fn kway_parallel_build_matches_serial_build() {
    // threads == 0 (the serial legacy build) and threads >= 1 (the
    // deterministic parallel build) must agree exactly: the parallel
    // coarsener is a drop-in for the serial one.
    let h = ispd98_like(2, 0.06, 0xFACE);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 3, 0.20);
    let serial = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 7);
    let parallel =
        MlKWayPartitioner::new(MlKWayConfig::default().with_threads(4)).run(&h, &balance, 7);
    assert_eq!(serial.assignment, parallel.assignment);
    assert_eq!(serial.cut, parallel.cut);
}

#[test]
fn kway_relaxed_mode_is_audit_clean() {
    let h = ispd98_like(1, 0.08, 0xD1CE);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.15);
    let mut ctx = RunCtx::new(3).with_audit(AuditLevel::Paranoid);
    let out = MlKWayPartitioner::new(
        MlKWayConfig::default()
            .with_threads(4)
            .with_deterministic(false),
    )
    .run_with(&h, &balance, &mut ctx);
    assert!(out.audit_failure.is_none(), "{:?}", out.audit_failure);
    let p = KWayPartition::new(&h, 4, out.assignment);
    assert_eq!(p.recompute_cut(), out.cut);
}
