//! The n-level direct k-way backend: single-pair contraction with
//! memento undo and localized k-way refinement per uncontraction —
//! the k-way twin of the 2-way n-level engine in `hypart-ml`.
//!
//! Entered through [`MlKWayPartitioner::run_with`] when the config
//! selects [`EngineKind::NLevel`](hypart_core::EngineKind::NLevel).
//! Phase structure: contract one pair at a time down to the coarse-config
//! stop size, materialize the coarse core once, run the seeded flat
//! k-way portfolio on it, then undo mementos LIFO with localized FM
//! seeded on the released pair. Budget stops degrade gracefully —
//! refinement ceases, undo continues — so the outcome is always a legal
//! full-size k-way partition.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::balance::KWayBalance;
use crate::fm::{record_kway_audit, KWayFmPartitioner, KWayOutcome};
use crate::multilevel::{MlKWayConfig, MlKWayPartitioner};
use crate::partition::KWayPartition;
use hypart_core::{
    refine_localized, select_contractions, AuditError, AuditLevel, ContractionLimits, RunCtx,
    StopReason,
};
use hypart_hypergraph::Hypergraph;
use hypart_trace::RunEvent;

/// Above this slot count, `Paranoid` audits skip the per-uncontraction
/// cut recomputation (quadratic) and only verify the final solution.
const PARANOID_STEP_AUDIT_MAX_SLOTS: usize = 4_096;

/// Contraction limits from the shared coarsening config (the cluster-cap
/// formula matches `hypart_ml::coarsen::cluster_cap`).
fn limits_for(h: &Hypergraph, config: &MlKWayConfig) -> ContractionLimits {
    let avg_weight = h.total_vertex_weight() as f64 / h.num_vertices() as f64;
    let cluster_cap = ((avg_weight * config.coarsen.cluster_cap_multiple) as u64)
        .max(h.max_vertex_weight())
        .max(1);
    ContractionLimits {
        stop_size: config.coarsen.stop_size,
        max_net_size: config.coarsen.max_net_size_for_matching,
        cluster_cap,
    }
}

/// One n-level direct k-way run. See the module docs for the phases.
pub(crate) fn run_nlevel_kway(
    partitioner: &MlKWayPartitioner,
    h: &Hypergraph,
    balance: &KWayBalance,
    ctx: &mut RunCtx<'_>,
) -> KWayOutcome {
    let config = partitioner.config();
    let k = balance.num_parts();
    let base_seed = ctx.seed;
    let mut rng = SmallRng::seed_from_u64(base_seed);
    let engine = KWayFmPartitioner::new(config.refine);

    // Contraction phase, bracketed like the 2-way backend, on the
    // context's recycled n-level arenas (taken out for the run so the
    // view and the context stay independently borrowable).
    let mut ws = std::mem::take(&mut ctx.nlevel);
    ws.dynhg.reset_from_csr(h);
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::ContractionBegin {
            vertices: ws.dynhg.num_active(),
            nets: ws.dynhg.num_live_nets(),
        });
    }
    let limits = limits_for(h, config);
    let mut probe = ctx.probe();
    select_contractions(
        &mut ws.dynhg,
        &limits,
        None,
        base_seed,
        &mut ctx.coarsen.conn,
        &mut ws.contract,
        &mut probe,
    );
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::ContractionEnd {
            contractions: ws.contract.mementos.len(),
            vertices: ws.dynhg.num_active(),
            nets: ws.dynhg.num_live_nets(),
        });
    }

    // Initial partitioning: seeded flat k-way portfolio on the
    // materialized core, best by lexicographic (violation, cut) — the
    // same schedule as the coarse-grained k-way backend.
    let core = ws.dynhg.materialize_into(&mut ws.dense_of, &mut ws.slot_of);
    let mut best: Option<(u64, u64, Vec<u16>)> = None;
    let mut stopped = StopReason::Completed;
    let mut audit_failure: Option<AuditError> = None;
    for t in 0..config.initial_tries.max(1) {
        ctx.seed = rng.gen::<u64>() ^ t as u64;
        let out = engine.run_with(&core, balance, ctx);
        let try_stop = out.stopped;
        if audit_failure.is_none() {
            audit_failure = out.audit_failure.clone();
        }
        let p = KWayPartition::new(&core, k, out.assignment);
        let score = (balance.total_violation(&p), p.cut());
        if best.as_ref().is_none_or(|(v, c, _)| score < (*v, *c)) {
            best = Some((score.0, score.1, p.into_assignment()));
        }
        if try_stop.is_stopped() {
            stopped = try_stop;
            break;
        }
    }
    ctx.seed = base_seed;
    let initial = match best {
        Some((_, _, assignment)) => assignment,
        None => unreachable!("the first initial try always completes"),
    };
    ws.labels.clear();
    ws.labels.resize(ws.dynhg.num_slots(), 0);
    for (dense, &part) in initial.iter().enumerate() {
        ws.labels[ws.slot_of[dense].index()] = part;
    }
    ws.partition.reset(&ws.dynhg, k, &ws.labels);

    // Uncontraction phase: undo LIFO, localized refinement per step.
    let levels = ws.contract.mementos.len();
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::UncontractionBegin {
            contractions: levels,
        });
    }
    let (lower, upper) = (balance.lower(), balance.upper());
    let step_audit = ctx.audit() == AuditLevel::Paranoid
        && ws.dynhg.num_slots() <= PARANOID_STEP_AUDIT_MAX_SLOTS;
    let mut total_moves = 0usize;
    for i in (0..levels).rev() {
        let m = ws.contract.mementos[i];
        if !stopped.is_stopped() {
            if let Some(reason) = probe.stop_now() {
                stopped = reason;
                ctx.sink.emit(RunEvent::BudgetExhausted { reason });
            }
        }
        ws.partition.begin_uncontract(&ws.dynhg, &m);
        ws.dynhg.uncontract(&m);
        if stopped.is_stopped() {
            continue;
        }
        total_moves += refine_localized(
            &mut ws.partition,
            &ws.dynhg,
            &[m.u, m.v],
            lower,
            upper,
            config.refine.insertion,
            &mut rng,
            &mut ws.refine,
            ctx,
        );
        if step_audit {
            let recomputed = ws.partition.recompute_cut(&ws.dynhg);
            if recomputed != ws.partition.cut() {
                let e = AuditError::CutMismatch {
                    reported: ws.partition.cut(),
                    recomputed,
                };
                ctx.sink.emit(RunEvent::InvariantViolation {
                    check: e.check().to_string(),
                    detail: format!("{e} after uncontracting ({:?}, {:?})", m.u, m.v),
                });
                if audit_failure.is_none() {
                    audit_failure = Some(e);
                }
            }
        }
    }
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::UncontractionEnd {
            moves: total_moves,
            cut: ws.partition.cut(),
        });
    }

    // Final whole-run checkpoint on the input graph.
    let assignment = ws.partition.assignment().to_vec();
    ctx.nlevel = ws;
    let final_partition = KWayPartition::new(h, k, assignment);
    if ctx.audit().is_on() {
        let window = balance
            .is_satisfied(&final_partition)
            .then(|| (balance.lower(), balance.upper()));
        record_kway_audit(&final_partition, window, &mut audit_failure, ctx.sink);
    }
    KWayOutcome {
        num_parts: k,
        cut: final_partition.cut(),
        lambda_minus_one: final_partition.lambda_minus_one(),
        part_weights: (0..k).map(|p| final_partition.part_weight(p)).collect(),
        // No pass structure on the n-level path: report localized moves.
        passes: total_moves,
        stopped,
        audit_failure,
        assignment: final_partition.into_assignment(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_benchgen::toys::grid;
    use hypart_benchgen::{ispd98_like, mcnc_like};
    use hypart_core::EngineKind;

    fn nlevel() -> MlKWayPartitioner {
        MlKWayPartitioner::new(MlKWayConfig::default().with_engine(EngineKind::NLevel))
    }

    #[test]
    fn quarters_a_grid_near_optimally() {
        let h = grid(16, 16);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.15);
        let out = nlevel().run(&h, &balance, 3);
        assert!(out.is_balanced(&balance));
        assert!(out.cut <= 56, "cut {}", out.cut);
    }

    #[test]
    fn verifies_and_is_deterministic() {
        let h = mcnc_like(500, 7);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 3, 0.25);
        let a = nlevel().run(&h, &balance, 11);
        let b = nlevel().run(&h, &balance, 11);
        assert_eq!(a.assignment, b.assignment);
        let p = KWayPartition::new(&h, 3, a.assignment.clone());
        assert_eq!(p.recompute_cut(), a.cut);
        assert!(a.is_balanced(&balance));
    }

    #[test]
    fn odd_k_supported() {
        let h = mcnc_like(300, 2);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 5, 0.30);
        let out = nlevel().run(&h, &balance, 1);
        assert_eq!(out.num_parts, 5);
        assert!(out.is_balanced(&balance));
    }

    #[test]
    fn competitive_with_coarse_ml_kway() {
        let h = ispd98_like(1, 0.04, 9);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.20);
        let coarse = MlKWayPartitioner::new(MlKWayConfig::default());
        let coarse_best = (0..3u64).map(|s| coarse.run(&h, &balance, s).cut).min();
        let fine_best = (0..3u64).map(|s| nlevel().run(&h, &balance, s).cut).min();
        let (Some(coarse_best), Some(fine_best)) = (coarse_best, fine_best) else {
            unreachable!("three seeds each")
        };
        assert!(
            fine_best as f64 <= coarse_best as f64 * 1.3,
            "n-level k-way best {fine_best} vs coarse best {coarse_best}"
        );
    }
}
