//! Multi-way hypergraph partitioning.
//!
//! The paper confines its experiments to FM-based 2-way partitioning and
//! names "the difficulty of multi-way partitioning" as one of the two
//! fundamental gaps in knowledge (§4); its footnote 2 further notes that
//! the classic FM-82 gain update is "netcut- and two-way specific", so a
//! k-way engine must solve the generic update problem. This crate supplies
//! that substrate:
//!
//! * [`KWayPartition`] — incremental k-way state: per-part weights,
//!   per-net span (λ), hyperedge cut and (λ−1) ("SOED minus one")
//!   objectives;
//! * [`KWayBalance`] — per-part weight windows around `total/k`;
//! * [`KWayFmPartitioner`] — direct k-way FM in the style of Sanchis,
//!   with one gain container per ordered (from, to) partition pair and
//!   the generic cut-delta gain update;
//! * [`recursive_bisection`] — the classical alternative: repeated 2-way
//!   multilevel min-cut bisection (for `k` a power of two);
//! * [`MlKWayPartitioner`] — multilevel k-way: coarsening + direct k-way
//!   FM refinement at every level (any `k`).
//!
//! # Example
//!
//! ```
//! use hypart_kway::{recursive_bisection, KWayBalance, KWayConfig};
//! use hypart_ml::MlConfig;
//! use hypart_benchgen::toys::grid;
//!
//! let h = grid(8, 8);
//! let out = recursive_bisection(&h, 4, 0.25, &MlConfig::default(), 3);
//! assert_eq!(out.num_parts, 4);
//! let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.25);
//! assert!(out.is_balanced(&balance));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balance;
mod fm;
mod multilevel;
mod nlevel_kway;
mod partition;
mod recursive;

pub use balance::KWayBalance;
pub use fm::{KWayConfig, KWayFmPartitioner, KWayOutcome};
pub use hypart_core::EngineKind;
pub use multilevel::{MlKWayConfig, MlKWayPartitioner};
pub use partition::KWayPartition;
pub use recursive::{recursive_bisection, recursive_bisection_with};
