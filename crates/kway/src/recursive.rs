//! Recursive min-cut bisection into k parts.
//!
//! The classical alternative to direct k-way FM (and the approach every
//! top-down placer uses): recursively apply a strong 2-way multilevel
//! partitioner. Supported for `k` a power of two, where every split is a
//! balanced bisection.

use hypart_core::{AuditError, BalanceConstraint, RunCtx, StopReason};
use hypart_hypergraph::subgraph::induce;
use hypart_hypergraph::{Hypergraph, PartId, VertexId};
use hypart_ml::{MlConfig, MlPartitioner};

use crate::balance::KWayBalance;
use crate::fm::{record_kway_audit, KWayOutcome};

/// Recursively bisects `h` into `k` parts (k a power of two) with the
/// 2-way multilevel partitioner, using balance `fraction` at each split.
/// Returns a [`KWayOutcome`] comparable with the direct k-way engine's.
///
/// Equivalent to [`recursive_bisection_with`] with a default [`RunCtx`]
/// (no sink, no deadline).
///
/// # Panics
///
/// Panics if `k < 2` or `k` is not a power of two.
pub fn recursive_bisection(
    h: &Hypergraph,
    k: usize,
    fraction: f64,
    ml_config: &MlConfig,
    seed: u64,
) -> KWayOutcome {
    recursive_bisection_with(h, k, fraction, ml_config, &mut RunCtx::new(seed))
}

/// The canonical recursive-bisection entry point: splits under the
/// context's sink, workspace, seed, and budget. On a budget stop the
/// remaining regions are still assigned (each unsplit region collapses
/// onto its base part), so the outcome is always a legal full-size
/// k-way partition — possibly with empty high-index parts.
///
/// # Panics
///
/// Panics if `k < 2` or `k` is not a power of two.
pub fn recursive_bisection_with(
    h: &Hypergraph,
    k: usize,
    fraction: f64,
    ml_config: &MlConfig,
    ctx: &mut RunCtx<'_>,
) -> KWayOutcome {
    assert!(k >= 2, "k must be at least 2, got {k}");
    assert!(
        k.is_power_of_two(),
        "recursive bisection needs k = 2^m, got {k}"
    );
    let ml = MlPartitioner::new(ml_config.clone());
    let base_seed = ctx.seed;
    let mut probe = ctx.probe();
    let mut stopped = StopReason::Completed;

    let mut assignment = vec![0u16; h.num_vertices()];
    // Work list: (cells of the region, base part index, parts to split into).
    let mut stack: Vec<(Vec<VertexId>, usize, usize)> = vec![(h.vertices().collect(), 0, k)];
    let mut next_seed = base_seed;
    let mut first_split = true;
    let mut audit_failure: Option<AuditError> = None;

    while let Some((cells, base, parts)) = stack.pop() {
        if parts == 1 || cells.is_empty() || stopped.is_stopped() {
            for &v in &cells {
                assignment[v.index()] = base as u16;
            }
            continue;
        }
        // Check the budget between splits (the first split always runs so
        // the outcome is a genuine bisection even with an expired budget).
        if !first_split {
            if let Some(reason) = probe.stop_now() {
                stopped = reason;
                for &v in &cells {
                    assignment[v.index()] = base as u16;
                }
                continue;
            }
        }
        first_split = false;
        let sub = induce(h, &cells).graph;
        // At each split the per-side tolerance must tighten so the final
        // k-way windows hold: use fraction / log2(k) per level, the
        // standard conservative schedule.
        let levels = k.trailing_zeros() as f64;
        let per_level = (fraction / levels).max(0.005);
        let constraint = BalanceConstraint::with_fraction(sub.total_vertex_weight(), per_level);
        ctx.seed = next_seed;
        let out = ml.run_with(&sub, &constraint, ctx);
        if out.stopped.is_stopped() {
            stopped = out.stopped;
        }
        if audit_failure.is_none() {
            audit_failure = out.audit_failure.clone();
        }
        next_seed = next_seed.wrapping_add(0x9E37_79B9);

        let mut left = Vec::new();
        let mut right = Vec::new();
        for (i, &orig) in cells.iter().enumerate() {
            match out.assignment[i] {
                PartId::P0 => left.push(orig),
                PartId::P1 => right.push(orig),
            }
        }
        stack.push((left, base, parts / 2));
        stack.push((right, base + parts / 2, parts / 2));
    }
    ctx.seed = base_seed;

    let partition = crate::partition::KWayPartition::new(h, k, assignment);
    // Final whole-partition checkpoint: the recursion's bookkeeping lives
    // in per-region subgraphs, so re-verify the assembled k-way result on
    // the input graph from scratch.
    if ctx.audit().is_on() {
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), k, fraction);
        let window = balance
            .is_satisfied(&partition)
            .then(|| (balance.lower(), balance.upper()));
        record_kway_audit(&partition, window, &mut audit_failure, ctx.sink);
    }
    KWayOutcome {
        num_parts: k,
        cut: partition.cut(),
        lambda_minus_one: partition.lambda_minus_one(),
        part_weights: (0..k).map(|p| partition.part_weight(p)).collect(),
        passes: 0,
        stopped,
        audit_failure,
        assignment: partition.into_assignment(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KWayBalance, KWayConfig, KWayFmPartitioner};
    use hypart_benchgen::toys::grid;
    use hypart_benchgen::{ispd98_like, mcnc_like};

    #[test]
    fn splits_grid_into_four_quadrants_cheaply() {
        let h = grid(12, 12);
        let out = recursive_bisection(&h, 4, 0.2, &MlConfig::default(), 1);
        assert_eq!(out.num_parts, 4);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.2);
        assert!(out.is_balanced(&balance));
        // A 12x12 grid quartered cuts about 2 cutlines of 12 each.
        assert!(out.cut <= 40, "cut {}", out.cut);
    }

    #[test]
    fn outcome_verifies_against_scratch() {
        let h = mcnc_like(400, 5);
        let out = recursive_bisection(&h, 8, 0.3, &MlConfig::default(), 3);
        let p = crate::KWayPartition::new(&h, 8, out.assignment.clone());
        assert_eq!(p.cut(), out.cut);
        assert_eq!(p.recompute_lambda_minus_one(), out.lambda_minus_one);
    }

    #[test]
    fn all_parts_nonempty_on_reasonable_instances() {
        let h = mcnc_like(600, 2);
        let out = recursive_bisection(&h, 4, 0.2, &MlConfig::default(), 9);
        for (p, &w) in out.part_weights.iter().enumerate() {
            assert!(w > 0, "part {p} is empty");
        }
    }

    #[test]
    fn recursive_bisection_competes_with_direct_kway() {
        // The classical comparison: on structured instances recursive
        // ML-bisection should be at least competitive with flat direct
        // k-way FM.
        let h = ispd98_like(1, 0.03, 21);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.3);
        let recursive = recursive_bisection(&h, 4, 0.3, &MlConfig::default(), 2);
        let direct = KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, 2);
        assert!(
            recursive.cut <= direct.cut * 2,
            "recursive {} vs direct {}",
            recursive.cut,
            direct.cut
        );
    }

    #[test]
    #[should_panic(expected = "2^m")]
    fn non_power_of_two_panics() {
        let h = grid(4, 4);
        let _ = recursive_bisection(&h, 3, 0.2, &MlConfig::default(), 0);
    }
}
