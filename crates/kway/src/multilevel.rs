//! Multilevel k-way partitioning: the hMetis-style combination of
//! coarsening with direct k-way FM refinement at every level — the
//! engine that closes the gap between flat direct k-way FM and recursive
//! bisection, and the natural implementation of the paper's §4 future
//! work.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::balance::KWayBalance;
use crate::fm::{record_kway_audit, KWayConfig, KWayFmPartitioner, KWayOutcome};
use crate::partition::KWayPartition;
use hypart_core::{AuditError, EngineKind, RunCtx, StopReason};
use hypart_hypergraph::Hypergraph;
use hypart_ml::build_hierarchy_par_with;
use hypart_ml::coarsen::{build_hierarchy_with, CoarsenConfig};
use hypart_trace::RunEvent;

/// Configuration of the multilevel k-way partitioner.
///
/// Every field has a `with_*` builder, mirroring the 2-way
/// `MlConfig`/`FmConfig` surface:
///
/// | knob | role |
/// |------|------|
/// | [`refine`](Self::refine) | flat k-way engine at every level |
/// | [`coarsen`](Self::coarsen) | clustering schedule (shared with 2-way ML) |
/// | [`initial_tries`](Self::initial_tries) | seeded starts on the coarsest graph |
/// | [`engine`](Self::engine) | multilevel backend: coarse-grained levels or n-level |
#[derive(Clone, Debug, PartialEq)]
pub struct MlKWayConfig {
    /// Flat k-way engine used for refinement at every level.
    pub refine: KWayConfig,
    /// Coarsening parameters (shared with the 2-way multilevel framework).
    pub coarsen: CoarsenConfig,
    /// Seeded initial k-way partitions tried on the coarsest graph.
    pub initial_tries: usize,
    /// Number of parallel lanes for hierarchy construction. `0` (the
    /// default) builds the hierarchy serially; `>= 1` uses the parallel
    /// coarsener with that many lanes (mirrors
    /// [`MlConfig::threads`](hypart_ml::MlConfig::threads)).
    pub threads: usize,
    /// Determinism contract of the parallel hierarchy build: when `true`
    /// (the default) the hierarchy — and therefore the whole run — is
    /// identical for every lane and thread count.
    pub deterministic: bool,
    /// Which multilevel backend runs: the coarse-grained level-by-level
    /// hierarchy (the default) or the n-level single-pair contraction
    /// engine. The n-level backend is serial-only and ignores
    /// [`threads`](Self::threads); it is always deterministic.
    pub engine: EngineKind,
}

impl Default for MlKWayConfig {
    fn default() -> Self {
        MlKWayConfig {
            refine: KWayConfig::default(),
            coarsen: CoarsenConfig::default(),
            initial_tries: 8,
            threads: 0,
            deterministic: true,
            engine: EngineKind::MlCoarse,
        }
    }
}

impl MlKWayConfig {
    /// Replaces the flat k-way refinement engine config (builder-style).
    pub fn with_refine(mut self, refine: KWayConfig) -> Self {
        self.refine = refine;
        self
    }

    /// Replaces the coarsening parameters (builder-style).
    pub fn with_coarsen(mut self, coarsen: CoarsenConfig) -> Self {
        self.coarsen = coarsen;
        self
    }

    /// Sets how many seeded initial k-way partitions are tried on the
    /// coarsest graph (builder-style; clamped to at least 1 at run time).
    pub fn with_initial_tries(mut self, initial_tries: usize) -> Self {
        self.initial_tries = initial_tries;
        self
    }

    /// Sets the lane count of the parallel hierarchy build
    /// (builder-style); `0` keeps the serial build.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the determinism contract of the parallel hierarchy build
    /// (builder-style).
    pub fn with_deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Selects the multilevel backend (builder-style).
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// A multilevel k-way partitioner.
#[derive(Clone, Debug)]
pub struct MlKWayPartitioner {
    config: MlKWayConfig,
}

impl MlKWayPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: MlKWayConfig) -> Self {
        MlKWayPartitioner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MlKWayConfig {
        &self.config
    }

    /// Runs one multilevel k-way start on `h` from `seed`.
    ///
    /// Equivalent to [`run_with`](MlKWayPartitioner::run_with) with a
    /// default [`RunCtx`] (no sink, no deadline).
    pub fn run(&self, h: &Hypergraph, balance: &KWayBalance, seed: u64) -> KWayOutcome {
        self.run_with(h, balance, &mut RunCtx::new(seed))
    }

    /// The canonical run entry point: one multilevel k-way start under
    /// the context's sink, workspace, seed, and budget. One workspace
    /// serves every initial try and every level of the uncoarsening
    /// sweep: the k² gain-container grid is re-targeted in place instead
    /// of reallocated per engine invocation. On a budget stop, remaining
    /// refinement is skipped but the solution is still projected to the
    /// input graph, so the outcome is always a legal full-size partition.
    pub fn run_with(
        &self,
        h: &Hypergraph,
        balance: &KWayBalance,
        ctx: &mut RunCtx<'_>,
    ) -> KWayOutcome {
        if self.config.engine == EngineKind::NLevel {
            return crate::nlevel_kway::run_nlevel_kway(self, h, balance, ctx);
        }
        let k = balance.num_parts();
        let base_seed = ctx.seed;
        let mut rng = SmallRng::seed_from_u64(base_seed);
        let engine = KWayFmPartitioner::new(self.config.refine);

        let levels = if self.config.threads > 0 {
            hypart_core::ensure_lanes(&mut ctx.lanes, self.config.threads);
            let mut lanes = std::mem::take(&mut ctx.lanes);
            let mut probe = ctx.probe();
            let levels = build_hierarchy_par_with(
                h,
                &self.config.coarsen,
                None,
                &mut rng,
                &mut ctx.coarsen,
                &mut lanes,
                self.config.deterministic,
                &mut probe,
            );
            ctx.lanes = lanes;
            levels
        } else {
            build_hierarchy_with(h, &self.config.coarsen, None, &mut rng, &mut ctx.coarsen)
        };
        if ctx.sink.is_enabled() {
            for (i, level) in levels.iter().enumerate() {
                ctx.sink.emit(RunEvent::LevelDown {
                    level: i + 1,
                    vertices: level.graph.num_vertices(),
                    nets: level.graph.num_nets(),
                });
            }
        }
        let coarsest: &Hypergraph = levels.last().map_or(h, |l| &l.graph);

        // Initial partitioning: several full engine runs on the coarsest
        // graph, best kept (lexicographic on violation then cut). The
        // first try always runs so the outcome is well-formed even with
        // an expired deadline; later tries are skipped once stopped.
        let mut best: Option<(u64, u64, Vec<u16>)> = None;
        let mut stopped = StopReason::Completed;
        let mut audit_failure: Option<AuditError> = None;
        for t in 0..self.config.initial_tries.max(1) {
            ctx.seed = rng.gen::<u64>() ^ t as u64;
            let out = engine.run_with(coarsest, balance, ctx);
            let try_stop = out.stopped;
            if audit_failure.is_none() {
                audit_failure = out.audit_failure.clone();
            }
            let p = KWayPartition::new(coarsest, k, out.assignment);
            let score = (balance.total_violation(&p), p.cut());
            if best.as_ref().is_none_or(|(v, c, _)| score < (*v, *c)) {
                best = Some((score.0, score.1, p.into_assignment()));
            }
            if try_stop.is_stopped() {
                stopped = try_stop;
                break;
            }
        }
        ctx.seed = base_seed;
        let mut assignment = best.expect("at least one try").2;

        // Uncoarsen: project level by level and refine with k-way FM.
        // Once stopped, projection continues but refinement is skipped.
        let mut total_passes = 0usize;
        for i in (0..=levels.len()).rev() {
            let graph: &Hypergraph = if i == 0 { h } else { &levels[i - 1].graph };
            if i < levels.len() {
                let mut fine = vec![0u16; graph.num_vertices()];
                for (fine_v, coarse_v) in levels[i].map.iter().enumerate() {
                    fine[fine_v] = assignment[coarse_v.index()];
                }
                assignment = fine;
            }
            if stopped.is_stopped() {
                continue;
            }
            if ctx.sink.is_enabled() {
                ctx.sink.emit(RunEvent::LevelUp {
                    level: i,
                    vertices: graph.num_vertices(),
                    nets: graph.num_nets(),
                });
            }
            let mut partition = KWayPartition::new(graph, k, assignment);
            let (passes, refine_stop) = engine.refine_with(&mut partition, balance, &mut rng, ctx);
            total_passes += passes;
            stopped = refine_stop;
            assignment = partition.into_assignment();
        }

        let partition = KWayPartition::new(h, k, assignment);
        // Final whole-run checkpoint on the input graph (per-level engine
        // audits are skipped entirely when the budget expires early).
        if ctx.audit().is_on() {
            let window = balance
                .is_satisfied(&partition)
                .then(|| (balance.lower(), balance.upper()));
            record_kway_audit(&partition, window, &mut audit_failure, ctx.sink);
        }
        KWayOutcome {
            num_parts: k,
            cut: partition.cut(),
            lambda_minus_one: partition.lambda_minus_one(),
            part_weights: (0..k).map(|p| partition.part_weight(p)).collect(),
            passes: total_passes,
            stopped,
            audit_failure,
            assignment: partition.into_assignment(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recursive_bisection;
    use hypart_benchgen::toys::grid;
    use hypart_benchgen::{ispd98_like, mcnc_like};
    use hypart_ml::MlConfig;

    #[test]
    fn quarters_a_grid_near_optimally() {
        let h = grid(16, 16);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.15);
        let out = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 3);
        assert!(out.is_balanced(&balance));
        // Two straight cutlines cost 32; allow heuristic slack.
        assert!(out.cut <= 56, "cut {}", out.cut);
    }

    #[test]
    fn beats_flat_direct_kway_on_structured_instances() {
        let h = ispd98_like(1, 0.04, 9);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.20);
        let flat_avg: u64 = (0..3u64)
            .map(|s| {
                KWayFmPartitioner::new(KWayConfig::default())
                    .run(&h, &balance, s)
                    .cut
            })
            .sum::<u64>()
            / 3;
        let ml_avg: u64 = (0..3u64)
            .map(|s| {
                MlKWayPartitioner::new(MlKWayConfig::default())
                    .run(&h, &balance, s)
                    .cut
            })
            .sum::<u64>()
            / 3;
        assert!(
            ml_avg <= flat_avg,
            "multilevel k-way avg {ml_avg} should not exceed flat avg {flat_avg}"
        );
    }

    #[test]
    fn competitive_with_recursive_bisection() {
        let h = ispd98_like(2, 0.03, 5);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.20);
        let ml_kway = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 4);
        let recursive = recursive_bisection(&h, 4, 0.20, &MlConfig::default(), 4);
        // Neither should be wildly worse than the other.
        assert!(
            ml_kway.cut <= recursive.cut.max(1) * 3,
            "ml-kway {} vs recursive {}",
            ml_kway.cut,
            recursive.cut
        );
    }

    #[test]
    fn verifies_and_is_deterministic() {
        let h = mcnc_like(500, 7);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 3, 0.25);
        let a = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 11);
        let b = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 11);
        assert_eq!(a.assignment, b.assignment);
        let p = KWayPartition::new(&h, 3, a.assignment.clone());
        assert_eq!(p.recompute_cut(), a.cut);
        assert!(a.is_balanced(&balance));
    }

    #[test]
    fn odd_k_supported() {
        // Unlike recursive bisection, multilevel k-way handles any k.
        let h = mcnc_like(300, 2);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 5, 0.30);
        let out = MlKWayPartitioner::new(MlKWayConfig::default()).run(&h, &balance, 1);
        assert_eq!(out.num_parts, 5);
        assert!(out.is_balanced(&balance));
    }
}
