//! Per-part balance windows for k-way partitioning.

use crate::partition::KWayPartition;

/// Symmetric per-part weight window around the perfect `total / k` split:
/// every part must hold between `(1 − f)·total/k` and `(1 + f)·total/k`
/// (the hMETIS "UBfactor" convention generalizing the paper's 2-way
/// tolerance).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KWayBalance {
    lower: u64,
    upper: u64,
    k: usize,
}

impl KWayBalance {
    /// Builds the window for `k` parts and tolerance `fraction` (so that
    /// `fraction = 0.10` allows each part 90–110 % of its fair share).
    /// An empty window is widened minimally around the fair share.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `fraction` is not in `[0, 1]`.
    pub fn with_fraction(total: u64, k: usize, fraction: f64) -> Self {
        assert!(k >= 2, "k-way balance needs k >= 2, got {k}");
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "balance fraction must be in [0, 1], got {fraction}"
        );
        let share = total as f64 / k as f64;
        let mut lower = (share * (1.0 - fraction)).ceil() as u64;
        let mut upper = (share * (1.0 + fraction)).floor() as u64;
        if lower > upper {
            lower = share.floor() as u64;
            upper = share.ceil() as u64;
        }
        KWayBalance { lower, upper, k }
    }

    /// Number of parts the window was built for.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Lower bound on a part's weight.
    #[inline]
    pub fn lower(&self) -> u64 {
        self.lower
    }

    /// Upper bound on a part's weight.
    #[inline]
    pub fn upper(&self) -> u64 {
        self.upper
    }

    /// Width of the window (the k-way corking criterion: a cell heavier
    /// than this can never move between feasible solutions).
    #[inline]
    pub fn window(&self) -> u64 {
        self.upper - self.lower
    }

    /// `true` if a part of weight `w` is inside the window.
    #[inline]
    pub fn contains(&self, w: u64) -> bool {
        (self.lower..=self.upper).contains(&w)
    }

    /// Distance of `w` from the window (0 inside).
    #[inline]
    pub fn violation(&self, w: u64) -> u64 {
        if w < self.lower {
            self.lower - w
        } else {
            w.saturating_sub(self.upper)
        }
    }

    /// Sum of all parts' violations.
    pub fn total_violation(&self, partition: &KWayPartition<'_>) -> u64 {
        (0..self.k)
            .map(|p| self.violation(partition.part_weight(p)))
            .sum()
    }

    /// `true` if every part is inside the window.
    pub fn is_satisfied(&self, partition: &KWayPartition<'_>) -> bool {
        (0..self.k).all(|p| self.contains(partition.part_weight(p)))
    }

    /// Whether moving `v` to part `to` is legal: the result is feasible,
    /// or strictly reduces total violation when starting infeasible
    /// (mirroring the 2-way rule).
    pub fn is_legal_move(
        &self,
        partition: &KWayPartition<'_>,
        v: hypart_hypergraph::VertexId,
        to: usize,
    ) -> bool {
        let from = partition.part_of(v);
        if from == to {
            return false;
        }
        let w = partition.graph().vertex_weight(v);
        let w_from = partition.part_weight(from) - w;
        let w_to = partition.part_weight(to) + w;
        let delta_after = self.violation(w_from) + self.violation(w_to);
        if delta_after == 0 {
            return true;
        }
        let delta_before =
            self.violation(partition.part_weight(from)) + self.violation(partition.part_weight(to));
        delta_before > 0 && delta_after < delta_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_window() {
        let b = KWayBalance::with_fraction(1000, 4, 0.10);
        assert_eq!(b.lower(), 225);
        assert_eq!(b.upper(), 275);
        assert!(b.contains(250));
        assert!(!b.contains(224));
        assert_eq!(b.num_parts(), 4);
    }

    #[test]
    fn empty_window_is_widened() {
        let b = KWayBalance::with_fraction(10, 3, 0.0);
        assert!(b.lower() <= b.upper());
        assert!(b.contains(3) || b.contains(4));
    }

    #[test]
    fn violation_distances() {
        let b = KWayBalance::with_fraction(1000, 4, 0.10);
        assert_eq!(b.violation(250), 0);
        assert_eq!(b.violation(220), 5);
        assert_eq!(b.violation(280), 5);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_one_panics() {
        let _ = KWayBalance::with_fraction(10, 1, 0.1);
    }
}
