//! Incremental k-way partitioning state.

use hypart_hypergraph::{Hypergraph, NetId, VertexId};

/// A k-way partitioning with incrementally maintained per-part weights,
/// per-net pin distribution, per-net span λ, and both classical k-way
/// objectives:
///
/// * **hyperedge cut** — Σ over nets with λ ≥ 2 of w(e);
/// * **(λ−1) metric** — Σ over nets of (λ(e) − 1)·w(e) (the "sum of
///   external degrees minus one" objective hMetis optimizes for k-way).
///
/// All mutation goes through [`move_vertex`](KWayPartition::move_vertex)
/// (`O(deg(v))`).
#[derive(Clone, Debug)]
pub struct KWayPartition<'h> {
    graph: &'h Hypergraph,
    k: usize,
    part_of: Vec<u16>,
    part_weight: Vec<u64>,
    /// pins_in[e * k + p] = pins of net e in part p.
    pins_in: Vec<u32>,
    /// span[e] = λ(e): number of parts net e touches.
    span: Vec<u16>,
    cut_weight: u64,
    lambda_cost: u64,
}

impl<'h> KWayPartition<'h> {
    /// Creates a k-way partition over `graph` from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`, `assignment.len() != graph.num_vertices()`, any
    /// part index is ≥ `k`, or a fixed vertex is assigned off its fixed
    /// part (fixed parts are interpreted as part indices 0/1).
    pub fn new(graph: &'h Hypergraph, k: usize, assignment: Vec<u16>) -> Self {
        assert!(k >= 2, "k must be at least 2, got {k}");
        assert!(k <= u16::MAX as usize, "k too large");
        assert_eq!(
            assignment.len(),
            graph.num_vertices(),
            "assignment length mismatch"
        );
        for v in graph.vertices() {
            let p = assignment[v.index()] as usize;
            assert!(p < k, "vertex {v:?} assigned to part {p} but k = {k}");
            if let Some(fp) = graph.fixed_part(v) {
                assert_eq!(
                    p,
                    fp.index(),
                    "vertex {v:?} fixed in part {} but assigned to {p}",
                    fp.index()
                );
            }
        }
        let mut part_weight = vec![0u64; k];
        for v in graph.vertices() {
            part_weight[assignment[v.index()] as usize] += graph.vertex_weight(v);
        }
        let mut pins_in = vec![0u32; graph.num_nets() * k];
        let mut span = vec![0u16; graph.num_nets()];
        let mut cut_weight = 0u64;
        let mut lambda_cost = 0u64;
        for e in graph.nets() {
            let base = e.index() * k;
            for &v in graph.net_pins(e) {
                pins_in[base + assignment[v.index()] as usize] += 1;
            }
            let lambda = pins_in[base..base + k].iter().filter(|&&c| c > 0).count() as u16;
            span[e.index()] = lambda;
            let w = u64::from(graph.net_weight(e));
            if lambda >= 2 {
                cut_weight += w;
            }
            lambda_cost += u64::from(lambda.saturating_sub(1)) * w;
        }
        KWayPartition {
            graph,
            k,
            part_of: assignment,
            part_weight,
            pins_in,
            span,
            cut_weight,
            lambda_cost,
        }
    }

    /// The underlying hypergraph.
    #[inline]
    pub fn graph(&self) -> &'h Hypergraph {
        self.graph
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Current part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> usize {
        self.part_of[v.index()] as usize
    }

    /// Total weight currently in part `p`.
    #[inline]
    pub fn part_weight(&self, p: usize) -> u64 {
        self.part_weight[p]
    }

    /// Pins of net `e` currently in part `p`.
    #[inline]
    pub fn pins_in(&self, e: NetId, p: usize) -> u32 {
        self.pins_in[e.index() * self.k + p]
    }

    /// Span λ(e): number of parts net `e` touches.
    #[inline]
    pub fn span(&self, e: NetId) -> usize {
        self.span[e.index()] as usize
    }

    /// Weighted hyperedge cut (nets with λ ≥ 2).
    #[inline]
    pub fn cut(&self) -> u64 {
        self.cut_weight
    }

    /// Weighted (λ−1) cost.
    #[inline]
    pub fn lambda_minus_one(&self) -> u64 {
        self.lambda_cost
    }

    /// The assignment as a slice of part indices.
    #[inline]
    pub fn assignment(&self) -> &[u16] {
        &self.part_of
    }

    /// Consumes the partition, returning the assignment.
    pub fn into_assignment(self) -> Vec<u16> {
        self.part_of
    }

    /// Moves `v` to part `to`, updating all derived state in `O(deg(v))`,
    /// and returns the hyperedge-cut gain realized (positive = improved).
    ///
    /// # Panics
    ///
    /// Panics if `to >= k` or `to` equals the current part of `v`.
    pub fn move_vertex(&mut self, v: VertexId, to: usize) -> i64 {
        let from = self.part_of[v.index()] as usize;
        assert!(to < self.k, "target part {to} out of range");
        assert_ne!(from, to, "vertex already in part {to}");
        let cut_before = self.cut_weight as i64;
        for &e in self.graph.vertex_nets(v) {
            let base = e.index() * self.k;
            let w = u64::from(self.graph.net_weight(e));
            let lambda_before = self.span[e.index()];
            let from_count = self.pins_in[base + from];
            let to_count = self.pins_in[base + to];
            self.pins_in[base + from] = from_count - 1;
            self.pins_in[base + to] = to_count + 1;
            let mut lambda = lambda_before;
            if from_count == 1 {
                lambda -= 1;
            }
            if to_count == 0 {
                lambda += 1;
            }
            if lambda != lambda_before {
                self.span[e.index()] = lambda;
                let was_cut = lambda_before >= 2;
                let now_cut = lambda >= 2;
                match (was_cut, now_cut) {
                    (false, true) => self.cut_weight += w,
                    (true, false) => self.cut_weight -= w,
                    _ => {}
                }
                let before_cost = u64::from(lambda_before.saturating_sub(1)) * w;
                let after_cost = u64::from(lambda.saturating_sub(1)) * w;
                self.lambda_cost = self.lambda_cost + after_cost - before_cost;
            }
        }
        let w = self.graph.vertex_weight(v);
        self.part_weight[from] -= w;
        self.part_weight[to] += w;
        self.part_of[v.index()] = to as u16;
        cut_before - self.cut_weight as i64
    }

    /// Hyperedge-cut gain of moving `v` to part `to`, without mutating
    /// (`O(deg(v))`).
    pub fn gain(&self, v: VertexId, to: usize) -> i64 {
        let from = self.part_of[v.index()] as usize;
        debug_assert_ne!(from, to);
        let mut gain = 0i64;
        for &e in self.graph.vertex_nets(v) {
            let base = e.index() * self.k;
            let w = i64::from(self.graph.net_weight(e));
            let lambda = self.span[e.index()];
            let from_count = self.pins_in[base + from];
            let to_count = self.pins_in[base + to];
            let mut lambda_after = lambda;
            if from_count == 1 {
                lambda_after -= 1;
            }
            if to_count == 0 {
                lambda_after += 1;
            }
            gain += w * (i64::from(lambda >= 2) - i64::from(lambda_after >= 2));
        }
        gain
    }

    /// Recomputes the hyperedge cut from scratch (test oracle).
    pub fn recompute_cut(&self) -> u64 {
        let mut cut = 0u64;
        for e in self.graph.nets() {
            let mut parts_seen = 0;
            let base = e.index() * self.k;
            for p in 0..self.k {
                if self.pins_in[base + p] > 0 {
                    parts_seen += 1;
                }
            }
            // Cross-check against the assignment directly.
            let mut seen = vec![false; self.k];
            for &v in self.graph.net_pins(e) {
                seen[self.part_of[v.index()] as usize] = true;
            }
            debug_assert_eq!(seen.iter().filter(|&&s| s).count(), parts_seen);
            if parts_seen >= 2 {
                cut += u64::from(self.graph.net_weight(e));
            }
        }
        cut
    }

    /// Recomputes the (λ−1) cost from scratch (test oracle).
    pub fn recompute_lambda_minus_one(&self) -> u64 {
        let mut cost = 0u64;
        for e in self.graph.nets() {
            let mut seen = vec![false; self.k];
            for &v in self.graph.net_pins(e) {
                seen[self.part_of[v.index()] as usize] = true;
            }
            let lambda = seen.iter().filter(|&&s| s).count() as u64;
            cost += (lambda.saturating_sub(1)) * u64::from(self.graph.net_weight(e));
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 1).unwrap();
        b.add_net([v[2], v[3]], 2).unwrap();
        b.add_net([v[3], v[4], v[5]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_state_consistent() {
        let h = sample();
        let p = KWayPartition::new(&h, 3, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(p.part_weight(0), 2);
        assert_eq!(p.part_weight(1), 2);
        assert_eq!(p.part_weight(2), 2);
        // net0 spans {0,1}: cut. net1 spans {1}: uncut. net2 spans {1,2}: cut.
        assert_eq!(p.cut(), 2);
        assert_eq!(p.cut(), p.recompute_cut());
        assert_eq!(p.lambda_minus_one(), 2);
        assert_eq!(p.lambda_minus_one(), p.recompute_lambda_minus_one());
        assert_eq!(p.span(NetId::new(0)), 2);
        assert_eq!(p.span(NetId::new(1)), 1);
    }

    #[test]
    fn move_updates_incrementally() {
        let h = sample();
        let mut p = KWayPartition::new(&h, 3, vec![0, 0, 1, 1, 2, 2]);
        let predicted = p.gain(VertexId::new(2), 0);
        let realized = p.move_vertex(VertexId::new(2), 0);
        assert_eq!(predicted, realized);
        assert_eq!(p.cut(), p.recompute_cut());
        assert_eq!(p.lambda_minus_one(), p.recompute_lambda_minus_one());
        assert_eq!(p.part_of(VertexId::new(2)), 0);
        assert_eq!(p.part_weight(0), 3);
        assert_eq!(p.part_weight(1), 1);
    }

    #[test]
    fn gains_match_for_all_targets() {
        let h = sample();
        let p = KWayPartition::new(&h, 3, vec![0, 1, 2, 0, 1, 2]);
        for v in h.vertices() {
            for to in 0..3 {
                if to == p.part_of(v) {
                    continue;
                }
                let mut probe = p.clone();
                let realized = probe.move_vertex(v, to);
                assert_eq!(p.gain(v, to), realized, "{v:?} -> {to}");
            }
        }
    }

    #[test]
    fn lambda_cost_exceeds_or_equals_cut() {
        let h = sample();
        let p = KWayPartition::new(&h, 3, vec![0, 1, 2, 0, 1, 2]);
        assert!(p.lambda_minus_one() >= p.cut());
    }

    #[test]
    #[should_panic(expected = "already in part")]
    fn move_to_same_part_panics() {
        let h = sample();
        let mut p = KWayPartition::new(&h, 2, vec![0; 6]);
        p.move_vertex(VertexId::new(0), 0);
    }

    #[test]
    #[should_panic(expected = "k = 2")]
    fn out_of_range_part_panics() {
        let h = sample();
        let _ = KWayPartition::new(&h, 2, vec![0, 0, 0, 0, 0, 5]);
    }

    #[test]
    fn two_way_agrees_with_bisection() {
        use hypart_core::Bisection;
        use hypart_hypergraph::PartId;
        let h = sample();
        let parts = vec![0u16, 0, 1, 1, 0, 1];
        let kp = KWayPartition::new(&h, 2, parts.clone());
        let bis = Bisection::new(
            &h,
            parts
                .iter()
                .map(|&p| if p == 0 { PartId::P0 } else { PartId::P1 })
                .collect(),
        )
        .unwrap();
        assert_eq!(kp.cut(), bis.cut());
    }
}
