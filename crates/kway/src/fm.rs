//! Direct k-way FM refinement, in the style of Sanchis.
//!
//! Each free vertex in part `p` has `k − 1` pending moves `p → q`; every
//! ordered pair gets its own gain container (the natural generalization of
//! the 2-way "moves segregated by source partition"). Gains are the
//! hyperedge-cut deltas, maintained with the *generic* update the paper's
//! footnote 2 calls for — the FM-82 special-case update does not
//! generalize past 2-way netcut.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::balance::KWayBalance;
use crate::partition::KWayPartition;
use hypart_core::gain::GainContainer;
use hypart_core::{
    AuditError, AuditLevel, BudgetProbe, InsertionPolicy, PartitionAuditor, RunCtx, StopReason,
    CORKED_FRACTION, PARANOID_MOVE_AUDIT_MAX_VERTICES,
};
use hypart_hypergraph::{Hypergraph, VertexId};
use hypart_trace::{RunEvent, TraceSink};

/// Configuration of the direct k-way FM engine.
///
/// The knob set is intentionally smaller than the 2-way engine's: the
/// paper's implicit-decision study is a 2-way experiment, so the k-way
/// engine fixes the strong choices (LIFO by default, `Nonzero`-style
/// zero-delta skipping, head-only bucket inspection) and keeps only the
/// knobs with k-way-specific meaning.
///
/// Every field has a `with_*` builder:
///
/// | knob | Table 1 counterpart | strong default |
/// |------|---------------------|----------------|
/// | [`insertion`](Self::insertion) | LIFO / FIFO / random rows | `Lifo` |
/// | [`max_passes`](Self::max_passes) | pass-limit stop rule | `32` |
/// | [`exclude_overweight`](Self::exclude_overweight) | §2.3 anti-corking fix | `true` |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct KWayConfig {
    /// Bucket insertion policy.
    pub insertion: InsertionPolicy,
    /// Upper bound on refinement passes.
    pub max_passes: usize,
    /// Exclude cells wider than the balance window from the gain
    /// containers (anti-corking, exactly as in 2-way).
    pub exclude_overweight: bool,
}

impl Default for KWayConfig {
    fn default() -> Self {
        KWayConfig {
            insertion: InsertionPolicy::Lifo,
            max_passes: 32,
            exclude_overweight: true,
        }
    }
}

impl KWayConfig {
    /// Replaces the bucket insertion policy (builder-style).
    pub fn with_insertion(mut self, insertion: InsertionPolicy) -> Self {
        self.insertion = insertion;
        self
    }

    /// Sets the refinement pass ceiling (builder-style).
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes;
        self
    }

    /// Enables or disables overweight-cell exclusion (builder-style).
    pub fn with_exclude_overweight(mut self, exclude_overweight: bool) -> Self {
        self.exclude_overweight = exclude_overweight;
        self
    }
}

/// Result of a k-way partitioning run.
#[derive(Clone, Debug)]
pub struct KWayOutcome {
    /// Part index per vertex.
    pub assignment: Vec<u16>,
    /// Number of parts.
    pub num_parts: usize,
    /// Weighted hyperedge cut.
    pub cut: u64,
    /// Weighted (λ−1) cost.
    pub lambda_minus_one: u64,
    /// Per-part total weights.
    pub part_weights: Vec<u64>,
    /// Refinement passes executed.
    pub passes: usize,
    /// Why refinement ended ([`StopReason::Completed`] unless the
    /// context's budget ran out or its token was cancelled).
    pub stopped: StopReason,
    /// First invariant violation the [`PartitionAuditor`] found, if
    /// auditing was enabled on the context. Always `None` with auditing
    /// off.
    pub audit_failure: Option<AuditError>,
}

impl KWayOutcome {
    /// `true` if every part satisfies `balance`.
    pub fn is_balanced(&self, balance: &KWayBalance) -> bool {
        self.part_weights.iter().all(|&w| balance.contains(w))
    }
}

/// A direct k-way FM partitioner.
#[derive(Clone, Debug)]
pub struct KWayFmPartitioner {
    config: KWayConfig,
}

impl KWayFmPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: KWayConfig) -> Self {
        KWayFmPartitioner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &KWayConfig {
        &self.config
    }

    /// The canonical run entry point: a complete k-way partitioning of
    /// `h` from a seeded greedy initial solution, under the context's
    /// sink, workspace, seed, and budget.
    ///
    /// # Panics
    ///
    /// Panics if `balance.num_parts() < 2`.
    pub fn run_with(
        &self,
        h: &Hypergraph,
        balance: &KWayBalance,
        ctx: &mut RunCtx<'_>,
    ) -> KWayOutcome {
        let k = balance.num_parts();
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let assignment = initial_kway(h, k, &mut rng);
        let mut partition = KWayPartition::new(h, k, assignment);
        let (passes, stopped, audit_failure) =
            self.refine_audited(&mut partition, balance, &mut rng, ctx);
        KWayOutcome {
            num_parts: k,
            cut: partition.cut(),
            lambda_minus_one: partition.lambda_minus_one(),
            part_weights: (0..k).map(|p| partition.part_weight(p)).collect(),
            passes,
            stopped,
            audit_failure,
            assignment: partition.into_assignment(),
        }
    }

    /// Runs a complete k-way partitioning of `h` from a seeded greedy
    /// initial solution.
    ///
    /// Equivalent to [`run_with`](KWayFmPartitioner::run_with) with a
    /// default [`RunCtx`] (no sink, no deadline).
    ///
    /// # Panics
    ///
    /// Panics if `balance.num_parts() < 2`.
    pub fn run(&self, h: &Hypergraph, balance: &KWayBalance, seed: u64) -> KWayOutcome {
        self.run_with(h, balance, &mut RunCtx::new(seed))
    }

    /// [`run`](KWayFmPartitioner::run) with event emission: the same
    /// `RunBegin` → passes → `RunEnd` bracket the 2-way engine produces,
    /// so k-way traces are consumed by the exact same tooling.
    pub fn run_traced<S: TraceSink + ?Sized>(
        &self,
        h: &Hypergraph,
        balance: &KWayBalance,
        seed: u64,
        sink: &S,
    ) -> KWayOutcome {
        self.run_with(h, balance, &mut RunCtx::new(seed).with_sink(&sink))
    }

    /// Refines `partition` in place until a pass stops improving the
    /// lexicographic (violation, cut) score; returns the pass count.
    pub fn refine<R: Rng>(
        &self,
        partition: &mut KWayPartition<'_>,
        balance: &KWayBalance,
        rng: &mut R,
    ) -> usize {
        self.refine_with(partition, balance, rng, &mut RunCtx::new(0))
            .0
    }

    /// [`refine`](KWayFmPartitioner::refine) with event emission.
    pub fn refine_traced<R: Rng, S: TraceSink + ?Sized>(
        &self,
        partition: &mut KWayPartition<'_>,
        balance: &KWayBalance,
        rng: &mut R,
        sink: &S,
    ) -> usize {
        self.refine_with(
            partition,
            balance,
            rng,
            &mut RunCtx::new(0).with_sink(&sink),
        )
        .0
    }

    /// The canonical refinement entry point: passes on `partition` until
    /// a pass stops improving the lexicographic (violation, cut) score,
    /// `max_passes` is reached, or the context's budget runs out. The
    /// k·(k−1) container grid (stored as a k² pool for direct
    /// `from·k + to` indexing) is re-targeted in place from
    /// `ctx.workspace` instead of allocated per refinement — the k-way
    /// analogue of the 2-way engine's workspace reuse, and a much larger
    /// saving since the grid is k² containers wide.
    ///
    /// Returns the pass count and the [`StopReason`]. As in the 2-way
    /// engine, a mid-pass stop still rolls back to the pass's best
    /// prefix, so the partition is always legal and coherent.
    pub fn refine_with<R: Rng>(
        &self,
        partition: &mut KWayPartition<'_>,
        balance: &KWayBalance,
        rng: &mut R,
        ctx: &mut RunCtx<'_>,
    ) -> (usize, StopReason) {
        let (passes, stopped, _) = self.refine_audited(partition, balance, rng, ctx);
        (passes, stopped)
    }

    /// [`refine_with`](KWayFmPartitioner::refine_with), additionally
    /// returning the first invariant violation the auditor found (always
    /// `None` with auditing off).
    fn refine_audited<R: Rng>(
        &self,
        partition: &mut KWayPartition<'_>,
        balance: &KWayBalance,
        rng: &mut R,
        ctx: &mut RunCtx<'_>,
    ) -> (usize, StopReason, Option<AuditError>) {
        let mut probe = ctx.probe();
        let audit = ctx.audit();
        let sink: &dyn TraceSink = ctx.sink;
        let workspace = &mut ctx.workspace;
        let k = partition.num_parts();
        let graph = partition.graph();
        let bound = graph.max_gain_bound().max(1);
        let containers = workspace.containers(k * k, graph.num_vertices(), bound);

        if sink.is_enabled() {
            sink.emit(RunEvent::RunBegin {
                cut: partition.cut(),
            });
        }
        let mut audit_failure: Option<AuditError> = None;
        let mut passes = 0;
        for pass in 0..self.config.max_passes {
            if probe.stop_now().is_some() {
                break;
            }
            let before = (balance.total_violation(partition), partition.cut());
            self.run_pass(
                partition,
                balance,
                containers,
                rng,
                sink,
                pass,
                &mut probe,
                audit,
                &mut audit_failure,
            );
            passes += 1;
            if audit.is_on() {
                record_kway_audit(partition, None, &mut audit_failure, sink);
            }
            let after = (balance.total_violation(partition), partition.cut());
            if probe.reason().is_stopped() || after >= before {
                break;
            }
        }
        // Final checkpoint: when the engine is about to claim a balanced
        // solution, re-verify the window too.
        if audit.is_on() {
            let window = balance
                .is_satisfied(partition)
                .then(|| (balance.lower(), balance.upper()));
            record_kway_audit(partition, window, &mut audit_failure, sink);
        }
        let stopped = probe.reason();
        if stopped.is_stopped() {
            sink.emit(RunEvent::BudgetExhausted { reason: stopped });
        }
        if sink.is_enabled() {
            sink.emit(RunEvent::RunEnd {
                cut: partition.cut(),
                passes,
            });
        }
        (passes, stopped, audit_failure)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_pass<R: Rng, S: TraceSink + ?Sized>(
        &self,
        partition: &mut KWayPartition<'_>,
        balance: &KWayBalance,
        containers: &mut [GainContainer],
        rng: &mut R,
        sink: &S,
        pass: usize,
        probe: &mut BudgetProbe,
        audit: AuditLevel,
        audit_failure: &mut Option<AuditError>,
    ) {
        let k = partition.num_parts();
        let graph = partition.graph();
        let window = balance.window();
        let traced = sink.is_enabled();

        for c in containers.iter_mut() {
            c.clear();
        }
        let mut eligible = 0usize;
        let mut excluded_overweight = 0usize;
        for v in graph.vertices() {
            if graph.is_fixed(v) {
                continue;
            }
            if self.config.exclude_overweight && graph.vertex_weight(v) > window {
                excluded_overweight += 1;
                continue;
            }
            eligible += 1;
            let from = partition.part_of(v);
            for to in 0..k {
                if to != from {
                    containers[from * k + to].insert(
                        v,
                        partition.gain(v, to),
                        self.config.insertion,
                        rng,
                    );
                }
            }
        }
        if traced {
            sink.emit(RunEvent::PassBegin {
                pass,
                cut: partition.cut(),
                eligible,
            });
            if excluded_overweight > 0 {
                sink.emit(RunEvent::OverweightExcluded {
                    pass,
                    count: excluded_overweight,
                });
            }
        }

        let mut moves: Vec<(VertexId, usize, usize)> = Vec::new();
        let mut best_score = (balance.total_violation(partition), partition.cut());
        let mut best_prefix = 0usize;

        while let Some((v, to)) = self.select(partition, balance, containers) {
            let from = partition.part_of(v);
            // Lock v: remove its k-1 pending moves.
            for t in 0..k {
                if t != from && containers[from * k + t].contains(v) {
                    containers[from * k + t].remove(v);
                }
            }
            let cut_prev = partition.cut();
            self.apply_and_update(partition, v, to, containers, rng);
            moves.push((v, from, to));
            if traced {
                sink.emit(RunEvent::Move {
                    vertex: v.index() as u64,
                    gain: cut_prev as i64 - partition.cut() as i64,
                    cut: partition.cut(),
                });
            }
            if audit.is_paranoid()
                && partition.graph().num_vertices() <= PARANOID_MOVE_AUDIT_MAX_VERTICES
            {
                record_kway_audit(partition, None, audit_failure, sink);
            }
            let score = (balance.total_violation(partition), partition.cut());
            if score < best_score {
                best_score = score;
                best_prefix = moves.len();
            }

            // Mid-pass budget check; truncating is safe because the
            // best-prefix rollback below restores a coherent solution.
            if probe.stop_every().is_some() {
                break;
            }
        }

        let ended_with_leftovers = containers.iter().any(|c| !c.is_empty());
        let moves_made = moves.len();
        for &(v, from, _) in moves[best_prefix..].iter().rev() {
            partition.move_vertex(v, from);
            if traced {
                sink.emit(RunEvent::Rollback {
                    vertex: v.index() as u64,
                    cut: partition.cut(),
                });
            }
        }
        debug_assert_eq!(partition.cut(), best_score.1);
        if traced {
            let corked = ended_with_leftovers
                && eligible > 0
                && moves_made * CORKED_FRACTION.1 < eligible * CORKED_FRACTION.0;
            if corked {
                sink.emit(RunEvent::Corked {
                    pass,
                    moves_made,
                    eligible,
                });
            }
            sink.emit(RunEvent::PassEnd {
                pass,
                cut: partition.cut(),
                moves_made,
                moves_rolled_back: moves_made - best_prefix,
                leftovers: ended_with_leftovers,
                corked,
            });
        }
    }

    /// Picks the highest-gain legal head move across all (from, to)
    /// containers; gain ties go to the lowest container index
    /// (deterministic).
    fn select(
        &self,
        partition: &KWayPartition<'_>,
        balance: &KWayBalance,
        containers: &mut [GainContainer],
    ) -> Option<(VertexId, usize)> {
        let k = partition.num_parts();
        let mut best: Option<(i64, usize, VertexId)> = None;
        for from in 0..k {
            for to in 0..k {
                if from == to {
                    continue;
                }
                let idx = from * k + to;
                let container = &mut containers[idx];
                let Some(mut key) = container.descend_max() else {
                    continue;
                };
                let min = container.min_key_bound();
                // Head-only inspection with skip-bucket on illegal heads,
                // bounded by the current best (no point scanning below it).
                loop {
                    if let Some(floor) = best.map(|(g, _, _)| g) {
                        if key <= floor {
                            break;
                        }
                    }
                    if let Some(head) = container.head_of(key) {
                        if partition.part_of(head) == from
                            && balance.is_legal_move(partition, head, to)
                        {
                            best = Some((key, idx, head));
                            break;
                        }
                    }
                    if key == min {
                        break;
                    }
                    key -= 1;
                }
            }
        }
        best.map(|(_, idx, v)| (v, idx % k))
    }

    /// Applies the move and updates all affected pending-move gains with
    /// the generic cut-delta computation.
    fn apply_and_update<R: Rng>(
        &self,
        partition: &mut KWayPartition<'_>,
        v: VertexId,
        to: usize,
        containers: &mut [GainContainer],
        rng: &mut R,
    ) {
        let k = partition.num_parts();
        let from = partition.part_of(v);
        let graph = partition.graph();
        partition.move_vertex(v, to);

        for &e in graph.vertex_nets(v) {
            let w = i64::from(graph.net_weight(e));
            let lambda_after = partition.span(e) as i64;
            let from_after = partition.pins_in(e, from);
            let to_after = partition.pins_in(e, to);
            // Reconstruct the pre-move state of the two changed parts.
            let from_before = from_after + 1;
            let to_before = to_after - 1;
            let lambda_before =
                lambda_after + i64::from(from_after == 0) - i64::from(to_before == 0);

            for &y in graph.net_pins(e) {
                if y == v {
                    continue;
                }
                let s = partition.part_of(y);
                // Skip vertices locked or excluded this pass: their
                // pending moves are in no container.
                let probe = containers[s * k + ((s + 1) % k)].contains(y);
                if !probe {
                    continue;
                }
                let count =
                    |part: usize, changed_from: u32, changed_to: u32, default: u32| -> u32 {
                        if part == from {
                            changed_from
                        } else if part == to {
                            changed_to
                        } else {
                            default
                        }
                    };
                for t in 0..k {
                    if t == s {
                        continue;
                    }
                    let s_b = count(s, from_before, to_before, partition.pins_in(e, s));
                    let t_b = count(t, from_before, to_before, partition.pins_in(e, t));
                    let s_a = count(s, from_after, to_after, partition.pins_in(e, s));
                    let t_a = count(t, from_after, to_after, partition.pins_in(e, t));
                    let contrib = |lambda: i64, s_count: u32, t_count: u32| -> i64 {
                        let lambda_after_y =
                            lambda - i64::from(s_count == 1) + i64::from(t_count == 0);
                        w * (i64::from(lambda >= 2) - i64::from(lambda_after_y >= 2))
                    };
                    let delta = contrib(lambda_after, s_a, t_a) - contrib(lambda_before, s_b, t_b);
                    if delta != 0 {
                        let container = &mut containers[s * k + t];
                        let key = container.key_of(y);
                        container.update(y, key + delta, self.config.insertion, rng);
                    }
                }
            }
        }
    }
}

/// Audits `partition` from scratch with the [`PartitionAuditor`],
/// emitting an `InvariantViolation` event and recording the first error.
/// Shared by the direct k-way engine and the recursive-bisection wrapper.
pub(crate) fn record_kway_audit<S: TraceSink + ?Sized>(
    partition: &KWayPartition<'_>,
    window: Option<(u64, u64)>,
    failure: &mut Option<AuditError>,
    sink: &S,
) {
    let k = partition.num_parts();
    let weights: Vec<u64> = (0..k).map(|p| partition.part_weight(p)).collect();
    let result = PartitionAuditor::audit_parts(
        partition.graph(),
        k,
        |v| partition.part_of(v),
        partition.cut(),
        &weights,
        window,
    );
    if let Err(e) = result {
        sink.emit(RunEvent::InvariantViolation {
            check: e.check().to_string(),
            detail: e.to_string(),
        });
        if failure.is_none() {
            *failure = Some(e);
        }
    }
}

/// Greedy balanced k-way initial solution: shuffle free vertices, assign
/// each to the lightest part; fixed vertices go to their fixed part
/// (interpreted as part index 0/1).
fn initial_kway<R: Rng>(h: &Hypergraph, k: usize, rng: &mut R) -> Vec<u16> {
    let mut assignment = vec![0u16; h.num_vertices()];
    let mut weight = vec![0u64; k];
    let mut free = Vec::with_capacity(h.num_vertices());
    for v in h.vertices() {
        match h.fixed_part(v) {
            Some(p) => {
                assignment[v.index()] = p.index() as u16;
                weight[p.index()] += h.vertex_weight(v);
            }
            None => free.push(v),
        }
    }
    free.shuffle(rng);
    for v in free {
        let lightest = (0..k).min_by_key(|&p| weight[p]).expect("k >= 2");
        assignment[v.index()] = lightest as u16;
        weight[lightest] += h.vertex_weight(v);
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_benchgen::toys::{grid, two_clusters};
    use hypart_benchgen::{mcnc_like, random_hypergraph};

    #[test]
    fn four_clusters_found_exactly() {
        // Four cliques of 4, ring-bridged: optimal 4-way cut = 4.
        let mut b = hypart_hypergraph::HypergraphBuilder::new();
        let mut groups = Vec::new();
        for _ in 0..4 {
            let g: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
            for i in 0..4 {
                for j in (i + 1)..4 {
                    b.add_net([g[i], g[j]], 1).unwrap();
                }
            }
            groups.push(g);
        }
        for i in 0..4 {
            b.add_net([groups[i][0], groups[(i + 1) % 4][0]], 1)
                .unwrap();
        }
        let h = b.build().unwrap();
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.25);
        let best = (0..10u64)
            .map(|s| KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, s))
            .filter(|o| o.is_balanced(&balance))
            .map(|o| o.cut)
            .min()
            .expect("runs");
        assert_eq!(best, 4);
    }

    #[test]
    fn outcomes_verify_against_scratch() {
        let h = mcnc_like(300, 3);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.20);
        let out = KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, 7);
        let p = KWayPartition::new(&h, 4, out.assignment.clone());
        assert_eq!(p.cut(), out.cut);
        assert_eq!(p.recompute_cut(), out.cut);
        assert_eq!(p.recompute_lambda_minus_one(), out.lambda_minus_one);
        assert!(out.is_balanced(&balance));
    }

    #[test]
    fn refinement_never_worsens() {
        let h = random_hypergraph(80, 120, 5, 4, 11);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 3, 0.30);
        let mut rng = SmallRng::seed_from_u64(1);
        let assignment = initial_kway(&h, 3, &mut rng);
        let mut p = KWayPartition::new(&h, 3, assignment);
        let before = (balance.total_violation(&p), p.cut());
        KWayFmPartitioner::new(KWayConfig::default()).refine(&mut p, &balance, &mut rng);
        let after = (balance.total_violation(&p), p.cut());
        assert!(after <= before);
        assert_eq!(p.cut(), p.recompute_cut());
    }

    #[test]
    fn k2_matches_two_way_quality_band() {
        let h = two_clusters(8, 3);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 2, 0.15);
        let best = (0..10u64)
            .map(|s| {
                KWayFmPartitioner::new(KWayConfig::default())
                    .run(&h, &balance, s)
                    .cut
            })
            .min()
            .expect("runs");
        assert_eq!(best, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let h = grid(10, 10);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.20);
        let engine = KWayFmPartitioner::new(KWayConfig::default());
        let a = engine.run(&h, &balance, 5);
        let b = engine.run(&h, &balance, 5);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn fixed_vertices_stay_put() {
        use hypart_hypergraph::PartId;
        let h = mcnc_like(100, 9).with_fixed(hypart_hypergraph::VertexId::new(0), Some(PartId::P1));
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.30);
        let out = KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, 1);
        assert_eq!(out.assignment[0], 1);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let h = mcnc_like(200, 4);
        let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 5, 0.25);
        let out = KWayFmPartitioner::new(KWayConfig::default()).run(&h, &balance, 3);
        assert_eq!(
            out.part_weights.iter().sum::<u64>(),
            h.total_vertex_weight()
        );
        assert_eq!(out.part_weights.len(), 5);
    }
}
