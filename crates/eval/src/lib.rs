//! Experiment and reporting harness for metaheuristic comparison.
//!
//! Implements the reporting methodology the paper advocates (§3.2):
//!
//! * seeded multi-trial [`runner`] over any [`runner::Heuristic`] (flat FM, CLIP,
//!   multilevel, multi-start+V-cycle drivers);
//! * summary [`stats`] (min/avg/std/median/quantiles) and the Wilcoxon
//!   rank-sum significance test (the Brglez point about distinguishing
//!   improvement from chance);
//! * [`bsf`] — best-so-far curves: expected best cut versus CPU budget τ,
//!   computed exactly from order statistics of the empirical trial
//!   distribution;
//! * [`pareto`] — the non-dominated frontier of (cost, runtime) points
//!   ("no one would ever choose to run configuration A over B");
//! * [`ranking`] — Schreiber–Martin-style speed-dependent ranking
//!   diagrams over (instance, CPU budget) grids;
//! * [`table`] — aligned ASCII / CSV table emission for every regenerated
//!   table of the paper.
//!
//! # Example
//!
//! ```
//! use hypart_core::{BalanceConstraint, FmConfig};
//! use hypart_eval::runner::{run_trials, FlatFmHeuristic};
//! use hypart_benchgen::toys::two_clusters;
//!
//! let h = two_clusters(8, 2);
//! let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
//! let heuristic = FlatFmHeuristic::new("LIFO FM", FmConfig::lifo());
//! let trials = run_trials(&heuristic, &h, &c, 10, 0);
//! assert_eq!(trials.len(), 10);
//! assert_eq!(trials.min_cut(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsf;
pub mod json;
pub mod pareto;
pub mod ranking;
pub mod report;
pub mod runner;
pub mod stats;
pub mod table;
