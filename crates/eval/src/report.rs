//! Markdown experiment reports.
//!
//! The paper closes §3 by noting that a richer presentation medium than a
//! conference page ("e.g., a webpage") should carry the standard
//! deviations and distribution descriptors that tables omit. This module
//! assembles exactly that artifact: a markdown report combining tables,
//! preformatted plots, and distribution summaries.

use std::fmt::Write as _;

use crate::stats::Summary;
use crate::table::Table;

/// Incremental markdown report builder.
///
/// ```
/// use hypart_eval::report::Report;
/// use hypart_eval::table::Table;
///
/// let mut report = Report::new("Nightly partitioning run");
/// report.section("Setup");
/// report.paragraph("50 seeded trials per configuration.");
/// let mut t = Table::new(["algo", "cut"]);
/// t.add_row(["LIFO", "333/639"]);
/// report.table(&t);
/// let markdown = report.render();
/// assert!(markdown.starts_with("# Nightly partitioning run"));
/// assert!(markdown.contains("| algo | cut |"));
/// ```
#[derive(Clone, Debug)]
pub struct Report {
    title: String,
    blocks: Vec<Block>,
}

#[derive(Clone, Debug)]
enum Block {
    Section(String),
    Subsection(String),
    Paragraph(String),
    MarkdownTable {
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
    },
    Preformatted(String),
}

impl Report {
    /// Creates a report with a top-level title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            blocks: Vec::new(),
        }
    }

    /// Adds a `##` section heading.
    pub fn section(&mut self, heading: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Section(heading.into()));
        self
    }

    /// Adds a `###` subsection heading.
    pub fn subsection(&mut self, heading: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Subsection(heading.into()));
        self
    }

    /// Adds a prose paragraph.
    pub fn paragraph(&mut self, text: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Paragraph(text.into()));
        self
    }

    /// Adds a [`Table`] as a markdown pipe table (its title, if any,
    /// becomes an italic caption line).
    pub fn table(&mut self, table: &Table) -> &mut Self {
        let csv = table.to_csv();
        let mut lines = csv.lines();
        let headers: Vec<String> = split_csv_line(lines.next().unwrap_or(""));
        let rows: Vec<Vec<String>> = lines.map(split_csv_line).collect();
        self.blocks.push(Block::MarkdownTable { headers, rows });
        self
    }

    /// Adds preformatted text (ASCII plots, frontier reports, diagrams).
    pub fn preformatted(&mut self, text: impl Into<String>) -> &mut Self {
        self.blocks.push(Block::Preformatted(text.into()));
        self
    }

    /// Adds a distribution summary line for a labeled sample — the
    /// "standard deviations and other descriptors" the paper wants
    /// reported.
    pub fn distribution(&mut self, label: &str, sample: &[f64]) -> &mut Self {
        match Summary::of(sample) {
            Some(s) => self.paragraph(format!(
                "**{label}** (n={}): min {:.1}, median {:.1}, mean {:.1} ± {:.1}, max {:.1}",
                s.n, s.min, s.median, s.mean, s.std_dev, s.max
            )),
            None => self.paragraph(format!("**{label}**: no samples")),
        }
    }

    /// Renders the whole report as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}\n", self.title);
        for block in &self.blocks {
            match block {
                Block::Section(h) => {
                    let _ = writeln!(out, "## {h}\n");
                }
                Block::Subsection(h) => {
                    let _ = writeln!(out, "### {h}\n");
                }
                Block::Paragraph(p) => {
                    let _ = writeln!(out, "{p}\n");
                }
                Block::Preformatted(text) => {
                    let _ = writeln!(out, "```text\n{}\n```\n", text.trim_end());
                }
                Block::MarkdownTable { headers, rows } => {
                    let _ = writeln!(out, "| {} |", headers.join(" | "));
                    let _ = writeln!(
                        out,
                        "|{}|",
                        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
                    );
                    for row in rows {
                        let _ = writeln!(out, "| {} |", row.join(" | "));
                    }
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

/// Splits one RFC-4180 CSV line (as produced by [`Table::to_csv`]).
fn split_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                chars.next();
                cell.push('"');
            }
            '"' => quoted = !quoted,
            ',' if !quoted => {
                out.push(std::mem::take(&mut cell));
            }
            c => cell.push(c),
        }
    }
    out.push(cell);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_all_block_kinds() {
        let mut report = Report::new("T");
        report
            .section("S")
            .subsection("SS")
            .paragraph("hello")
            .preformatted("plot\nhere");
        let mut t = Table::new(["a", "b"]);
        t.add_row(["1", "2"]);
        report.table(&t);
        let md = report.render();
        assert!(md.contains("# T"));
        assert!(md.contains("## S"));
        assert!(md.contains("### SS"));
        assert!(md.contains("hello"));
        assert!(md.contains("```text\nplot\nhere\n```"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn distribution_line() {
        let mut report = Report::new("T");
        report.distribution("cuts", &[1.0, 2.0, 3.0]);
        let md = report.render();
        assert!(md.contains("**cuts** (n=3)"));
        assert!(md.contains("median 2.0"));
        report.distribution("empty", &[]);
        assert!(report.render().contains("no samples"));
    }

    #[test]
    fn csv_cells_with_commas_survive() {
        let mut t = Table::new(["x"]);
        t.add_row(["a,b"]);
        let mut report = Report::new("T");
        report.table(&t);
        assert!(report.render().contains("| a,b |"));
    }

    #[test]
    fn split_csv_handles_quotes() {
        assert_eq!(split_csv_line("a,\"b,c\",d"), vec!["a", "b,c", "d"]);
        assert_eq!(
            split_csv_line("\"he said \"\"hi\"\"\""),
            vec!["he said \"hi\""]
        );
    }
}
