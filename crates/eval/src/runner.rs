//! Seeded multi-trial execution of partitioning heuristics.
//!
//! Both trial runners isolate panics at the trial boundary: a trial that
//! panics is counted in [`TrialSet::failed_trials`], announced with a
//! [`RunEvent::StartAborted`], and skipped — the surviving trials are
//! unaffected, so one crashing configuration cannot take down a whole
//! experiment sweep.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use hypart_core::{BalanceConstraint, FmConfig, FmPartitioner, RunCtx, StopReason};
use hypart_hypergraph::Hypergraph;
use hypart_ml::{multi_start_with, MlConfig, MlPartitioner};
use hypart_trace::{MemorySink, NullSink, RunEvent, TraceSink};

/// One trial's outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trial {
    /// Seed of the trial.
    pub seed: u64,
    /// Weighted cut achieved.
    pub cut: u64,
    /// `true` if the solution satisfied the balance constraint.
    pub balanced: bool,
    /// Why the trial ended: ran to convergence, or was cut short by the
    /// context's deadline / cancellation token.
    pub stopped: StopReason,
    /// Wall-clock duration of the trial.
    pub elapsed: Duration,
}

/// An algorithm under experimental evaluation.
///
/// Implementations must be deterministic functions of `seed` so that
/// experiments are reproducible — one of the paper's core demands.
pub trait Heuristic {
    /// Display name used in tables and diagrams.
    fn name(&self) -> &str;

    /// Solves one instance from one seed.
    fn solve(&self, h: &Hypergraph, constraint: &BalanceConstraint, seed: u64) -> Trial;

    /// Solves one instance from one seed, narrating into `sink`.
    ///
    /// The default implementation ignores the sink and calls
    /// [`solve`](Heuristic::solve), so existing heuristics keep working;
    /// the built-in heuristics override it to thread the sink through to
    /// their engines. (`&dyn TraceSink` rather than a generic keeps the
    /// trait object-safe for `&dyn Heuristic` harness code.)
    fn solve_traced(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> Trial {
        let _ = sink;
        self.solve(h, constraint, seed)
    }

    /// The canonical entry point: solves one instance under the context's
    /// sink, workspace, seed, and budget.
    ///
    /// The default implementation forwards the seed and sink to
    /// [`solve_traced`](Heuristic::solve_traced) — so pre-existing
    /// heuristics keep working but ignore the budget. The built-in
    /// heuristics override it to thread the full context through to their
    /// engines, which then stop cooperatively at the context's deadline
    /// or cancellation and record the fact in [`Trial::stopped`].
    fn solve_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> Trial {
        self.solve_traced(h, constraint, ctx.seed, ctx.sink)
    }
}

/// Flat FM / CLIP heuristic (single start of [`FmPartitioner`]).
#[derive(Clone, Debug)]
pub struct FlatFmHeuristic {
    name: String,
    partitioner: FmPartitioner,
}

impl FlatFmHeuristic {
    /// Wraps a flat engine configuration under a display name.
    pub fn new(name: impl Into<String>, config: FmConfig) -> Self {
        FlatFmHeuristic {
            name: name.into(),
            partitioner: FmPartitioner::new(config),
        }
    }
}

impl Heuristic for FlatFmHeuristic {
    fn name(&self) -> &str {
        &self.name
    }

    fn solve(&self, h: &Hypergraph, constraint: &BalanceConstraint, seed: u64) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed))
    }

    fn solve_traced(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed).with_sink(sink))
    }

    fn solve_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> Trial {
        let t = Instant::now();
        let out = self.partitioner.run_with(h, constraint, ctx);
        Trial {
            seed: ctx.seed,
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            elapsed: t.elapsed(),
        }
    }
}

/// Multilevel heuristic (single start of [`MlPartitioner`]).
#[derive(Clone, Debug)]
pub struct MlHeuristic {
    name: String,
    partitioner: MlPartitioner,
}

impl MlHeuristic {
    /// Wraps a multilevel configuration under a display name.
    pub fn new(name: impl Into<String>, config: MlConfig) -> Self {
        MlHeuristic {
            name: name.into(),
            partitioner: MlPartitioner::new(config),
        }
    }
}

impl Heuristic for MlHeuristic {
    fn name(&self) -> &str {
        &self.name
    }

    fn solve(&self, h: &Hypergraph, constraint: &BalanceConstraint, seed: u64) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed))
    }

    fn solve_traced(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed).with_sink(sink))
    }

    fn solve_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> Trial {
        let t = Instant::now();
        let out = self.partitioner.run_with(h, constraint, ctx);
        Trial {
            seed: ctx.seed,
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            elapsed: t.elapsed(),
        }
    }
}

/// hMetis-1.5-style multi-start driver: `nruns` starts then V-cycling of
/// the best (the Tables 4–5 evaluation subject; one "trial" is a full
/// multi-start configuration run).
#[derive(Clone, Debug)]
pub struct MultiStartHeuristic {
    name: String,
    partitioner: MlPartitioner,
    nruns: usize,
    max_vcycles: usize,
}

impl MultiStartHeuristic {
    /// Wraps a multilevel configuration in an `nruns`-start driver.
    pub fn new(
        name: impl Into<String>,
        config: MlConfig,
        nruns: usize,
        max_vcycles: usize,
    ) -> Self {
        MultiStartHeuristic {
            name: name.into(),
            partitioner: MlPartitioner::new(config),
            nruns,
            max_vcycles,
        }
    }

    /// Number of independent starts per trial.
    pub fn nruns(&self) -> usize {
        self.nruns
    }
}

impl Heuristic for MultiStartHeuristic {
    fn name(&self) -> &str {
        &self.name
    }

    fn solve(&self, h: &Hypergraph, constraint: &BalanceConstraint, seed: u64) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed))
    }

    fn solve_traced(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        seed: u64,
        sink: &dyn TraceSink,
    ) -> Trial {
        self.solve_with(h, constraint, &mut RunCtx::new(seed).with_sink(sink))
    }

    fn solve_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> Trial {
        let t = Instant::now();
        let out = multi_start_with(
            &self.partitioner,
            h,
            constraint,
            self.nruns,
            self.max_vcycles,
            ctx,
        );
        Trial {
            seed: ctx.seed,
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            elapsed: t.elapsed(),
        }
    }
}

/// A set of independent trials of one heuristic on one instance.
#[derive(Clone, Debug)]
pub struct TrialSet {
    /// Heuristic display name.
    pub heuristic: String,
    /// Instance name.
    pub instance: String,
    /// Per-trial records, in seed order. Panicked trials leave no record
    /// here; they are only counted in
    /// [`failed_trials`](Self::failed_trials).
    pub trials: Vec<Trial>,
    /// Number of trials that panicked and were isolated.
    pub failed_trials: usize,
}

impl TrialSet {
    /// Number of trials.
    pub fn len(&self) -> usize {
        self.trials.len()
    }

    /// `true` if no trials were recorded.
    pub fn is_empty(&self) -> bool {
        self.trials.is_empty()
    }

    /// Minimum cut across trials.
    ///
    /// # Panics
    ///
    /// Panics if the set is empty.
    pub fn min_cut(&self) -> u64 {
        self.trials.iter().map(|t| t.cut).min().expect("non-empty")
    }

    /// Average cut across trials.
    pub fn avg_cut(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().map(|t| t.cut as f64).sum::<f64>() / self.trials.len() as f64
    }

    /// Average trial duration in seconds.
    pub fn avg_seconds(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials
            .iter()
            .map(|t| t.elapsed.as_secs_f64())
            .sum::<f64>()
            / self.trials.len() as f64
    }

    /// Cut values as `f64`, for statistics.
    pub fn cuts(&self) -> Vec<f64> {
        self.trials.iter().map(|t| t.cut as f64).collect()
    }

    /// Fraction of trials whose final solution was balanced.
    pub fn balanced_fraction(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| t.balanced).count() as f64 / self.trials.len() as f64
    }

    /// The traditional "min/avg" cell the partitioning literature reports,
    /// e.g. `"333/639"`.
    pub fn min_avg_cell(&self) -> String {
        format!("{}/{}", self.min_cut(), self.avg_cut().round() as u64)
    }
}

/// Runs `num_trials` independent single-start trials of `heuristic` with
/// seeds `base_seed..base_seed + num_trials`.
///
/// Equivalent to [`run_trials_with`] with a default [`RunCtx`] (no sink,
/// no deadline).
pub fn run_trials(
    heuristic: &dyn Heuristic,
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    base_seed: u64,
) -> TrialSet {
    run_trials_with(
        heuristic,
        h,
        constraint,
        num_trials,
        &mut RunCtx::new(base_seed),
    )
}

/// Runs one trial with `TrialBegin`/`TrialEnd` bracketing in the
/// context's sink.
fn solve_one_with(
    heuristic: &dyn Heuristic,
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    trial_index: usize,
    seed: u64,
    ctx: &mut RunCtx<'_>,
) -> Trial {
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::TrialBegin {
            trial: trial_index as u64,
            seed,
            heuristic: heuristic.name().to_string(),
            instance: h.name().to_string(),
        });
    }
    ctx.seed = seed;
    let trial = heuristic.solve_with(h, constraint, ctx);
    if ctx.sink.is_enabled() {
        ctx.sink.emit(RunEvent::TrialEnd {
            trial: trial_index as u64,
            seed,
            cut: trial.cut,
            balanced: trial.balanced,
        });
    }
    trial
}

/// [`run_trials`] with event emission: each trial's engine events are
/// bracketed by [`RunEvent::TrialBegin`]/[`RunEvent::TrialEnd`], in seed
/// order.
///
/// Equivalent to [`run_trials_with`] with a sink-only [`RunCtx`].
pub fn run_trials_traced(
    heuristic: &dyn Heuristic,
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    base_seed: u64,
    sink: &dyn TraceSink,
) -> TrialSet {
    run_trials_with(
        heuristic,
        h,
        constraint,
        num_trials,
        &mut RunCtx::new(base_seed).with_sink(sink),
    )
}

/// The canonical trial runner: `num_trials` independent trials with seeds
/// `ctx.seed..ctx.seed + num_trials` under the context's sink, workspace,
/// and budget. One workspace serves every trial.
///
/// On a deadline or cancellation the in-flight trial returns its
/// best-so-far (flagged in [`Trial::stopped`]) and the remaining trials
/// are skipped — the returned set then holds fewer than `num_trials`
/// records, and the stop is announced with a
/// [`RunEvent::BudgetExhausted`]. The first trial always runs so the set
/// is never empty.
pub fn run_trials_with(
    heuristic: &dyn Heuristic,
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    ctx: &mut RunCtx<'_>,
) -> TrialSet {
    let base_seed = ctx.seed;
    let fault = ctx.fault_plan().clone();
    let mut probe = ctx.probe();
    let mut trials = Vec::with_capacity(num_trials);
    let mut failed_trials = 0usize;
    for i in 0..num_trials {
        if i > 0 {
            if let Some(reason) = probe.stop_now() {
                ctx.sink.emit(RunEvent::BudgetExhausted { reason });
                break;
            }
        }
        let seed = base_seed.wrapping_add(i as u64);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            fault.trip_start(i as u64);
            solve_one_with(heuristic, h, constraint, i, seed, ctx)
        }));
        let trial = match attempt {
            Ok(trial) => trial,
            Err(_) => {
                // The heuristic may have unwound mid-run: replace the
                // shared workspace and press on with the next seed.
                ctx.workspace = hypart_core::FmWorkspace::new();
                ctx.coarsen = hypart_core::CoarsenWorkspace::new();
                ctx.sink.emit(RunEvent::StartAborted {
                    index: i as u64,
                    seed,
                });
                failed_trials += 1;
                continue;
            }
        };
        let trial_stopped = trial.stopped;
        trials.push(trial);
        if trial_stopped.is_stopped() {
            break;
        }
    }
    ctx.seed = base_seed;
    TrialSet {
        heuristic: heuristic.name().to_string(),
        instance: h.name().to_string(),
        trials,
        failed_trials,
    }
}

/// Parallel variant of [`run_trials`]: trials execute on up to `threads`
/// OS threads (0 = one per core). Results are **identical** to the
/// sequential version — each trial is a pure function of its seed and the
/// output is assembled in seed order — so parallelism only changes
/// wall-clock time, never the reported distribution. (Per-trial `elapsed`
/// values are measured under concurrency and may differ slightly from a
/// sequential run; cut values cannot.)
pub fn run_trials_parallel(
    heuristic: &(dyn Heuristic + Sync),
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    base_seed: u64,
    threads: usize,
) -> TrialSet {
    run_trials_parallel_with(
        heuristic,
        h,
        constraint,
        num_trials,
        threads,
        &mut RunCtx::new(base_seed),
    )
}

/// [`run_trials_parallel`] with event emission. Each trial buffers its
/// events (including its own `TrialBegin`/`TrialEnd` bracket) into a
/// private [`MemorySink`] on its worker thread; buffers are flushed into
/// `sink` in seed order once all trials finish, so the stream is
/// **identical** to [`run_trials_traced`]'s for any thread count.
pub fn run_trials_parallel_traced(
    heuristic: &(dyn Heuristic + Sync),
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    base_seed: u64,
    threads: usize,
    sink: &dyn TraceSink,
) -> TrialSet {
    run_trials_parallel_with(
        heuristic,
        h,
        constraint,
        num_trials,
        threads,
        &mut RunCtx::new(base_seed).with_sink(sink),
    )
}

/// The canonical parallel trial runner: trials execute on up to `threads`
/// OS threads (0 = one per core) under the context's sink, seed, and
/// budget.
///
/// Unbudgeted results and event streams are **identical** to
/// [`run_trials_with`]'s for any thread count: each trial is a pure
/// function of its seed, outputs are assembled in seed order, and
/// per-trial event buffers are flushed in seed order. (Per-trial
/// `elapsed` values are measured under concurrency and may differ
/// slightly from a sequential run; cut values cannot.)
///
/// Under a budget every trial still executes — the work is already
/// distributed when the deadline hits — but each trial individually
/// observes the shared deadline and cancellation token and returns its
/// best-so-far, flagged in [`Trial::stopped`]. Trials do not share the
/// context's workspace; each worker trial allocates its own.
pub fn run_trials_parallel_with(
    heuristic: &(dyn Heuristic + Sync),
    h: &Hypergraph,
    constraint: &BalanceConstraint,
    num_trials: usize,
    threads: usize,
    ctx: &mut RunCtx<'_>,
) -> TrialSet {
    let traced = ctx.sink.is_enabled();
    let base_seed = ctx.seed;
    let audit = ctx.audit();
    let fault = ctx.fault_plan().clone();
    let deadline = ctx.deadline();
    let token = ctx.cancel_token();
    let check_moves = ctx.move_check_interval();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(num_trials.max(1))
    .max(1);

    // `None` never survives the scope below: every index gets `Some(Ok)`
    // from a finished trial or `Some(Err)` from its panic boundary. Locks
    // are recovered, never unwrapped.
    type TrialSlot = std::sync::Mutex<Option<Result<(Trial, MemorySink), ()>>>;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<TrialSlot> = (0..num_trials)
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= num_trials {
                    break;
                }
                let seed = base_seed.wrapping_add(i as u64);
                let buffer = MemorySink::new();
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    fault.trip_start(i as u64);
                    let trial_sink: &dyn TraceSink = if traced { &buffer } else { &NullSink };
                    let mut trial_ctx = RunCtx::new(seed)
                        .with_sink(trial_sink)
                        .with_cancel_token(token.clone())
                        .with_audit(audit)
                        .with_move_check_interval(check_moves);
                    if let Some(d) = deadline {
                        trial_ctx = trial_ctx.with_deadline(d);
                    }
                    solve_one_with(heuristic, h, constraint, i, seed, &mut trial_ctx)
                }));
                let slot = match attempt {
                    Ok(trial) => Ok((trial, buffer)),
                    Err(_) => Err(()),
                };
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(slot);
            });
        }
    });
    let mut trials = Vec::with_capacity(num_trials);
    let mut failed_trials = 0usize;
    for (i, cell) in slots.into_iter().enumerate() {
        match cell.into_inner().unwrap_or_else(|e| e.into_inner()) {
            Some(Ok((trial, buffer))) => {
                if traced {
                    buffer.flush_into(ctx.sink);
                }
                trials.push(trial);
            }
            Some(Err(())) | None => {
                ctx.sink.emit(RunEvent::StartAborted {
                    index: i as u64,
                    seed: base_seed.wrapping_add(i as u64),
                });
                failed_trials += 1;
            }
        }
    }
    TrialSet {
        heuristic: heuristic.name().to_string(),
        instance: h.name().to_string(),
        trials,
        failed_trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_benchgen::toys::two_clusters;
    use hypart_core::FmConfig;

    fn setup() -> (Hypergraph, BalanceConstraint) {
        let h = two_clusters(8, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        (h, c)
    }

    #[test]
    fn flat_trials_find_optimum() {
        let (h, c) = setup();
        let heur = FlatFmHeuristic::new("LIFO", FmConfig::lifo());
        let set = run_trials(&heur, &h, &c, 8, 0);
        assert_eq!(set.len(), 8);
        assert_eq!(set.min_cut(), 2);
        assert!(set.avg_cut() >= 2.0);
        assert_eq!(set.balanced_fraction(), 1.0);
        assert_eq!(set.heuristic, "LIFO");
    }

    #[test]
    fn trials_are_reproducible() {
        let (h, c) = setup();
        let heur = FlatFmHeuristic::new("CLIP", FmConfig::clip());
        let a = run_trials(&heur, &h, &c, 5, 42);
        let b = run_trials(&heur, &h, &c, 5, 42);
        let cuts_a: Vec<u64> = a.trials.iter().map(|t| t.cut).collect();
        let cuts_b: Vec<u64> = b.trials.iter().map(|t| t.cut).collect();
        assert_eq!(cuts_a, cuts_b);
    }

    #[test]
    fn ml_heuristic_runs() {
        let (h, c) = setup();
        let heur = MlHeuristic::new("ML LIFO", MlConfig::ml_lifo());
        let set = run_trials(&heur, &h, &c, 3, 0);
        assert_eq!(set.min_cut(), 2);
    }

    #[test]
    fn multi_start_heuristic_runs() {
        let (h, c) = setup();
        let heur = MultiStartHeuristic::new("hMetis-like x4", MlConfig::ml_lifo(), 4, 1);
        assert_eq!(heur.nruns(), 4);
        let set = run_trials(&heur, &h, &c, 2, 0);
        assert_eq!(set.min_cut(), 2);
    }

    #[test]
    fn parallel_trials_match_sequential() {
        let (h, c) = setup();
        let heur = FlatFmHeuristic::new("LIFO", FmConfig::lifo());
        let seq = run_trials(&heur, &h, &c, 12, 3);
        for threads in [0, 1, 3] {
            let par = run_trials_parallel(&heur, &h, &c, 12, 3, threads);
            let seq_cuts: Vec<u64> = seq.trials.iter().map(|t| t.cut).collect();
            let par_cuts: Vec<u64> = par.trials.iter().map(|t| t.cut).collect();
            assert_eq!(seq_cuts, par_cuts, "threads={threads}");
            let seq_seeds: Vec<u64> = seq.trials.iter().map(|t| t.seed).collect();
            let par_seeds: Vec<u64> = par.trials.iter().map(|t| t.seed).collect();
            assert_eq!(seq_seeds, par_seeds, "threads={threads}");
        }
    }

    #[test]
    fn traced_trials_bracket_each_trial() {
        let (h, c) = setup();
        let heur = MlHeuristic::new("ML", MlConfig::ml_lifo());
        let sink = MemorySink::new();
        let set = run_trials_traced(&heur, &h, &c, 3, 10, &sink);
        let events = sink.take();
        let begins: Vec<(u64, u64)> = events
            .iter()
            .filter_map(|e| match e {
                RunEvent::TrialBegin { trial, seed, .. } => Some((*trial, *seed)),
                _ => None,
            })
            .collect();
        assert_eq!(begins, vec![(0, 10), (1, 11), (2, 12)]);
        let ends: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                RunEvent::TrialEnd { cut, .. } => Some(*cut),
                _ => None,
            })
            .collect();
        let cuts: Vec<u64> = set.trials.iter().map(|t| t.cut).collect();
        assert_eq!(ends, cuts);
    }

    #[test]
    fn parallel_traced_trials_match_sequential_stream() {
        let (h, c) = setup();
        let heur = FlatFmHeuristic::new("CLIP", FmConfig::clip());
        let seq_sink = MemorySink::new();
        let seq = run_trials_traced(&heur, &h, &c, 9, 5, &seq_sink);
        let seq_events = seq_sink.take();
        assert!(!seq_events.is_empty());
        for threads in [1, 3, 0] {
            let par_sink = MemorySink::new();
            let par = run_trials_parallel_traced(&heur, &h, &c, 9, 5, threads, &par_sink);
            let seq_cuts: Vec<u64> = seq.trials.iter().map(|t| t.cut).collect();
            let par_cuts: Vec<u64> = par.trials.iter().map(|t| t.cut).collect();
            assert_eq!(seq_cuts, par_cuts, "threads={threads}");
            assert_eq!(par_sink.take(), seq_events, "threads={threads}");
        }
    }

    #[test]
    fn panicked_trial_is_isolated_in_both_runners() {
        use hypart_core::FaultPlan;
        let (h, c) = setup();
        let heur = FlatFmHeuristic::new("LIFO", FmConfig::lifo());
        let clean = run_trials(&heur, &h, &c, 6, 3);

        let mut seq_ctx = RunCtx::new(3).with_fault_plan(FaultPlan::panic_in_start(2));
        let seq = run_trials_with(&heur, &h, &c, 6, &mut seq_ctx);
        assert_eq!(seq.failed_trials, 1);
        assert_eq!(seq.len(), 5);

        let mut par_ctx = RunCtx::new(3).with_fault_plan(FaultPlan::panic_in_start(2));
        let par = run_trials_parallel_with(&heur, &h, &c, 6, 2, &mut par_ctx);
        assert_eq!(par.failed_trials, 1);
        // Survivors are bitwise the fault-free trials minus #2.
        let expect: Vec<u64> = clean
            .trials
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, t)| t.cut)
            .collect();
        let seq_cuts: Vec<u64> = seq.trials.iter().map(|t| t.cut).collect();
        let par_cuts: Vec<u64> = par.trials.iter().map(|t| t.cut).collect();
        assert_eq!(seq_cuts, expect);
        assert_eq!(par_cuts, expect);
    }

    #[test]
    fn min_avg_cell_formats_like_the_paper() {
        let set = TrialSet {
            heuristic: "x".into(),
            instance: "y".into(),
            trials: vec![
                Trial {
                    seed: 0,
                    cut: 333,
                    balanced: true,
                    stopped: StopReason::Completed,
                    elapsed: Duration::ZERO,
                },
                Trial {
                    seed: 1,
                    cut: 945,
                    balanced: true,
                    stopped: StopReason::Completed,
                    elapsed: Duration::ZERO,
                },
            ],
            failed_trials: 0,
        };
        assert_eq!(set.min_avg_cell(), "333/639");
    }

    #[test]
    fn empty_set_behaves() {
        let set = TrialSet {
            heuristic: "x".into(),
            instance: "y".into(),
            trials: vec![],
            failed_trials: 0,
        };
        assert!(set.is_empty());
        assert_eq!(set.avg_cut(), 0.0);
        assert_eq!(set.avg_seconds(), 0.0);
        assert_eq!(set.balanced_fraction(), 0.0);
    }
}
