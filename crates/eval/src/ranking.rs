//! Speed-dependent ranking diagrams (Schreiber–Martin style).
//!
//! "Such methodologies use the distribution of c_τ, the best solution cost
//! achieved in time τ … this yields a useful ranking-diagram diagnostic
//! that depicts regions of (instance size, CPU time) dominance for each of
//! the heuristics being compared." The diagram is built from the BSF
//! curves of each heuristic on each instance: the winner of a cell is the
//! heuristic with the lowest expected best cut within that budget.

use crate::bsf::BsfCurve;

/// One instance's row in a ranking diagram: the BSF curves of all
/// competing heuristics on that instance.
#[derive(Clone, Debug)]
pub struct RankingRow {
    /// Instance name.
    pub instance: String,
    /// Instance size (vertex count) for ordering the axis.
    pub size: usize,
    /// One BSF curve per heuristic.
    pub curves: Vec<BsfCurve>,
}

/// A ranking diagram over (instance size, CPU budget).
#[derive(Clone, Debug)]
pub struct RankingDiagram {
    /// Budgets (seconds) forming the x axis, ascending.
    pub budgets: Vec<f64>,
    /// Rows sorted by instance size ascending.
    pub rows: Vec<RankingRow>,
}

/// Winner of one cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellWinner {
    /// Winning heuristic name.
    pub heuristic: String,
    /// Its expected best cut within the budget.
    pub expected_cut: f64,
}

impl RankingDiagram {
    /// Builds a diagram from rows and an explicit budget axis.
    ///
    /// # Panics
    ///
    /// Panics if `budgets` is empty, rows is empty, or any row has no
    /// curves.
    pub fn new(mut rows: Vec<RankingRow>, budgets: Vec<f64>) -> Self {
        assert!(!budgets.is_empty(), "need at least one budget");
        assert!(!rows.is_empty(), "need at least one instance row");
        for r in &rows {
            assert!(!r.curves.is_empty(), "row {} has no curves", r.instance);
        }
        rows.sort_by_key(|r| r.size);
        RankingDiagram { budgets, rows }
    }

    /// Winner of the cell (`row`, `budget_index`): the affordable
    /// heuristic with the lowest expected best cut within the budget. If
    /// no heuristic can complete a start within the budget, the one with
    /// the cheapest single start wins by default (you must run something).
    pub fn winner(&self, row: usize, budget_index: usize) -> CellWinner {
        let budget = self.budgets[budget_index];
        let row = &self.rows[row];
        let affordable = row
            .curves
            .iter()
            .filter_map(|c| c.at_budget(budget).map(|cut| (c.heuristic.clone(), cut)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"));
        let best = affordable.unwrap_or_else(|| {
            let cheapest = row
                .curves
                .iter()
                .min_by(|a, b| a.min_budget().partial_cmp(&b.min_budget()).expect("no NaN"))
                .expect("row has curves");
            (
                cheapest.heuristic.clone(),
                cheapest.points[0].expected_best_cut,
            )
        });
        CellWinner {
            heuristic: best.0,
            expected_cut: best.1,
        }
    }

    /// Renders the dominance grid: rows = instances (size ascending),
    /// columns = budgets, cells = winning heuristic.
    pub fn render(&self) -> String {
        let mut out = String::from("instance (|V|)      ");
        for b in &self.budgets {
            out.push_str(&format!("| τ={b:<9.3}"));
        }
        out.push('\n');
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{:<12} {:>6} ", row.instance, row.size));
            for j in 0..self.budgets.len() {
                let w = self.winner(i, j);
                out.push_str(&format!("| {:<10}", truncate(&w.heuristic, 10)));
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsf::BsfPoint;

    fn curve(name: &str, pts: &[(usize, f64, f64)]) -> BsfCurve {
        BsfCurve {
            heuristic: name.into(),
            instance: "I".into(),
            points: pts
                .iter()
                .map(|&(starts, seconds, cut)| BsfPoint {
                    starts,
                    seconds,
                    expected_best_cut: cut,
                })
                .collect(),
        }
    }

    fn sample_diagram() -> RankingDiagram {
        // "fast" wins small budgets, "strong" wins large budgets.
        let fast = curve("fast", &[(1, 0.1, 100.0), (2, 0.2, 95.0), (10, 1.0, 90.0)]);
        let strong = curve("strong", &[(1, 0.5, 85.0), (2, 1.0, 80.0)]);
        RankingDiagram::new(
            vec![RankingRow {
                instance: "I".into(),
                size: 1000,
                curves: vec![fast, strong],
            }],
            vec![0.1, 0.5, 2.0],
        )
    }

    #[test]
    fn winner_switches_with_budget() {
        let d = sample_diagram();
        assert_eq!(d.winner(0, 0).heuristic, "fast");
        assert_eq!(d.winner(0, 1).heuristic, "strong");
        assert_eq!(d.winner(0, 2).heuristic, "strong");
    }

    #[test]
    fn render_contains_winners() {
        let d = sample_diagram();
        let grid = d.render();
        assert!(grid.contains("fast"));
        assert!(grid.contains("strong"));
        assert!(grid.contains("1000"));
    }

    #[test]
    fn rows_sort_by_size() {
        let c = curve("h", &[(1, 0.1, 1.0)]);
        let d = RankingDiagram::new(
            vec![
                RankingRow {
                    instance: "big".into(),
                    size: 100,
                    curves: vec![c.clone()],
                },
                RankingRow {
                    instance: "small".into(),
                    size: 10,
                    curves: vec![c],
                },
            ],
            vec![1.0],
        );
        assert_eq!(d.rows[0].instance, "small");
    }

    #[test]
    #[should_panic(expected = "at least one budget")]
    fn empty_budgets_panic() {
        let c = curve("h", &[(1, 0.1, 1.0)]);
        let _ = RankingDiagram::new(
            vec![RankingRow {
                instance: "i".into(),
                size: 1,
                curves: vec![c],
            }],
            vec![],
        );
    }
}
