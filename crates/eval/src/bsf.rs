//! Best-so-far (BSF) curves.
//!
//! Barr et al.'s most popular reporting style: "the solution cost that the
//! algorithm is expected to achieve in a multistart regime, versus the
//! given CPU time budget τ". Given the empirical distribution of single
//! starts `(cut, time)`, the expected best cut after `k` independent
//! starts is computed exactly from order statistics:
//!
//! `E[min of k draws] = Σ_c c · ( P(X ≥ c)^k − P(X > c)^k )`
//!
//! and the budget to run `k` starts is `k × mean(time)` (per the paper's
//! footnote: "a given time bound τ can be converted to a bound on the
//! number of starts" via average runtime).

use crate::runner::TrialSet;

/// A point on a BSF curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BsfPoint {
    /// Number of independent starts the budget affords.
    pub starts: usize,
    /// CPU budget τ in seconds (starts × mean single-start seconds).
    pub seconds: f64,
    /// Expected best cut achieved within the budget.
    pub expected_best_cut: f64,
}

/// A best-so-far curve for one heuristic on one instance.
#[derive(Clone, Debug)]
pub struct BsfCurve {
    /// Heuristic display name.
    pub heuristic: String,
    /// Instance name.
    pub instance: String,
    /// Curve points for `1..=max_starts` starts.
    pub points: Vec<BsfPoint>,
}

impl BsfCurve {
    /// Builds the exact BSF curve from a trial set, for budgets of
    /// `1..=max_starts` starts.
    ///
    /// # Panics
    ///
    /// Panics if `trials` is empty or `max_starts == 0`.
    pub fn from_trials(trials: &TrialSet, max_starts: usize) -> BsfCurve {
        assert!(!trials.is_empty(), "need at least one trial");
        assert!(max_starts >= 1, "need at least one start");
        let mut cuts: Vec<u64> = trials.trials.iter().map(|t| t.cut).collect();
        cuts.sort_unstable();
        let n = cuts.len() as f64;
        let mean_secs = trials.avg_seconds();

        // Distinct values with their "at least" tail probabilities.
        let mut distinct: Vec<(u64, f64, f64)> = Vec::new(); // (c, P(X>=c), P(X>c))
        let mut i = 0;
        while i < cuts.len() {
            let c = cuts[i];
            let ge = (cuts.len() - i) as f64 / n;
            let mut j = i;
            while j + 1 < cuts.len() && cuts[j + 1] == c {
                j += 1;
            }
            let gt = (cuts.len() - j - 1) as f64 / n;
            distinct.push((c, ge, gt));
            i = j + 1;
        }

        let points = (1..=max_starts)
            .map(|k| {
                let expected: f64 = distinct
                    .iter()
                    .map(|&(c, ge, gt)| c as f64 * (ge.powi(k as i32) - gt.powi(k as i32)))
                    .sum();
                BsfPoint {
                    starts: k,
                    seconds: k as f64 * mean_secs,
                    expected_best_cut: expected,
                }
            })
            .collect();

        BsfCurve {
            heuristic: trials.heuristic.clone(),
            instance: trials.instance.clone(),
            points,
        }
    }

    /// Expected best cut at CPU budget `seconds` (step interpolation:
    /// largest affordable number of starts). Returns `None` when the
    /// budget cannot afford even one start — the heuristic produces no
    /// solution in that regime.
    pub fn at_budget(&self, seconds: f64) -> Option<f64> {
        let mut best = None;
        for p in &self.points {
            if p.seconds <= seconds {
                best = Some(p.expected_best_cut);
            }
        }
        best
    }

    /// Budget (seconds) of a single start — below this the heuristic is
    /// unaffordable.
    pub fn min_budget(&self) -> f64 {
        self.points[0].seconds
    }

    /// The paper's other Schreiber–Martin statistic: the probability that
    /// the best cut within the budget of `starts` starts is at most
    /// `target` — `P(c_τ ≤ C₀)` with τ = starts × mean time. Computed
    /// exactly from the empirical distribution:
    /// `1 − P(one start > target)^starts`.
    ///
    /// # Panics
    ///
    /// Panics if `starts == 0`.
    pub fn success_probability(&self, trials: &TrialSet, target: u64, starts: usize) -> f64 {
        assert!(starts >= 1, "need at least one start");
        let n = trials.trials.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        let above = trials.trials.iter().filter(|t| t.cut > target).count() as f64;
        1.0 - (above / n).powi(starts as i32)
    }

    /// Renders the curve as a small ASCII plot (budget on x, expected best
    /// cut on y), for terminal reports.
    pub fn ascii_plot(&self, width: usize, height: usize) -> String {
        let width = width.max(16);
        let height = height.max(4);
        let ys: Vec<f64> = self.points.iter().map(|p| p.expected_best_cut).collect();
        let (ymin, ymax) = ys
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &y| {
                (lo.min(y), hi.max(y))
            });
        let span = (ymax - ymin).max(1e-9);
        let mut grid = vec![vec![b' '; width]; height];
        let n = self.points.len();
        for (i, p) in self.points.iter().enumerate() {
            let x = if n == 1 { 0 } else { i * (width - 1) / (n - 1) };
            let yf = (p.expected_best_cut - ymin) / span;
            let y = ((1.0 - yf) * (height - 1) as f64).round() as usize;
            grid[y.min(height - 1)][x] = b'*';
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} on {} (expected best cut vs starts 1..{})\n",
            self.heuristic, self.instance, n
        ));
        for row in grid {
            out.push_str(std::str::from_utf8(&row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!("y: [{ymin:.1}, {ymax:.1}]\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{Trial, TrialSet};
    use std::time::Duration;

    fn set(cuts: &[u64]) -> TrialSet {
        TrialSet {
            heuristic: "H".into(),
            instance: "I".into(),
            trials: cuts
                .iter()
                .enumerate()
                .map(|(i, &cut)| Trial {
                    seed: i as u64,
                    cut,
                    balanced: true,
                    stopped: hypart_core::StopReason::Completed,
                    elapsed: Duration::from_millis(100),
                })
                .collect(),
            failed_trials: 0,
        }
    }

    #[test]
    fn one_start_expectation_is_the_mean() {
        let ts = set(&[10, 20, 30, 40]);
        let curve = BsfCurve::from_trials(&ts, 4);
        assert!((curve.points[0].expected_best_cut - 25.0).abs() < 1e-9);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let ts = set(&[5, 9, 14, 3, 7, 7, 12]);
        let curve = BsfCurve::from_trials(&ts, 10);
        for w in curve.points.windows(2) {
            assert!(w[1].expected_best_cut <= w[0].expected_best_cut + 1e-12);
        }
    }

    #[test]
    fn curve_approaches_the_minimum() {
        let ts = set(&[5, 9, 14, 3, 7]);
        let curve = BsfCurve::from_trials(&ts, 60);
        let last = curve.points.last().unwrap().expected_best_cut;
        assert!((last - 3.0).abs() < 0.1, "got {last}");
    }

    #[test]
    fn two_start_expectation_exact() {
        // cuts {1, 2}: min of 2 draws with replacement:
        // P(min=1) = 1 - (1/2)^2 = 3/4; E = 1*3/4 + 2*1/4 = 1.25
        let ts = set(&[1, 2]);
        let curve = BsfCurve::from_trials(&ts, 2);
        assert!((curve.points[1].expected_best_cut - 1.25).abs() < 1e-12);
    }

    #[test]
    fn budget_interpolation_is_stepwise() {
        let ts = set(&[10, 20]); // mean time 0.1 s
        let curve = BsfCurve::from_trials(&ts, 5);
        assert_eq!(curve.at_budget(0.0), None); // can't afford one start
        assert_eq!(
            curve.at_budget(0.35),
            Some(curve.points[2].expected_best_cut)
        );
        assert_eq!(
            curve.at_budget(99.0),
            Some(curve.points[4].expected_best_cut)
        );
        assert!((curve.min_budget() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn seconds_scale_linearly_with_starts() {
        let ts = set(&[4, 4, 4]);
        let curve = BsfCurve::from_trials(&ts, 3);
        assert!((curve.points[2].seconds - 3.0 * curve.points[0].seconds).abs() < 1e-9);
    }

    #[test]
    fn success_probability_matches_hand_computation() {
        // cuts {3, 5, 9, 14}: P(one start <= 5) = 1/2.
        let ts = set(&[3, 5, 9, 14]);
        let curve = BsfCurve::from_trials(&ts, 4);
        assert!((curve.success_probability(&ts, 5, 1) - 0.5).abs() < 1e-12);
        // Two starts: 1 - (1/2)^2 = 3/4.
        assert!((curve.success_probability(&ts, 5, 2) - 0.75).abs() < 1e-12);
        // Target below the min: probability 0 at any number of starts.
        assert_eq!(curve.success_probability(&ts, 2, 50), 0.0);
        // Target at or above the max: probability 1 immediately.
        assert_eq!(curve.success_probability(&ts, 14, 1), 1.0);
    }

    #[test]
    fn success_probability_is_monotone_in_starts() {
        let ts = set(&[5, 9, 14, 3, 7, 7, 12]);
        let curve = BsfCurve::from_trials(&ts, 4);
        let mut prev = 0.0;
        for k in 1..=20 {
            let p = curve.success_probability(&ts, 7, k);
            assert!(p + 1e-12 >= prev, "not monotone at {k}");
            prev = p;
        }
    }

    #[test]
    fn ascii_plot_renders() {
        let ts = set(&[5, 9, 14, 3, 7]);
        let curve = BsfCurve::from_trials(&ts, 8);
        let plot = curve.ascii_plot(40, 8);
        assert!(plot.contains('*'));
        assert!(plot.contains("H on I"));
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_trials_panic() {
        let ts = set(&[]);
        let _ = BsfCurve::from_trials(&ts, 3);
    }
}
