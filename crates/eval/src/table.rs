//! Aligned ASCII / CSV table emission for regenerated paper tables.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use hypart_eval::table::Table;
///
/// let mut t = Table::new(["algo", "ibm01", "ibm02"]);
/// t.add_row(["LIFO", "333/639", "271/551"]);
/// let text = t.render();
/// assert!(text.contains("LIFO"));
/// assert!(t.to_csv().starts_with("algo,ibm01,ibm02\n"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: String::new(),
        }
    }

    /// Sets a title line printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length differs from the header count.
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:<w$}");
            }
            line.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180 quoting for cells containing
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["a", "bbbb"]);
        t.add_row(["xxxxx", "y"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "a      bbbb");
        assert_eq!(lines[2], "xxxxx  y");
    }

    #[test]
    fn title_is_printed_first() {
        let t = Table::new(["c"]).with_title("Table 1: stuff");
        assert!(t.render().starts_with("Table 1: stuff\n"));
    }

    #[test]
    #[should_panic(expected = "row has 1 cells")]
    fn wrong_arity_panics() {
        let mut t = Table::new(["a", "b"]);
        t.add_row(["only-one"]);
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new(["name", "value"]);
        t.add_row(["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn num_rows_counts() {
        let mut t = Table::new(["x"]);
        assert_eq!(t.num_rows(), 0);
        t.add_row(["1"]);
        t.add_row(["2"]);
        assert_eq!(t.num_rows(), 2);
    }
}
