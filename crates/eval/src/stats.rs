//! Summary statistics and significance testing.
//!
//! The paper (citing Brglez) calls for statistical analyses that separate
//! genuine heuristic improvement from randomization noise; the Wilcoxon
//! rank-sum test here is the standard nonparametric tool for comparing two
//! heuristics' cut distributions.

/// Five-number-plus summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Median (midpoint of the two central order statistics for even n).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `xs`. Returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            std_dev: var.sqrt(),
            median,
        })
    }

    /// Quantile `q ∈ [0, 1]` of `xs` by linear interpolation.
    ///
    /// Returns `None` for an empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if xs.is_empty() {
            return None;
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Result of a two-sided Wilcoxon (Mann–Whitney) rank-sum test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WilcoxonResult {
    /// The Mann–Whitney U statistic of the first sample.
    pub u: f64,
    /// Normal-approximation z-score (tie-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
}

impl WilcoxonResult {
    /// `true` if the difference is significant at level `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Two-sided Wilcoxon rank-sum test of samples `xs` vs `ys` with the
/// normal approximation (adequate for the n ≥ 20 trial counts used in
/// partitioning experiments). Returns `None` if either sample is empty.
pub fn wilcoxon_rank_sum(xs: &[f64], ys: &[f64]) -> Option<WilcoxonResult> {
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    let n1 = xs.len() as f64;
    let n2 = ys.len() as f64;
    // Rank the pooled sample with midranks for ties.
    let mut pooled: Vec<(f64, usize)> = xs
        .iter()
        .map(|&x| (x, 0usize))
        .chain(ys.iter().map(|&y| (y, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN in samples"));
    let total = pooled.len();
    let mut ranks = vec![0.0f64; total];
    let mut tie_correction = 0.0f64;
    let mut i = 0;
    while i < total {
        let mut j = i;
        while j + 1 < total && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for r in ranks.iter_mut().take(j + 1).skip(i) {
            *r = midrank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t.powi(3) - t;
        i = j + 1;
    }
    let r1: f64 = pooled
        .iter()
        .zip(&ranks)
        .filter(|((_, grp), _)| *grp == 0)
        .map(|(_, &r)| r)
        .sum();
    let u1 = r1 - n1 * (n1 + 1.0) / 2.0;
    let mean_u = n1 * n2 / 2.0;
    let n = n1 + n2;
    let var_u = n1 * n2 / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
    if var_u <= 0.0 {
        // All observations identical: no evidence of difference.
        return Some(WilcoxonResult {
            u: u1,
            z: 0.0,
            p_value: 1.0,
        });
    }
    let z = (u1 - mean_u) / var_u.sqrt();
    let p = 2.0 * (1.0 - std_normal_cdf(z.abs()));
    Some(WilcoxonResult {
        u: u1,
        z,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 erf approximation
/// (|error| < 1.5e-7, ample for significance reporting).
fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample_has_zero_std() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(Summary::quantile(&xs, 0.0).unwrap(), 10.0);
        assert_eq!(Summary::quantile(&xs, 1.0).unwrap(), 50.0);
        assert_eq!(Summary::quantile(&xs, 0.5).unwrap(), 30.0);
        assert!((Summary::quantile(&xs, 0.25).unwrap() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn wilcoxon_detects_clear_separation() {
        let xs: Vec<f64> = (0..30).map(|i| 100.0 + i as f64).collect();
        let ys: Vec<f64> = (0..30).map(|i| 500.0 + i as f64).collect();
        let w = wilcoxon_rank_sum(&xs, &ys).unwrap();
        assert!(w.significant_at(0.001), "p = {}", w.p_value);
        assert!(w.z < 0.0); // xs are smaller
    }

    #[test]
    fn wilcoxon_sees_no_difference_in_identical_samples() {
        let xs = vec![5.0; 20];
        let ys = vec![5.0; 20];
        let w = wilcoxon_rank_sum(&xs, &ys).unwrap();
        assert!((w.p_value - 1.0).abs() < 1e-9);
        assert!(!w.significant_at(0.05));
    }

    #[test]
    fn wilcoxon_handles_interleaved_samples() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 2.0).collect();
        let ys: Vec<f64> = (0..40).map(|i| i as f64 * 2.0 + 1.0).collect();
        let w = wilcoxon_rank_sum(&xs, &ys).unwrap();
        assert!(!w.significant_at(0.05), "p = {}", w.p_value);
    }

    #[test]
    fn wilcoxon_empty_is_none() {
        assert!(wilcoxon_rank_sum(&[], &[1.0]).is_none());
        assert!(wilcoxon_rank_sum(&[1.0], &[]).is_none());
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.959_964) - 0.975).abs() < 1e-4);
        assert!(std_normal_cdf(-8.0) < 1e-10);
    }
}
