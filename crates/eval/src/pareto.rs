//! Non-dominated (Pareto) frontiers of (solution cost, runtime) points.
//!
//! The paper: "a performance point A is *dominated* by B iff B has both
//! lower cost and lower runtime … the non-dominated frontier … allows the
//! reader to easily see which heuristic is preferable for a given runtime
//! regime."

/// A labeled (cost, runtime) performance point.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfPoint {
    /// Label, e.g. heuristic/configuration name.
    pub label: String,
    /// Solution cost (e.g. average cut).
    pub cost: f64,
    /// Runtime in seconds.
    pub seconds: f64,
}

impl PerfPoint {
    /// Creates a performance point.
    pub fn new(label: impl Into<String>, cost: f64, seconds: f64) -> Self {
        PerfPoint {
            label: label.into(),
            cost,
            seconds,
        }
    }

    /// `true` if `self` is dominated by `other` (strictly worse in both
    /// dimensions, per the paper's definition).
    pub fn is_dominated_by(&self, other: &PerfPoint) -> bool {
        other.cost < self.cost && other.seconds < self.seconds
    }
}

/// Returns the non-dominated frontier of `points`, sorted by runtime
/// ascending. Ties are kept (a point equal in both dimensions to a
/// frontier point is itself non-dominated under strict dominance).
pub fn pareto_frontier(points: &[PerfPoint]) -> Vec<PerfPoint> {
    let mut frontier: Vec<PerfPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| p.is_dominated_by(q)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| {
        a.seconds
            .partial_cmp(&b.seconds)
            .expect("no NaN")
            .then(a.cost.partial_cmp(&b.cost).expect("no NaN"))
    });
    frontier
}

/// Renders a frontier report: all points, marking frontier members with
/// `*`, sorted by runtime.
pub fn frontier_report(points: &[PerfPoint]) -> String {
    let frontier = pareto_frontier(points);
    let mut sorted: Vec<&PerfPoint> = points.iter().collect();
    sorted.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).expect("no NaN"));
    let mut out = String::from("  cost        seconds     configuration\n");
    for p in sorted {
        let marker = if frontier.contains(p) { '*' } else { ' ' };
        out.push_str(&format!(
            "{marker} {:<11.2} {:<11.3} {}\n",
            p.cost, p.seconds, p.label
        ));
    }
    out.push_str("(* = on the non-dominated frontier)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_in_both_dimensions() {
        let a = PerfPoint::new("a", 10.0, 5.0);
        let b = PerfPoint::new("b", 8.0, 4.0);
        let c = PerfPoint::new("c", 8.0, 5.0);
        assert!(a.is_dominated_by(&b));
        assert!(!a.is_dominated_by(&c)); // equal runtime: not dominated
        assert!(!b.is_dominated_by(&a));
    }

    #[test]
    fn frontier_filters_dominated_points() {
        let points = vec![
            PerfPoint::new("fast-bad", 100.0, 1.0),
            PerfPoint::new("slow-good", 50.0, 10.0),
            PerfPoint::new("dominated", 120.0, 12.0),
            PerfPoint::new("mid", 70.0, 4.0),
        ];
        let f = pareto_frontier(&points);
        let labels: Vec<&str> = f.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["fast-bad", "mid", "slow-good"]);
    }

    #[test]
    fn frontier_of_empty_is_empty() {
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let p = vec![PerfPoint::new("only", 1.0, 1.0)];
        assert_eq!(pareto_frontier(&p), p);
    }

    #[test]
    fn identical_points_are_all_kept() {
        let p = vec![PerfPoint::new("a", 5.0, 5.0), PerfPoint::new("b", 5.0, 5.0)];
        assert_eq!(pareto_frontier(&p).len(), 2);
    }

    #[test]
    fn report_marks_frontier_members() {
        let points = vec![
            PerfPoint::new("good", 10.0, 1.0),
            PerfPoint::new("bad", 20.0, 2.0),
        ];
        let r = frontier_report(&points);
        assert!(r.contains("* 10.00"));
        assert!(r.contains("  20.00"));
    }
}
