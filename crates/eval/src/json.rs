//! Minimal JSON emission for experiment results.
//!
//! The value builder/parser itself lives in [`hypart_trace::json`] (the
//! trace crate defines the JSONL event schema, so it owns the
//! serializer); this module re-exports it and adds the experiment-record
//! conversions.

pub use hypart_trace::json::JsonValue;

/// Serializes a [`crate::runner::TrialSet`] to a JSON object with the full
/// per-trial records (the distribution data the paper says a flexible
/// medium should publish).
pub fn trial_set_to_json(set: &crate::runner::TrialSet) -> JsonValue {
    JsonValue::object([
        ("heuristic", JsonValue::string(set.heuristic.clone())),
        ("instance", JsonValue::string(set.instance.clone())),
        ("failed_trials", JsonValue::from(set.failed_trials as u64)),
        (
            "trials",
            JsonValue::array(set.trials.iter().map(|t| {
                JsonValue::object([
                    ("seed", JsonValue::from(t.seed as f64)),
                    ("cut", JsonValue::from(t.cut)),
                    ("balanced", JsonValue::from(t.balanced)),
                    ("seconds", JsonValue::from(t.elapsed.as_secs_f64())),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_builder_works() {
        let v = JsonValue::object([
            ("cut", JsonValue::Number(42.0)),
            ("balanced", JsonValue::Bool(true)),
        ]);
        assert_eq!(v.to_string(), r#"{"balanced":true,"cut":42}"#);
    }

    #[test]
    fn trial_set_export() {
        use crate::runner::{Trial, TrialSet};
        let set = TrialSet {
            heuristic: "H".into(),
            instance: "I".into(),
            trials: vec![Trial {
                seed: 1,
                cut: 10,
                balanced: true,
                stopped: hypart_core::StopReason::Completed,
                elapsed: std::time::Duration::from_millis(250),
            }],
            failed_trials: 0,
        };
        let json = trial_set_to_json(&set).to_string();
        assert!(json.contains(r#""heuristic":"H""#));
        assert!(json.contains(r#""cut":10"#));
        assert!(json.contains(r#""seconds":0.25"#));

        // Experiment records parse back with the workspace parser.
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed.get("trials").and_then(|t| match t {
                JsonValue::Array(items) => items[0].get("cut").and_then(JsonValue::as_u64),
                _ => None,
            }),
            Some(10)
        );
    }
}
