//! Minimal JSON emission for experiment results.
//!
//! Machine-readable result export without pulling a serialization
//! dependency into the workspace: a small value tree with spec-compliant
//! string escaping and float formatting, sufficient for the flat records
//! experiments produce.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Finite number (non-finite values serialize as `null`, as
    /// `JSON.stringify` does).
    Number(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Convenience constructor for an object from key/value pairs.
    ///
    /// ```
    /// use hypart_eval::json::JsonValue;
    ///
    /// let v = JsonValue::object([
    ///     ("cut", JsonValue::Number(42.0)),
    ///     ("balanced", JsonValue::Bool(true)),
    /// ]);
    /// assert_eq!(v.to_string(), r#"{"balanced":true,"cut":42}"#);
    /// ```
    pub fn object<K, I>(pairs: I) -> JsonValue
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, JsonValue)>,
    {
        JsonValue::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v))
                .collect(),
        )
    }

    /// Convenience constructor for an array.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Convenience constructor for a string value.
    pub fn string(s: impl Into<String>) -> JsonValue {
        JsonValue::String(s.into())
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Number(x as f64)
    }
}

impl From<bool> for JsonValue {
    fn from(x: bool) -> Self {
        JsonValue::Bool(x)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_string())
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(x) => {
                if !x.is_finite() {
                    write!(f, "null")
                } else if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Serializes a [`crate::runner::TrialSet`] to a JSON object with the full
/// per-trial records (the distribution data the paper says a flexible
/// medium should publish).
pub fn trial_set_to_json(set: &crate::runner::TrialSet) -> JsonValue {
    JsonValue::object([
        ("heuristic", JsonValue::string(set.heuristic.clone())),
        ("instance", JsonValue::string(set.instance.clone())),
        (
            "trials",
            JsonValue::array(set.trials.iter().map(|t| {
                JsonValue::object([
                    ("seed", JsonValue::from(t.seed as f64)),
                    ("cut", JsonValue::from(t.cut)),
                    ("balanced", JsonValue::from(t.balanced)),
                    ("seconds", JsonValue::from(t.elapsed.as_secs_f64())),
                ])
            })),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::Bool(true).to_string(), "true");
        assert_eq!(JsonValue::Number(3.0).to_string(), "3");
        assert_eq!(JsonValue::Number(3.25).to_string(), "3.25");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escaping() {
        assert_eq!(
            JsonValue::string("a\"b\\c\nd").to_string(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(JsonValue::string("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn containers() {
        let v = JsonValue::array([JsonValue::from(1u64), JsonValue::Null]);
        assert_eq!(v.to_string(), "[1,null]");
        let o = JsonValue::object([("b", JsonValue::from(2u64)), ("a", JsonValue::from(1u64))]);
        assert_eq!(o.to_string(), r#"{"a":1,"b":2}"#); // sorted keys
    }

    #[test]
    fn trial_set_export() {
        use crate::runner::{Trial, TrialSet};
        let set = TrialSet {
            heuristic: "H".into(),
            instance: "I".into(),
            trials: vec![Trial {
                seed: 1,
                cut: 10,
                balanced: true,
                elapsed: std::time::Duration::from_millis(250),
            }],
        };
        let json = trial_set_to_json(&set).to_string();
        assert!(json.contains(r#""heuristic":"H""#));
        assert!(json.contains(r#""cut":10"#));
        assert!(json.contains(r#""seconds":0.25"#));
    }
}
