//! The execution context threaded through every engine entry point.
//!
//! The paper's §3 reporting methodology is built on quality–runtime
//! tradeoffs — cost-at-time-τ distributions and best-so-far curves under
//! a wall-clock budget — which requires every engine to be stoppable: told
//! "you have τ milliseconds, hand back your best-so-far when they run
//! out". [`RunCtx`] is the single vehicle for that and for every other
//! cross-cutting execution concern:
//!
//! * an optional **deadline** ([`Instant`]) or relative budget,
//! * a shared atomic **cancellation token** ([`CancelToken`]) flippable
//!   from another thread,
//! * the **trace sink** receiving [`RunEvent`](hypart_trace::RunEvent)s,
//! * the reusable [`FmWorkspace`] refinement scratch arenas, the
//!   [`CoarsenWorkspace`](crate::CoarsenWorkspace) coarsening arenas, and
//!   the [`NLevelWorkspace`](crate::NLevelWorkspace) n-level arenas,
//! * the RNG **seed**.
//!
//! Engines take `&mut RunCtx` in their canonical `*_with` entry points;
//! the plain `run`/`refine` conveniences construct a default context
//! internally, so the two paths are byte-identical in behavior.
//!
//! # Budget checks
//!
//! Engines poll cooperatively through a [`BudgetProbe`] snapshot: at every
//! pass boundary via [`BudgetProbe::stop_now`], and every
//! [`RunCtx::move_check_interval`] moves inside a pass via
//! [`BudgetProbe::stop_every`] (so a long pass on a large instance cannot
//! overshoot the deadline by a full pass). On expiry or cancellation the
//! engine finishes its best-prefix rollback, emits
//! [`RunEvent::BudgetExhausted`](hypart_trace::RunEvent::BudgetExhausted),
//! and returns a well-formed outcome flagged with the [`StopReason`] —
//! never a panic, never a torn partition.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hypart_trace::{NullSink, StopReason, TraceSink};

use crate::audit::{AuditLevel, FaultPlan};
use crate::coarsen_ws::CoarsenWorkspace;
use crate::nlevel::NLevelWorkspace;
use crate::par::ParLane;
use crate::workspace::FmWorkspace;

/// Default number of moves between mid-pass deadline checks.
///
/// `Instant::now` costs tens of nanoseconds; a gain-container move costs
/// hundreds. Checking every 256 moves keeps the polling overhead well
/// under 0.1% while bounding deadline overshoot to a few microseconds of
/// work on any instance.
pub const DEFAULT_MOVE_CHECK_INTERVAL: usize = 256;

static NULL_SINK: NullSink = NullSink;

/// A shared, clonable cancellation flag.
///
/// Clones observe the same underlying flag, so a driver can hand a clone
/// to another thread (or a signal handler) and have every engine running
/// under the originating [`RunCtx`] stop cooperatively at its next budget
/// check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// The execution context for one partitioning run.
///
/// Bundles everything cross-cutting that used to be a separate entry-point
/// axis (`run` / `run_traced` / `run_traced_with` …): the trace sink, the
/// reusable workspace, the RNG seed, and the wall-clock budget /
/// cancellation controls. Construct with [`RunCtx::new`] and chain the
/// `with_*` builders:
///
/// ```
/// use std::time::Duration;
/// use hypart_core::RunCtx;
///
/// let mut ctx = RunCtx::new(42).with_budget(Duration::from_millis(50));
/// assert_eq!(ctx.seed, 42);
/// assert!(ctx.deadline().is_some());
/// assert!(ctx.probe().stop_now().is_none());
/// ```
pub struct RunCtx<'s> {
    /// Receiver of the run's [`RunEvent`](hypart_trace::RunEvent) stream.
    pub sink: &'s dyn TraceSink,
    /// Reusable refinement scratch arenas, re-targeted by each engine
    /// invocation.
    pub workspace: FmWorkspace,
    /// Reusable coarsening scratch arenas, re-pointed at each level.
    pub coarsen: CoarsenWorkspace,
    /// Reusable n-level scratch arenas (dynamic hypergraph view,
    /// memento stack, partition state, gain cache), re-pointed per run.
    pub nlevel: NLevelWorkspace,
    /// Per-lane scratch of the shared-memory parallel engine (empty and
    /// unused on the serial paths; grown on first parallel run).
    pub lanes: Vec<ParLane>,
    /// Base RNG seed for the run.
    pub seed: u64,
    deadline: Option<Instant>,
    cancel: CancelToken,
    check_moves: usize,
    audit: AuditLevel,
    fault_plan: FaultPlan,
}

impl std::fmt::Debug for RunCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunCtx")
            .field("seed", &self.seed)
            .field("deadline", &self.deadline)
            .field("cancel", &self.cancel)
            .field("check_moves", &self.check_moves)
            .field("audit", &self.audit)
            .field("sink_enabled", &self.sink.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for RunCtx<'static> {
    fn default() -> Self {
        RunCtx::new(0)
    }
}

impl<'s> RunCtx<'s> {
    /// A context with the given seed, no sink, no deadline, and a fresh
    /// workspace — the exact behavior of the plain `run` entry points.
    pub fn new(seed: u64) -> RunCtx<'static> {
        RunCtx {
            sink: &NULL_SINK,
            workspace: FmWorkspace::new(),
            coarsen: CoarsenWorkspace::new(),
            nlevel: NLevelWorkspace::new(),
            lanes: Vec::new(),
            seed,
            deadline: None,
            cancel: CancelToken::new(),
            check_moves: DEFAULT_MOVE_CHECK_INTERVAL,
            audit: AuditLevel::Off,
            fault_plan: FaultPlan::none(),
        }
    }

    /// Replaces the trace sink (rebinding the context lifetime to it).
    pub fn with_sink<'t>(self, sink: &'t dyn TraceSink) -> RunCtx<'t> {
        RunCtx {
            sink,
            workspace: self.workspace,
            coarsen: self.coarsen,
            nlevel: self.nlevel,
            lanes: self.lanes,
            seed: self.seed,
            deadline: self.deadline,
            cancel: self.cancel,
            check_moves: self.check_moves,
            audit: self.audit,
            fault_plan: self.fault_plan,
        }
    }

    /// Sets an absolute wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline to `budget` from now.
    #[must_use]
    pub fn with_budget(self, budget: Duration) -> Self {
        let deadline = Instant::now() + budget;
        self.with_deadline(deadline)
    }

    /// Shares an externally controlled cancellation token.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Replaces the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets how many moves elapse between mid-pass budget checks
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_move_check_interval(mut self, moves: usize) -> Self {
        self.check_moves = moves.max(1);
        self
    }

    /// Replaces the refinement workspace (e.g. to reuse arenas across
    /// contexts).
    #[must_use]
    pub fn with_workspace(mut self, workspace: FmWorkspace) -> Self {
        self.workspace = workspace;
        self
    }

    /// Replaces the coarsening workspace (e.g. to reuse arenas across
    /// contexts).
    #[must_use]
    pub fn with_coarsen_workspace(mut self, coarsen: CoarsenWorkspace) -> Self {
        self.coarsen = coarsen;
        self
    }

    /// Replaces the n-level workspace (e.g. to reuse arenas across
    /// contexts).
    #[must_use]
    pub fn with_nlevel_workspace(mut self, nlevel: NLevelWorkspace) -> Self {
        self.nlevel = nlevel;
        self
    }

    /// Sets how much independent invariant auditing runs (default:
    /// [`AuditLevel::Off`], which costs and emits nothing).
    #[must_use]
    pub fn with_audit(mut self, level: AuditLevel) -> Self {
        self.audit = level;
        self
    }

    /// Installs a deterministic fault-injection plan (test/bench-only).
    /// A plan with an early deadline tightens this context's deadline
    /// immediately.
    #[doc(hidden)]
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        if let Some(budget) = plan.injected_deadline() {
            let injected = Instant::now() + budget;
            self.deadline = Some(match self.deadline {
                Some(d) => d.min(injected),
                None => injected,
            });
        }
        self.fault_plan = plan;
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// A clone of the cancellation token, for handing to other threads.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The number of moves between mid-pass budget checks.
    pub fn move_check_interval(&self) -> usize {
        self.check_moves
    }

    /// The active audit level.
    pub fn audit(&self) -> AuditLevel {
        self.audit
    }

    /// The installed fault-injection plan (the empty plan by default).
    #[doc(hidden)]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Snapshots the budget controls into an owned probe, so engines can
    /// poll the deadline while holding `&mut` borrows of the workspace.
    pub fn probe(&self) -> BudgetProbe {
        BudgetProbe {
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            check_moves: self.check_moves,
            counter: 0,
            latched: None,
        }
    }

    /// A derived context for one unit of parallel work: same deadline,
    /// same (shared) cancellation token, check interval, audit level,
    /// and fault plan, but its own sink, seed, and fresh workspace.
    /// Parallel drivers give each start a child whose sink is a
    /// per-start buffer, preserving the sequential trace stream.
    pub fn child<'t>(&self, sink: &'t dyn TraceSink, seed: u64) -> RunCtx<'t> {
        RunCtx {
            sink,
            workspace: FmWorkspace::new(),
            coarsen: CoarsenWorkspace::new(),
            nlevel: NLevelWorkspace::new(),
            lanes: Vec::new(),
            seed,
            deadline: self.deadline,
            cancel: self.cancel.clone(),
            check_moves: self.check_moves,
            audit: self.audit,
            fault_plan: self.fault_plan.clone(),
        }
    }
}

/// An owned snapshot of a context's budget controls.
///
/// Engines extract one probe up front ([`RunCtx::probe`]) and poll it
/// during refinement; once a stop reason is observed it latches, so every
/// later poll returns the same reason without re-reading the clock.
#[derive(Clone, Debug)]
pub struct BudgetProbe {
    deadline: Option<Instant>,
    cancel: CancelToken,
    check_moves: usize,
    counter: usize,
    latched: Option<StopReason>,
}

impl BudgetProbe {
    /// A probe that never stops (no deadline, fresh token) — what the
    /// unbudgeted convenience entry points use.
    pub fn unbounded() -> Self {
        BudgetProbe {
            deadline: None,
            cancel: CancelToken::new(),
            check_moves: DEFAULT_MOVE_CHECK_INTERVAL,
            counter: 0,
            latched: None,
        }
    }

    /// Checks the budget right now: cancellation first, then the
    /// deadline. Returns the latched reason once stopped.
    pub fn stop_now(&mut self) -> Option<StopReason> {
        if self.latched.is_some() {
            return self.latched;
        }
        if self.cancel.is_cancelled() {
            self.latched = Some(StopReason::Cancelled);
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            self.latched = Some(StopReason::Deadline);
        }
        self.latched
    }

    /// Counter-gated check for hot loops: performs the real check only
    /// every `move_check_interval` calls (and returns the latched reason
    /// in between). Call once per move.
    pub fn stop_every(&mut self) -> Option<StopReason> {
        self.counter += 1;
        if self.counter >= self.check_moves {
            self.counter = 0;
            self.stop_now()
        } else {
            self.latched
        }
    }

    /// The stop reason observed so far, [`StopReason::Completed`] if the
    /// budget never ran out.
    pub fn reason(&self) -> StopReason {
        self.latched.unwrap_or(StopReason::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_never_stops() {
        let ctx = RunCtx::new(7);
        let mut probe = ctx.probe();
        assert_eq!(probe.stop_now(), None);
        for _ in 0..10_000 {
            assert_eq!(probe.stop_every(), None);
        }
        assert_eq!(probe.reason(), StopReason::Completed);
    }

    #[test]
    fn expired_deadline_latches() {
        let ctx = RunCtx::new(0).with_deadline(Instant::now() - Duration::from_millis(1));
        let mut probe = ctx.probe();
        assert_eq!(probe.stop_now(), Some(StopReason::Deadline));
        assert_eq!(probe.stop_now(), Some(StopReason::Deadline));
        assert_eq!(probe.reason(), StopReason::Deadline);
    }

    #[test]
    fn cancellation_wins_over_deadline_and_spreads_to_clones() {
        let ctx = RunCtx::new(0).with_deadline(Instant::now() - Duration::from_millis(1));
        let token = ctx.cancel_token();
        token.cancel();
        let mut probe = ctx.probe();
        assert_eq!(probe.stop_now(), Some(StopReason::Cancelled));
        let mut child_probe = ctx.child(&NullSink, 1).probe();
        assert_eq!(child_probe.stop_now(), Some(StopReason::Cancelled));
    }

    #[test]
    fn stop_every_is_counter_gated() {
        let ctx = RunCtx::new(0)
            .with_move_check_interval(4)
            .with_deadline(Instant::now() - Duration::from_millis(1));
        let mut probe = ctx.probe();
        assert_eq!(probe.stop_every(), None);
        assert_eq!(probe.stop_every(), None);
        assert_eq!(probe.stop_every(), None);
        assert_eq!(probe.stop_every(), Some(StopReason::Deadline));
        // Latched from here on, even between check boundaries.
        assert_eq!(probe.stop_every(), Some(StopReason::Deadline));
    }

    #[test]
    fn child_inherits_audit_and_fault_plan() {
        let ctx = RunCtx::new(1)
            .with_audit(AuditLevel::Paranoid)
            .with_fault_plan(FaultPlan::panic_in_start(7));
        assert_eq!(ctx.audit(), AuditLevel::Paranoid);
        let child = ctx.child(&NullSink, 2);
        assert_eq!(child.audit(), AuditLevel::Paranoid);
        assert!(child.fault_plan().should_panic_start(7));
        // with_sink keeps both as well.
        let rebound = ctx.with_sink(&NullSink);
        assert_eq!(rebound.audit(), AuditLevel::Paranoid);
        assert!(rebound.fault_plan().should_panic_start(7));
    }

    #[test]
    fn injected_early_deadline_tightens_budget() {
        let ctx =
            RunCtx::new(0).with_fault_plan(FaultPlan::early_deadline(Duration::from_millis(0)));
        let mut probe = ctx.probe();
        assert_eq!(probe.stop_now(), Some(StopReason::Deadline));
    }

    #[test]
    fn child_inherits_budget_but_not_workspace() {
        let deadline = Instant::now() + Duration::from_secs(3600);
        let ctx = RunCtx::new(5).with_deadline(deadline);
        let child = ctx.child(&NullSink, 9);
        assert_eq!(child.deadline(), Some(deadline));
        assert_eq!(child.seed, 9);
        assert_eq!(child.move_check_interval(), ctx.move_check_interval());
    }
}
