//! Fiduccia–Mattheyses bipartitioning with *explicit* implicit decisions.
//!
//! This crate is the primary contribution of the DAC-99 methodology paper
//! reproduction: a flat FM / CLIP-FM engine in which every underspecified
//! implementation decision of the original algorithm description is a
//! first-class, orthogonal configuration knob of [`FmConfig`]:
//!
//! * **tie-breaking** between equally good highest-gain buckets of the two
//!   partitions ([`TieBreak`]: `Away` / `Part0` / `Toward`);
//! * **zero-delta-gain updates** — re-insert a vertex whose delta gain is
//!   zero, or skip the update ([`ZeroDeltaPolicy`]: `All` / `Nonzero`);
//! * **gain bucket insertion order** ([`InsertionPolicy`]: `Lifo` / `Fifo` /
//!   `Random`);
//! * **pass-best tie-breaking** — which of several equal-cut prefixes to
//!   roll back to ([`PassBestRule`]);
//! * **selection rule** — classic FM gain or CLIP cumulative delta gain
//!   ([`SelectionRule`]);
//! * **corking controls** — exclude cells wider than the balance window
//!   from the gain container, and optional in-bucket lookahead.
//!
//! The engine reports detailed [`FmStats`] per run, including the corking
//! diagnostics of §2.3 of the paper.
//!
//! # Example
//!
//! ```
//! use hypart_core::{BalanceConstraint, FmConfig, FmPartitioner};
//! use hypart_hypergraph::HypergraphBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two triangles joined by one net: the optimal bisection cuts 1 net.
//! let mut b = HypergraphBuilder::new();
//! let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
//! b.add_net([v[0], v[1], v[2]], 1)?;
//! b.add_net([v[3], v[4], v[5]], 1)?;
//! b.add_net([v[2], v[3]], 1)?;
//! let h = b.build()?;
//!
//! let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.34);
//! let partitioner = FmPartitioner::new(FmConfig::lifo());
//! let outcome = partitioner.run(&h, &constraint, 42);
//! assert_eq!(outcome.cut, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod audit;
mod balance;
mod bisection;
pub mod brute;
mod coarsen_ws;
mod config;
mod ctx;
mod engine;
pub mod gain;
mod hierarchy;
mod initial;
pub mod nlevel;
pub mod objective;
mod par;
mod par_refine;
mod stats;
mod workspace;

pub use audit::{
    AuditError, AuditLevel, FaultPlan, PartitionAuditor, PARANOID_MOVE_AUDIT_MAX_VERTICES,
};
pub use balance::BalanceConstraint;
pub use bisection::{Bisection, BisectionError};
pub use coarsen_ws::{CandInfo, CoarseNet, CoarsenWorkspace, MatchProposal, SparseScores};
pub use config::{
    FmConfig, IllegalHeadPolicy, InitialSolution, InsertionPolicy, PassBestRule, SelectionRule,
    TieBreak, ZeroDeltaPolicy,
};
pub use ctx::{BudgetProbe, CancelToken, RunCtx, DEFAULT_MOVE_CHECK_INTERVAL};
pub use engine::{FmOutcome, FmPartitioner};
pub use hierarchy::{CoarseLevel, Hierarchy, SharedHierarchy};
pub use hypart_trace::StopReason;
pub use initial::generate_initial;
pub use nlevel::{
    refine_localized, select_contractions, ContractScratch, ContractionLimits, ContractionMemento,
    DynHypergraph, EngineKind, LocalSearchScratch, NLevelPartition, NLevelWorkspace,
};
pub use par::{derive_seed, ensure_lanes, resolve_threads, MoveProposal, ParLane};
pub use par_refine::{refine_rounds_parallel, ParRefineOutcome, PAR_REFINE_MAX_ROUNDS};
pub use stats::{FmStats, PassStats, CORKED_FRACTION};
pub use workspace::FmWorkspace;
