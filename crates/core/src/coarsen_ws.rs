//! Reusable coarsening scratch arenas.
//!
//! Coarsening runs once per level of every start of every V-cycle — the
//! same multiplicity as refinement — and its naive implementation spends
//! most of its time in allocator traffic: a fresh `HashMap` entry per
//! candidate cluster, two `Vec` clones per unique coarse net, and new
//! cluster arrays at every level. A [`CoarsenWorkspace`] owns all of that
//! scratch once, grow-only, exactly like [`crate::FmWorkspace`] does for
//! the gain containers:
//!
//! * the per-level clustering state (`cluster_of`, weights, fixed sides,
//!   restriction sides, the shuffled visit order);
//! * a dense [`SparseScores`] accumulator replacing the per-vertex
//!   connectivity `HashMap` (O(touched) reset via epoch stamps);
//! * a pin arena plus fingerprint tables replacing the
//!   `HashMap<Vec<u32>, NetId>` identical-net merge;
//! * a recycled [`HypergraphBuilder`] and [`CsrScratch`] so assembling the
//!   coarse graph reuses the builder's staging vectors and the CSR
//!   counting pass scratch.
//!
//! Workspaces are plain owned data — parallel drivers give each thread its
//! own, as they already do for [`crate::FmWorkspace`]. Reuse never changes
//! results: a fresh workspace is exactly what the plain entry points
//! construct internally.

use hypart_hypergraph::{CsrScratch, HypergraphBuilder, PartId, VertexId};

/// One interleaved (stamp, score) accumulator slot.
#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    score: f64,
    stamp: u32,
}

/// A dense score accumulator with O(touched) reset.
///
/// Functionally a `HashMap<slot, f64>` restricted to a known slot range:
/// [`add`](SparseScores::add) accumulates into a dense `f64` array, an
/// epoch stamp per slot distinguishes live entries from stale ones (a
/// zero-score sentinel would misclassify legitimate 0.0 scores, e.g. from
/// weight-0 nets), and [`begin`](SparseScores::begin) retires the whole
/// map by bumping the epoch instead of touching memory.
#[derive(Clone, Debug, Default)]
pub struct SparseScores {
    /// Stamp and score interleaved: accumulation is memory-bound random
    /// access, and a single 16-byte entry costs one cache line where
    /// split stamp/score arrays cost two.
    entries: Vec<Entry>,
    epoch: u32,
    touched: Vec<u32>,
}

impl SparseScores {
    /// Creates an empty accumulator; arenas grow on first use.
    pub fn new() -> Self {
        SparseScores::default()
    }

    /// Starts a fresh accumulation over `slots` slots: all previous
    /// entries become stale in O(1) (amortized — a full epoch wrap every
    /// 2³² begins costs one `stamp` clear).
    pub fn begin(&mut self, slots: usize) {
        if self.entries.len() < slots {
            self.entries.resize(slots, Entry::default());
        }
        if self.epoch == u32::MAX {
            for e in &mut self.entries {
                e.stamp = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Accumulates `value` into `slot`, first-touch-initializing it to
    /// zero and recording it in the touched list.
    #[inline]
    pub fn add(&mut self, slot: usize, value: f64) {
        let e = &mut self.entries[slot];
        if e.stamp != self.epoch {
            e.stamp = self.epoch;
            e.score = 0.0;
            self.touched.push(slot as u32);
        }
        e.score += value;
    }

    /// The accumulated score of `slot` (0.0 if untouched this epoch).
    #[inline]
    pub fn get(&self, slot: usize) -> f64 {
        let e = &self.entries[slot];
        if e.stamp == self.epoch {
            e.score
        } else {
            0.0
        }
    }

    /// The accumulated score of a slot known to be in
    /// [`touched`](SparseScores::touched) this epoch — skips the staleness
    /// check [`get`](SparseScores::get) pays.
    #[inline]
    pub fn get_touched(&self, slot: usize) -> f64 {
        debug_assert_eq!(self.entries[slot].stamp, self.epoch);
        self.entries[slot].score
    }

    /// The slots touched since [`begin`](SparseScores::begin), in
    /// first-touch order.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }
}

/// Packed admissibility record of one clustering candidate (a vertex or a
/// formed cluster): weight, inherited fixed side, and restriction side in
/// a single 16-byte load. The candidate scan is random-access bound;
/// reading one packed record per candidate replaces three scattered array
/// loads.
#[derive(Clone, Copy, Debug, Default)]
pub struct CandInfo {
    /// Vertex or accumulated cluster weight.
    pub weight: u64,
    /// Fixed-partition side (inherited by clusters from their members).
    pub fixed: Option<PartId>,
    /// Restriction side; meaningful only in restricted coarsening, where
    /// every vertex carries its current partition side.
    pub side: PartId,
}

/// One surviving coarse net staged in the workspace pin arena: its pin
/// range, accumulated weight, and the 64-bit fingerprint of its (sorted,
/// deduplicated) pin slice used to group identical nets.
#[derive(Clone, Copy, Debug)]
pub struct CoarseNet {
    /// Start of the pin slice in [`CoarsenWorkspace::pin_arena`].
    pub start: u32,
    /// Number of pins in the slice.
    pub len: u32,
    /// Net weight (accumulated across merged identical nets).
    pub weight: u32,
    /// FNV-1a fingerprint of the sorted pin slice.
    pub fp: u64,
}

impl CoarseNet {
    /// The pin slice range as `usize` bounds.
    #[inline]
    pub fn range(&self) -> std::ops::Range<usize> {
        let start = self.start as usize;
        start..start + self.len as usize
    }
}

/// One speculative matching decision computed by a parallel proposal
/// pass from a frozen snapshot of the clustering state.
///
/// `key` is the serial candidate key of the chosen partner — a cluster
/// id, or a vertex index tagged with the coarsener's pair bit — or one of
/// the two sentinels. The serial commit validates the proposal against
/// the live state and falls back to an exact serial scan when stale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MatchProposal {
    /// Chosen candidate key, [`NONE`](MatchProposal::NONE) for "stay a
    /// singleton", [`SKIP`](MatchProposal::SKIP) for "was already matched
    /// at snapshot time".
    pub key: u32,
}

impl MatchProposal {
    /// The vertex had no admissible candidate in the snapshot: it becomes
    /// a singleton cluster (unless the live state disagrees).
    pub const NONE: u32 = u32::MAX;
    /// The vertex was already matched when the snapshot was taken.
    pub const SKIP: u32 = u32::MAX - 1;
}

/// Reusable scratch arenas for the multilevel coarsener.
///
/// Carried on [`crate::RunCtx`] next to [`crate::FmWorkspace`]; the
/// coarsening entry points re-point the arenas at each level
/// ([`begin_level`](CoarsenWorkspace::begin_level)) instead of
/// reallocating them. All fields are public: the coarsening algorithm
/// lives in the multilevel crate and drives them directly.
#[derive(Clone, Debug, Default)]
pub struct CoarsenWorkspace {
    /// `cluster_of[v] = cluster id`, `u32::MAX` while unmatched.
    pub cluster_of: Vec<u32>,
    /// `slot_of[v]` = the connectivity slot pins of `v` accumulate into:
    /// `n + v` while unmatched, then the cluster slot (first-choice) or
    /// the dead slot `2n` (heavy-edge) once matched. Keeping this beside
    /// `cluster_of` makes the per-pin slot lookup a single indexed load.
    pub slot_of: Vec<u32>,
    /// Per-net matching score of the current fine graph, `-1.0` for nets
    /// excluded from matching (single-pin or over the size threshold).
    pub net_score: Vec<f64>,
    /// Packed admissibility record per fine vertex of the current level.
    pub vert_info: Vec<CandInfo>,
    /// Packed admissibility record per formed cluster.
    pub cluster_info: Vec<CandInfo>,
    /// Shuffled vertex visit order of the current level.
    pub order: Vec<VertexId>,
    /// Dense connectivity accumulator (slots: clusters then vertices).
    pub conn: SparseScores,
    /// Staged coarse pins of all surviving nets, back to back.
    pub pin_arena: Vec<VertexId>,
    /// One entry per surviving coarse net, in fine-net order.
    pub nets: Vec<CoarseNet>,
    /// Net indices sorted by (fingerprint, index) for duplicate grouping.
    pub sort_idx: Vec<u32>,
    /// `rep[i]` = index of the first net with identical pins to net `i`.
    pub rep: Vec<u32>,
    /// Recycled coarse-graph builder (left empty between levels).
    pub builder: HypergraphBuilder,
    /// Recycled CSR counting-pass scratch for the builder.
    pub csr: CsrScratch,
    /// Current-level restriction sides (V-cycle hierarchies only).
    pub restrict: Vec<PartId>,
    /// Next-level restriction sides, swapped with `restrict` per level.
    pub restrict_next: Vec<PartId>,
    /// Speculative matching proposals of the current window (parallel
    /// coarsening only; one entry per window position).
    pub match_props: Vec<MatchProposal>,
    /// Per-net dirty stamp: `net_stamp[e] == net_epoch` iff a vertex
    /// incident to net `e` changed cluster membership during the current
    /// matching window (parallel coarsening only). Epoch-retired like
    /// [`SparseScores`], so it is never cleared per window.
    pub net_stamp: Vec<u32>,
    /// Epoch of the current matching window for `net_stamp`.
    pub net_epoch: u32,
    /// Per-net staging offsets into `pin_arena` (parallel net staging
    /// only): net `e` stages its coarse pins at `net_off[e]..net_off[e+1]`.
    pub net_off: Vec<u32>,
}

impl CoarsenWorkspace {
    /// Creates an empty workspace. Arenas grow on first use and are kept
    /// from then on.
    pub fn new() -> Self {
        CoarsenWorkspace::default()
    }

    /// Re-points the per-level arenas at a level with `n` fine vertices:
    /// all vertices unmatched, no clusters formed, net staging empty.
    /// Keeps every allocation.
    pub fn begin_level(&mut self, n: usize) {
        self.cluster_of.clear();
        self.cluster_of.resize(n, u32::MAX);
        self.slot_of.clear();
        self.slot_of.extend(n as u32..2 * n as u32);
        self.net_score.clear();
        self.vert_info.clear();
        self.cluster_info.clear();
        self.pin_arena.clear();
        self.nets.clear();
        self.sort_idx.clear();
        self.rep.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_scores_accumulate_and_reset() {
        let mut s = SparseScores::new();
        s.begin(8);
        s.add(3, 1.5);
        s.add(3, 0.25);
        s.add(5, 2.0);
        assert_eq!(s.get(3), 1.75);
        assert_eq!(s.get(5), 2.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.touched(), &[3, 5]);
        // Next epoch: everything stale, allocation kept.
        s.begin(8);
        assert_eq!(s.get(3), 0.0);
        assert!(s.touched().is_empty());
    }

    #[test]
    fn sparse_scores_track_legitimate_zero() {
        // A zero accumulated value must still count as touched: a
        // zero-score sentinel would lose weight-0 net contributions.
        let mut s = SparseScores::new();
        s.begin(4);
        s.add(2, 0.0);
        assert_eq!(s.touched(), &[2]);
        assert_eq!(s.get(2), 0.0);
    }

    #[test]
    fn sparse_scores_survive_epoch_wrap() {
        let mut s = SparseScores::new();
        s.begin(4);
        s.add(1, 9.0);
        // Force the wrap path: the next begin() clears stamps and
        // restarts the epoch counter.
        s.epoch = u32::MAX;
        s.begin(4);
        assert_eq!(s.epoch, 1);
        assert_eq!(s.get(1), 0.0);
        s.add(1, 2.0);
        assert_eq!(s.get(1), 2.0);
    }

    #[test]
    fn sparse_scores_grow_between_epochs() {
        let mut s = SparseScores::new();
        s.begin(2);
        s.add(1, 1.0);
        s.begin(10);
        s.add(9, 3.0);
        assert_eq!(s.get(9), 3.0);
        assert_eq!(s.get(1), 0.0);
    }

    #[test]
    fn begin_level_resets_but_keeps_capacity() {
        let mut ws = CoarsenWorkspace::new();
        ws.begin_level(4);
        assert_eq!(ws.cluster_of, vec![u32::MAX; 4]);
        ws.cluster_of[2] = 0;
        ws.cluster_info.push(CandInfo {
            weight: 7,
            fixed: None,
            side: PartId::P0,
        });
        ws.pin_arena.push(VertexId::new(1));
        ws.nets.push(CoarseNet {
            start: 0,
            len: 1,
            weight: 1,
            fp: 0,
        });
        assert_eq!(ws.slot_of, vec![4, 5, 6, 7]);
        let cap = ws.cluster_of.capacity();
        ws.begin_level(3);
        assert_eq!(ws.cluster_of, vec![u32::MAX; 3]);
        assert_eq!(ws.slot_of, vec![3, 4, 5]);
        assert!(ws.cluster_info.is_empty());
        assert!(ws.pin_arena.is_empty());
        assert!(ws.nets.is_empty());
        assert_eq!(ws.cluster_of.capacity(), cap);
    }

    #[test]
    fn coarse_net_range() {
        let n = CoarseNet {
            start: 5,
            len: 3,
            weight: 2,
            fp: 42,
        };
        assert_eq!(n.range(), 5..8);
    }
}
