//! Partitioning objective functions.
//!
//! The engines optimize weighted net cut; the other classical objectives
//! from the paper's §1 (ratio cut \[Wei–Cheng\], scaled cost
//! \[Chan–Schlag–Zien\], absorption \[Sun–Sechen\]) are provided as
//! *evaluation* metrics so experiments can report them alongside cut size.

use crate::bisection::Bisection;
use hypart_hypergraph::PartId;

/// Weighted cut size: sum of weights of nets spanning both partitions.
/// This is the objective all engines in this workspace optimize.
pub fn cut_size(bisection: &Bisection<'_>) -> u64 {
    bisection.cut()
}

/// Ratio cut \[Wei–Cheng ICCAD-89\]: `cut / (w(P0) · w(P1))`.
///
/// Returns `f64::INFINITY` if either side has zero weight (the formulation
/// is undefined there, and such a "partitioning" is degenerate anyway).
pub fn ratio_cut(bisection: &Bisection<'_>) -> f64 {
    let w0 = bisection.part_weight(PartId::P0) as f64;
    let w1 = bisection.part_weight(PartId::P1) as f64;
    if w0 == 0.0 || w1 == 0.0 {
        return f64::INFINITY;
    }
    bisection.cut() as f64 / (w0 * w1)
}

/// Scaled cost \[Chan–Schlag–Zien TCAD-94\], specialized to 2 partitions:
/// `(1 / (n (k-1))) Σ_p cut_p / w(p)` with `cut_p = cut` for k = 2.
///
/// Returns `f64::INFINITY` for degenerate zero-weight sides.
pub fn scaled_cost(bisection: &Bisection<'_>) -> f64 {
    let n = bisection.graph().num_vertices() as f64;
    let cut = bisection.cut() as f64;
    let w0 = bisection.part_weight(PartId::P0) as f64;
    let w1 = bisection.part_weight(PartId::P1) as f64;
    if w0 == 0.0 || w1 == 0.0 || n == 0.0 {
        return f64::INFINITY;
    }
    (cut / w0 + cut / w1) / n
}

/// Absorption objective \[Sun–Sechen ICCAD-93\]: for each net and each
/// partition it touches, credit `(pins_in(e,p) − 1) / (|e| − 1)`; higher is
/// better (fully absorbed nets score 1). Single-pin nets contribute 1.
pub fn absorption(bisection: &Bisection<'_>) -> f64 {
    let graph = bisection.graph();
    let mut total = 0.0;
    for e in graph.nets() {
        let size = graph.net_size(e);
        if size <= 1 {
            total += 1.0;
            continue;
        }
        for p in PartId::ALL {
            let pins = bisection.pins_in(e, p);
            if pins > 0 {
                total += (pins - 1) as f64 / (size - 1) as f64;
            }
        }
    }
    total
}

/// Number of uncut nets (complement of the unweighted cut count).
pub fn uncut_nets(bisection: &Bisection<'_>) -> usize {
    let graph = bisection.graph();
    graph.nets().filter(|&e| !bisection.is_cut(e)).count()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::{Hypergraph, HypergraphBuilder, PartId};

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(2)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2], v[3]], 1).unwrap();
        b.add_net([v[2], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    fn split(h: &Hypergraph) -> Bisection<'_> {
        Bisection::new(h, vec![PartId::P0, PartId::P0, PartId::P1, PartId::P1]).unwrap()
    }

    #[test]
    fn cut_size_matches_bisection() {
        let h = sample();
        let b = split(&h);
        assert_eq!(cut_size(&b), 1);
    }

    #[test]
    fn ratio_cut_value() {
        let h = sample();
        let b = split(&h);
        // cut 1, weights 4 and 4.
        assert!((ratio_cut(&b) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_cut_degenerate_is_infinite() {
        let h = sample();
        let b = Bisection::new(&h, vec![PartId::P0; 4]).unwrap();
        assert!(ratio_cut(&b).is_infinite());
        assert!(scaled_cost(&b).is_infinite());
    }

    #[test]
    fn scaled_cost_value() {
        let h = sample();
        let b = split(&h);
        // (1/4 + 1/4) / 4 = 0.125
        assert!((scaled_cost(&b) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn absorption_counts_partial_absorption() {
        let h = sample();
        let b = split(&h);
        // net0 fully in P0: 1. net1: P0 has 1 pin (credit 0), P1 has 2 pins
        // (credit 1/2). net2 fully in P1: 1. Total 2.5.
        assert!((absorption(&b) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn absorption_is_maximal_when_nothing_is_cut() {
        let h = sample();
        let b = Bisection::new(&h, vec![PartId::P0; 4]).unwrap();
        assert!((absorption(&b) - 3.0).abs() < 1e-12);
        assert_eq!(uncut_nets(&b), 3);
    }

    #[test]
    fn uncut_nets_complements_cut() {
        let h = sample();
        let b = split(&h);
        assert_eq!(uncut_nets(&b), 2);
    }
}
