//! Rating-driven contraction selection for the n-level backend.
//!
//! Pairs are rated with the hMetis heavy-edge connectivity
//! `Σ_{e ∋ u,v} w(e) / (|e| − 1)` over the *current* (lazily shrunk) net
//! sizes, exactly the score the coarse-grained matcher uses — so the two
//! backends explore the same clustering landscape and differ only in
//! granularity. Selection proceeds in rounds: every active vertex names
//! its best admissible partner, the candidate pairs are sorted by
//! (rating, seeded hash) descending, and the winners are contracted **one
//! pair at a time**, each producing its own
//! [`ContractionMemento`](super::ContractionMemento).
//! Ratings refresh at round boundaries (each vertex contracts at most
//! once per round), a batch-lazy refresh that keeps selection
//! deterministic without a decrease-key priority queue; the memento
//! stack — and therefore the uncoarsening side — remains strictly
//! one-pair-at-a-time.

use super::dynhg::DynHypergraph;
use super::workspace::ContractScratch;
use crate::coarsen_ws::SparseScores;
use crate::ctx::BudgetProbe;
use hypart_hypergraph::{PartId, VertexId};

/// Admissibility limits of the contraction schedule, lifted from the
/// shared coarsening configuration so both backends obey the same caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractionLimits {
    /// Stop contracting once at most this many vertices remain.
    pub stop_size: usize,
    /// Nets larger than this are ignored when rating pairs.
    pub max_net_size: usize,
    /// Maximum aggregate weight of a contracted cluster.
    pub cluster_cap: u64,
}

/// SplitMix64: the seeded tie-break hash of the pair ordering.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runs the rating-driven contraction schedule on `d` until
/// `limits.stop_size` vertices remain, no admissible pair is left, or
/// `probe` fires. The memento stack lands in `scratch.mementos`, in
/// contraction order (undo it back to front); any previous contents of
/// the scratch are discarded.
///
/// `restriction`, when given, carries one partition side per vertex slot
/// and forbids contracting across sides — the n-level analogue of
/// restricted coarsening for V-cycles. Fixed vertices only merge with
/// free vertices or vertices fixed on the same side.
///
/// Deterministic: a pure function of `(d, limits, restriction, seed)`.
/// `scores` (the coarsening workspace's connectivity accumulator) and
/// `scratch` are borrowed arenas; reuse never changes results.
pub fn select_contractions(
    d: &mut DynHypergraph,
    limits: &ContractionLimits,
    restriction: Option<&[PartId]>,
    seed: u64,
    scores: &mut SparseScores,
    scratch: &mut ContractScratch,
    probe: &mut BudgetProbe,
) {
    let slots = d.num_slots();
    scratch.mementos.clear();
    scratch.matched.clear();
    scratch.matched.resize(slots, false);
    scratch.pairs.clear();

    loop {
        if d.num_active() <= limits.stop_size || probe.stop_now().is_some() {
            break;
        }
        scratch.pairs.clear();
        for slot in 0..slots {
            let u = VertexId::from_index(slot);
            if !d.is_active(u) {
                continue;
            }
            if let Some(pair) = best_partner(d, u, limits, restriction, seed, scores) {
                scratch.pairs.push(pair);
            }
        }
        if scratch.pairs.is_empty() {
            break;
        }
        scratch.pairs.sort_unstable_by(|a, b| b.cmp(a));
        for flag in scratch.matched.iter_mut() {
            *flag = false;
        }
        let mut progressed = false;
        for i in 0..scratch.pairs.len() {
            let (_, _, u_raw, v_raw) = scratch.pairs[i];
            if d.num_active() <= limits.stop_size {
                break;
            }
            let (u, v) = (VertexId::new(u_raw), VertexId::new(v_raw));
            if scratch.matched[u.index()]
                || scratch.matched[v.index()]
                || !d.is_active(u)
                || !d.is_active(v)
            {
                continue;
            }
            scratch.mementos.push(d.contract(u, v));
            scratch.matched[u.index()] = true;
            scratch.matched[v.index()] = true;
            progressed = true;
            if probe.stop_every().is_some() {
                return;
            }
        }
        if !progressed {
            break;
        }
    }
}

/// Rates every admissible partner of `u` and returns the winning pair
/// record, or `None` when `u` has no admissible partner this round.
fn best_partner(
    d: &DynHypergraph,
    u: VertexId,
    limits: &ContractionLimits,
    restriction: Option<&[PartId]>,
    seed: u64,
    scores: &mut SparseScores,
) -> Option<(u64, u64, u32, u32)> {
    scores.begin(d.num_slots());
    for &e in d.incident_nets(u) {
        let s = d.net_size(e) as usize;
        if s < 2 || s > limits.max_net_size {
            continue;
        }
        // Integer-scaled heavy-edge score: w(e) · 2¹⁶ / (|e| − 1). The
        // f64 accumulator holds it exactly (values stay far below 2⁵³).
        let contrib = ((u64::from(d.net_weight(e)) << 16) / (s as u64 - 1)) as f64;
        for &p in d.net_pins(e) {
            if p != u {
                scores.add(p.index(), contrib);
            }
        }
    }
    let wu = d.weight(u);
    let fu = d.fixed_part(u);
    let su = restriction.map(|r| r[u.index()]);
    let mut best: Option<(u64, u64, u32, u32)> = None;
    for i in 0..scores.touched().len() {
        let slot = scores.touched()[i] as usize;
        let p = VertexId::from_index(slot);
        if wu + d.weight(p) > limits.cluster_cap {
            continue;
        }
        let fp = d.fixed_part(p);
        if fu.is_some() && fp.is_some() && fu != fp {
            continue;
        }
        if let Some(side) = su {
            if restriction.is_some_and(|r| r[slot] != side) {
                continue;
            }
        }
        let rating = scores.get_touched(slot) as u64;
        let tie = splitmix64(seed ^ ((u.raw() as u64) << 32) ^ p.raw() as u64);
        let cand = (rating, tie, u.raw(), p.raw());
        if best.as_ref().is_none_or(|b| cand > *b) {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ctx::RunCtx;
    use hypart_hypergraph::HypergraphBuilder;

    fn clusters(groups: usize, size: usize) -> hypart_hypergraph::Hypergraph {
        let mut b = HypergraphBuilder::new();
        let mut all = Vec::new();
        for _ in 0..groups {
            let g: Vec<_> = (0..size).map(|_| b.add_vertex(1)).collect();
            for w in g.windows(2) {
                b.add_net([w[0], w[1]], 3).unwrap();
            }
            all.push(g[0]);
        }
        for w in all.windows(2) {
            b.add_net([w[0], w[1]], 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn contracts_to_stop_size_and_undoes_cleanly() {
        let h = clusters(4, 8);
        let mut d = DynHypergraph::new(&h);
        let limits = ContractionLimits {
            stop_size: 4,
            max_net_size: 300,
            cluster_cap: 16,
        };
        let ctx = RunCtx::new(7);
        let mut probe = ctx.probe();
        let mut scores = SparseScores::new();
        let mut scratch = ContractScratch::new();
        select_contractions(
            &mut d,
            &limits,
            None,
            7,
            &mut scores,
            &mut scratch,
            &mut probe,
        );
        assert!(d.num_active() <= 8, "should contract well below 32");
        while let Some(m) = scratch.mementos.pop() {
            d.uncontract(&m);
        }
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn deterministic_per_seed_and_across_scratch_reuse() {
        let h = clusters(3, 6);
        let limits = ContractionLimits {
            stop_size: 3,
            max_net_size: 300,
            cluster_cap: 12,
        };
        let run = |seed: u64, scratch: &mut ContractScratch| {
            let mut d = DynHypergraph::new(&h);
            let ctx = RunCtx::new(seed);
            let mut probe = ctx.probe();
            let mut scores = SparseScores::new();
            select_contractions(
                &mut d,
                &limits,
                None,
                seed,
                &mut scores,
                scratch,
                &mut probe,
            );
            scratch.mementos.clone()
        };
        let mut fresh = ContractScratch::new();
        let first = run(5, &mut fresh);
        // Rerun on the dirty scratch: identical schedule.
        let again = run(5, &mut fresh);
        assert_eq!(first, again);
        let mut other = ContractScratch::new();
        assert_eq!(first, run(5, &mut other));
    }

    #[test]
    fn cluster_cap_is_respected() {
        let h = clusters(2, 10);
        let mut d = DynHypergraph::new(&h);
        let limits = ContractionLimits {
            stop_size: 1,
            max_net_size: 300,
            cluster_cap: 4,
        };
        let ctx = RunCtx::new(1);
        let mut probe = ctx.probe();
        let mut scores = SparseScores::new();
        let mut scratch = ContractScratch::new();
        select_contractions(
            &mut d,
            &limits,
            None,
            1,
            &mut scores,
            &mut scratch,
            &mut probe,
        );
        for slot in 0..d.num_slots() {
            let v = VertexId::from_index(slot);
            if d.is_active(v) {
                assert!(d.weight(v) <= 4, "aggregate over the cap");
            }
        }
    }
}
