//! Incremental k-way partition state over a [`DynHypergraph`], plus the
//! localized FM refiner that runs after every uncontraction.
//!
//! [`NLevelPartition`] owns plain vectors (labels, per-net part counts,
//! part weights, weighted cut) and takes the hypergraph view as a method
//! argument, so the driver can interleave `partition.begin_uncontract`
//! (bookkeeping, *before* the undo) with `d.uncontract` (the structural
//! undo) without borrow conflicts. The vectors are grow-only:
//! [`NLevelPartition::reset`] rebuilds the state for a new run inside
//! the existing allocations, which is how the state recycles through
//! [`crate::NLevelWorkspace`].
//!
//! [`refine_localized`] is the n-level refinement step: it seeds the
//! gain containers with only the two vertices released by the current
//! uncontraction, then grows the active set along boundary nets as moves
//! land. Any balance-admissible move is applied — adverse (negative
//! gain) moves included, the classic FM hill-climb — with every move
//! logged and the exploration tail rolled back to the best
//! `(violation, cut)` prefix on exit. Vertices move at most once per
//! invocation and the search stalls out a bounded number of moves after
//! the last improvement, so termination is structural.
//!
//! # The exact gain cache
//!
//! Refinement runs ~n times per n-level pass, and the dominant cost used
//! to be gain *recomputation*: every activation rescanned all nets of
//! every neighbor of every applied move. The refiner now keeps an exact
//! per-vertex gain row in its [`LocalSearchScratch`]: filled once per
//! vertex per invocation (one pass over the vertex's nets, via
//! [`NLevelPartition::gain_all`]) and delta-maintained in O(affected
//! pins) per applied move by
//! [`NLevelPartition::move_vertex_cached`] — and only pins of nets whose
//! pre-move part counts sit next to the uncut threshold are touched at
//! all; nets that stay deeply cut contribute zero delta and are skipped
//! without a pin scan. The invariant is strict equality: a cached row
//! always matches what [`NLevelPartition::gain`] would recompute, so
//! caching cannot change any decision (debug builds assert this at every
//! pop). Between invocations — across uncontractions in particular — the
//! whole cache retires in O(1) via an epoch bump, so no per-uncontract
//! invalidation is needed.

use super::dynhg::{ContractionMemento, DynHypergraph};
use super::workspace::LocalSearchScratch;
use crate::config::InsertionPolicy;
use crate::ctx::RunCtx;
use hypart_hypergraph::{NetId, VertexId};
use hypart_trace::RunEvent;
use rand::Rng;

/// Nets larger than this do not propagate activation during localized
/// refinement (the same "skip huge nets" cutoff the matcher uses).
const ACTIVATION_NET_SIZE_CAP: u32 = 300;

/// Incremental k-way partition state for the n-level backend.
///
/// Tracks, per net, how many of its *active* pins lie in each part
/// (`counts`, a flat `nets × k` table), plus part weights and the
/// weighted cut, all updated in O(affected pins) per move or
/// uncontraction. Labels live in the full slot range of the underlying
/// [`DynHypergraph`]; inactive slots keep the label of their survivor so
/// uncontraction is label inheritance plus a constant-size count patch.
///
/// The default value is an empty placeholder (`k == 0`) for workspace
/// storage; [`NLevelPartition::reset`] turns it into a live state.
#[derive(Clone, Debug, Default)]
pub struct NLevelPartition {
    part: Vec<u16>,
    counts: Vec<u32>,
    part_weight: Vec<u64>,
    cut: u64,
    k: usize,
}

impl NLevelPartition {
    /// Builds the state from per-slot labels (< `k`); only active slots
    /// of `d` are read, inactive slots are carried verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is shorter than `d.num_slots()` or `k == 0`.
    pub fn new(d: &DynHypergraph, k: usize, labels: Vec<u16>) -> NLevelPartition {
        let mut p = NLevelPartition {
            part: labels,
            ..NLevelPartition::default()
        };
        p.rebuild(d, k);
        p
    }

    /// Rebuilds the state in place from per-slot labels, keeping all
    /// allocations — the recycling twin of [`NLevelPartition::new`],
    /// with identical results.
    ///
    /// # Panics
    ///
    /// Panics if `labels` is shorter than `d.num_slots()` or `k == 0`.
    pub fn reset(&mut self, d: &DynHypergraph, k: usize, labels: &[u16]) {
        self.part.clear();
        self.part.extend_from_slice(labels);
        self.rebuild(d, k);
    }

    /// Recomputes counts, part weights, and cut from `self.part`.
    fn rebuild(&mut self, d: &DynHypergraph, k: usize) {
        assert!(k > 0, "k must be positive");
        assert!(self.part.len() >= d.num_slots(), "label per slot required");
        self.k = k;
        let nets = d.num_nets();
        self.counts.clear();
        self.counts.resize(nets * k, 0);
        self.part_weight.clear();
        self.part_weight.resize(k, 0);
        for slot in 0..d.num_slots() {
            let v = VertexId::from_index(slot);
            if d.is_active(v) {
                self.part_weight[self.part[slot] as usize] += d.weight(v);
            }
        }
        self.cut = 0;
        for e in 0..nets {
            let net = NetId::from_index(e);
            let row = &mut self.counts[e * k..(e + 1) * k];
            for &p in d.net_pins(net) {
                row[self.part[p.index()] as usize] += 1;
            }
            let size = d.net_size(net);
            if size >= 2 && row.iter().all(|&c| c != size) {
                self.cut += u64::from(d.net_weight(net));
            }
        }
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.k
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> usize {
        self.part[v.index()] as usize
    }

    /// Weight of part `p`.
    #[inline]
    pub fn part_weight(&self, p: usize) -> u64 {
        self.part_weight[p]
    }

    /// Current weighted cut (incrementally maintained).
    #[inline]
    pub fn cut(&self) -> u64 {
        self.cut
    }

    /// The per-slot label vector.
    #[inline]
    pub fn assignment(&self) -> &[u16] {
        &self.part
    }

    /// Consumes the state, returning the per-slot label vector.
    pub fn into_assignment(self) -> Vec<u16> {
        self.part
    }

    /// Sum over parts of the distance outside `[lower, upper]`.
    pub fn total_violation(&self, lower: u64, upper: u64) -> u64 {
        self.part_weight
            .iter()
            .map(|&w| w.saturating_sub(upper) + lower.saturating_sub(w))
            .sum()
    }

    /// Cut delta of moving `v` to part `to`, negated (positive = cut
    /// improves). `v` must be active in `d`.
    pub fn gain(&self, d: &DynHypergraph, v: VertexId, to: usize) -> i64 {
        let from = self.part_of(v);
        debug_assert_ne!(from, to);
        let mut gain = 0i64;
        for &e in d.incident_nets(v) {
            let size = d.net_size(e);
            if size < 2 {
                continue;
            }
            let row = e.index() * self.k;
            let w = i64::from(d.net_weight(e));
            debug_assert!(self.counts[row + from] >= 1);
            // v sits in `from`, so counts[from] ≥ 1 and no *other* part
            // can hold all pins: uncut before iff counts[from] == size,
            // uncut after iff counts[to] + 1 == size.
            let was_cut = self.counts[row + from] != size;
            let now_cut = self.counts[row + to] + 1 != size;
            gain += w * (i64::from(was_cut) - i64::from(now_cut));
        }
        gain
    }

    /// Fills `out` (length `k`) with the gain of moving `v` to every
    /// part, in one pass over `v`'s nets — the cache-row filler, exactly
    /// equivalent to `k − 1` calls of [`NLevelPartition::gain`]. The
    /// entry at `v`'s own part is set to zero (it is meaningless).
    pub(crate) fn gain_all(&self, d: &DynHypergraph, v: VertexId, out: &mut [i64]) {
        debug_assert_eq!(out.len(), self.k);
        let from = self.part_of(v);
        for g in out.iter_mut() {
            *g = 0;
        }
        for &e in d.incident_nets(v) {
            let size = d.net_size(e);
            if size < 2 {
                continue;
            }
            let row = e.index() * self.k;
            let w = i64::from(d.net_weight(e));
            debug_assert!(self.counts[row + from] >= 1);
            if self.counts[row + from] == size {
                // Uncut before the move: every departure cuts it.
                for g in out.iter_mut() {
                    *g -= w;
                }
            }
            for (t, g) in out.iter_mut().enumerate() {
                if self.counts[row + t] + 1 == size {
                    *g += w;
                }
            }
        }
        out[from] = 0;
    }

    /// Moves `v` to part `to`, updating counts, weights and cut. Returns
    /// the realized gain (cut before minus cut after).
    pub fn move_vertex(&mut self, d: &DynHypergraph, v: VertexId, to: usize) -> i64 {
        let from = self.part_of(v);
        debug_assert_ne!(from, to);
        let before = self.cut;
        for &e in d.incident_nets(v) {
            let size = d.net_size(e);
            let row = e.index() * self.k;
            debug_assert!(self.counts[row + from] >= 1);
            self.counts[row + from] -= 1;
            self.counts[row + to] += 1;
            if size < 2 {
                continue;
            }
            let w = u64::from(d.net_weight(e));
            let was_cut = self.counts[row + from] + 1 != size;
            let now_cut = self.counts[row + to] != size;
            if was_cut && !now_cut {
                self.cut -= w;
            } else if !was_cut && now_cut {
                self.cut += w;
            }
        }
        let weight = d.weight(v);
        self.part_weight[from] -= weight;
        self.part_weight[to] += weight;
        self.part[v.index()] = to as u16;
        before as i64 - self.cut as i64
    }

    /// [`NLevelPartition::move_vertex`] plus exact maintenance of every
    /// live gain row in `cache`: for each net of `v`, the four possible
    /// per-target deltas are derived from the pre-move part counts, and
    /// the net's pins are scanned **only when at least one delta is
    /// nonzero** — i.e. only when the net is uncut or one pin away from
    /// uncut on the affected sides. Deeply cut nets (the common case on
    /// large mixed nets) cost O(1).
    ///
    /// `v`'s own row is left stale; callers lock `v` immediately, so it
    /// is never read again this invocation.
    pub(crate) fn move_vertex_cached(
        &mut self,
        d: &DynHypergraph,
        v: VertexId,
        to: usize,
        cache: &mut LocalSearchScratch,
    ) -> i64 {
        let from = self.part_of(v);
        debug_assert_ne!(from, to);
        debug_assert_eq!(cache.k, self.k);
        let k = self.k;
        let before = self.cut;
        for &e in d.incident_nets(v) {
            let size = d.net_size(e);
            let row = e.index() * k;
            let c_from = self.counts[row + from];
            let c_to = self.counts[row + to];
            debug_assert!(c_from >= 1);
            self.counts[row + from] = c_from - 1;
            self.counts[row + to] = c_to + 1;
            if size < 2 {
                continue;
            }
            let w = i64::from(d.net_weight(e));
            let was_cut = c_from != size;
            let now_cut = c_to + 1 != size;
            if was_cut && !now_cut {
                self.cut -= w as u64;
            } else if !was_cut && now_cut {
                self.cut += w as u64;
            }
            // Gain-row deltas for a pin y in part p with target t,
            // derived from gain contribution w·([cₜ+1 = s] − [cₚ = s]):
            //   t = from: the count there dropped by one,
            //   t = to:   the count there rose by one,
            //   p = from / p = to: the "was uncut" term flips for every
            //   target alike.
            let tf = w * (i64::from(c_from == size) - i64::from(c_from + 1 == size));
            let tt = w * (i64::from(c_to + 2 == size) - i64::from(c_to + 1 == size));
            let cf = -w * (i64::from(c_from - 1 == size) - i64::from(c_from == size));
            let ct = -w * (i64::from(c_to + 1 == size) - i64::from(c_to == size));
            if tf == 0 && tt == 0 && cf == 0 && ct == 0 {
                continue;
            }
            for &y in d.net_pins(e) {
                if y == v || !cache.is_cached(y) {
                    continue;
                }
                let p = self.part[y.index()] as usize;
                let grow = y.index() * k;
                if tf != 0 && p != from {
                    cache.gains[grow + from] += tf;
                }
                if tt != 0 && p != to {
                    cache.gains[grow + to] += tt;
                }
                let common = if p == from {
                    cf
                } else if p == to {
                    ct
                } else {
                    0
                };
                if common != 0 {
                    for t in 0..k {
                        if t != p {
                            cache.gains[grow + t] += common;
                        }
                    }
                }
            }
        }
        let weight = d.weight(v);
        self.part_weight[from] -= weight;
        self.part_weight[to] += weight;
        self.part[v.index()] = to as u16;
        before as i64 - self.cut as i64
    }

    /// Partition-side bookkeeping for undoing `m`. **Call before**
    /// [`DynHypergraph::uncontract`]: the case-A detection reads the
    /// parked tail pin, which the structural undo consumes.
    ///
    /// `v` inherits `u`'s label, so the cut never changes: case-A nets
    /// regain a pin in a part they already touch (via `u`), case-B nets
    /// swap which vertex represents the cluster without changing counts.
    pub fn begin_uncontract(&mut self, d: &DynHypergraph, m: &ContractionMemento) {
        let p = self.part[m.u.index()] as usize;
        self.part[m.v.index()] = p as u16;
        for &e in d.incident_nets(m.v) {
            if d.tail_pin(e) == Some(m.v) {
                self.counts[e.index() * self.k + p] += 1;
            }
        }
        // Weights: `uncontract` restores d's vertex weights; the part
        // totals are unchanged because u's aggregate already counted v.
    }

    /// Recomputes the weighted cut from scratch (audit paths only).
    pub fn recompute_cut(&self, d: &DynHypergraph) -> u64 {
        let mut cut = 0u64;
        for e in 0..d.num_nets() {
            let net = NetId::from_index(e);
            let size = d.net_size(net);
            if size < 2 {
                continue;
            }
            let row = &self.counts[e * self.k..(e + 1) * self.k];
            if row.iter().all(|&c| c != size) {
                cut += u64::from(d.net_weight(net));
            }
        }
        cut
    }
}

/// A localized search stalls out after this many consecutive applied
/// moves without a new best (violation, cut): adverse moves may explore
/// past a local minimum, but only this far.
const STALL_LIMIT: usize = 64;

/// Fills `v`'s gain row in `scratch` if it is stale this invocation.
fn ensure_cached(
    partition: &NLevelPartition,
    d: &DynHypergraph,
    scratch: &mut LocalSearchScratch,
    v: VertexId,
) {
    if !scratch.is_cached(v) {
        let row = v.index() * scratch.k;
        let k = scratch.k;
        partition.gain_all(d, v, &mut scratch.gains[row..row + k]);
        scratch.gain_stamp[v.index()] = scratch.epoch;
    }
}

/// Localized FM refinement around one uncontraction.
///
/// Seeds the gain containers with `seeds` (normally the released pair
/// `[u, v]`), then repeatedly applies the best pending move that keeps
/// the balance window `[lower, upper]` satisfiable — **including
/// adverse (negative-gain) moves**, the classic FM hill-climb. Every
/// applied move is logged; whenever the lexicographic potential
/// (total violation, cut) reaches a new strict minimum the log position
/// is recorded, and on exit everything after the best prefix is rolled
/// back. Neighbors of every moved vertex (through nets of size ≤ 300)
/// are activated, so improvement ripples outward exactly as far as it
/// keeps paying. Vertices move at most once per invocation, and the
/// search stops a fixed stall limit (64 moves) after the last
/// improvement, so termination is structural.
///
/// All gains come from the exact cache in `scratch` (see the module
/// docs): one row fill per touched vertex, O(affected pins) deltas per
/// applied move, identical values to recomputation — reusing a dirty
/// scratch never changes results, it only skips allocations.
///
/// Returns the number of *retained* moves (the best prefix); emits
/// [`RunEvent::Move`] per applied move on enabled sinks (like a flat FM
/// pass, rolled-back tail moves included).
#[allow(clippy::too_many_arguments)]
pub fn refine_localized<R: Rng>(
    partition: &mut NLevelPartition,
    d: &DynHypergraph,
    seeds: &[VertexId],
    lower: u64,
    upper: u64,
    insertion: InsertionPolicy,
    rng: &mut R,
    scratch: &mut LocalSearchScratch,
    ctx: &mut RunCtx<'_>,
) -> usize {
    let k = partition.num_parts();
    let sink = ctx.sink;
    let traced = sink.is_enabled();
    let containers = ctx
        .workspace
        .containers(k * k, d.num_slots(), d.gain_bound());
    scratch.begin(d.num_slots(), k);
    let mut best_len = 0usize;
    let mut cur_viol = partition.total_violation(lower, upper);
    let mut best_viol = cur_viol;
    let mut best_cut = partition.cut();

    for &s in seeds {
        if !d.is_active(s) || d.fixed_part(s).is_some() {
            continue;
        }
        let from = partition.part_of(s);
        if containers[from * k + ((from + 1) % k)].contains(s) {
            continue;
        }
        ensure_cached(partition, d, scratch, s);
        for to in 0..k {
            if to != from {
                let g = scratch.gain_of(s, to);
                containers[from * k + to].insert(s, g, insertion, rng);
            }
        }
    }

    loop {
        // Highest-keyed head across all (from, to) containers.
        let mut best: Option<(i64, usize, VertexId)> = None;
        for (idx, container) in containers.iter_mut().enumerate() {
            if idx / k == idx % k {
                continue;
            }
            let Some(key) = container.descend_max() else {
                continue;
            };
            if best.is_some_and(|(g, _, _)| key <= g) {
                continue;
            }
            if let Some(head) = container.head_of(key) {
                best = Some((key, idx, head));
            }
        }
        let Some((key, idx, v)) = best else { break };
        let (from, to) = (idx / k, idx % k);
        if partition.part_of(v) != from {
            // Stale residue from an earlier move; drop it.
            containers[idx].remove(v);
            continue;
        }
        let true_gain = scratch.gain_of(v, to);
        debug_assert_eq!(
            true_gain,
            partition.gain(d, v, to),
            "gain cache drifted from recomputation"
        );
        if true_gain != key {
            containers[idx].update(v, true_gain, insertion, rng);
            continue;
        }
        let w = d.weight(v);
        let from_after = partition.part_weight(from) - w;
        let to_after = partition.part_weight(to) + w;
        let inside = from_after >= lower && to_after <= upper;
        let viol_before = window_violation(partition.part_weight(from), lower, upper)
            + window_violation(partition.part_weight(to), lower, upper);
        let viol_after =
            window_violation(from_after, lower, upper) + window_violation(to_after, lower, upper);
        // Balance admissibility only — adverse gains are welcome, the
        // best-prefix rollback keeps them honest.
        let admissible = (inside && viol_after <= viol_before) || viol_after < viol_before;
        if !admissible {
            for t in 0..k {
                if t != from {
                    containers[from * k + t].remove(v);
                }
            }
            continue;
        }

        for t in 0..k {
            if t != from {
                containers[from * k + t].remove(v);
            }
        }
        let realized = partition.move_vertex_cached(d, v, to, scratch);
        debug_assert_eq!(realized, true_gain);
        scratch.lock(v);
        scratch.log.push((v, from));
        if traced {
            sink.emit(RunEvent::Move {
                vertex: v.raw() as u64,
                gain: realized,
                cut: partition.cut(),
            });
        }
        cur_viol = cur_viol + viol_after - viol_before;
        if (cur_viol, partition.cut()) < (best_viol, best_cut) {
            best_viol = cur_viol;
            best_cut = partition.cut();
            best_len = scratch.log.len();
        } else if scratch.log.len() - best_len > STALL_LIMIT {
            break;
        }

        // Refresh / activate the boundary around the move. Cached rows
        // are already move-exact; only first-touch vertices pay a fill.
        for &e in d.incident_nets(v) {
            if d.net_size(e) > ACTIVATION_NET_SIZE_CAP {
                continue;
            }
            for &y in d.net_pins(e) {
                if y == v || scratch.is_locked(y) || d.fixed_part(y).is_some() {
                    continue;
                }
                let s = partition.part_of(y);
                let present = containers[s * k + ((s + 1) % k)].contains(y);
                ensure_cached(partition, d, scratch, y);
                for t in 0..k {
                    if t == s {
                        continue;
                    }
                    let g = scratch.gain_of(y, t);
                    if present {
                        containers[s * k + t].update(y, g, insertion, rng);
                    } else {
                        containers[s * k + t].insert(y, g, insertion, rng);
                    }
                }
            }
        }
    }

    // Roll the exploration tail back to the best prefix. The replayed
    // inverse moves restore counts, weights, and cut exactly (plain
    // moves: the cache is dead after the loop, the next invocation's
    // epoch bump retires it wholesale).
    while scratch.log.len() > best_len {
        let Some((v, origin)) = scratch.log.pop() else {
            break;
        };
        partition.move_vertex(d, v, origin);
    }
    debug_assert_eq!(partition.cut(), best_cut);
    debug_assert_eq!(partition.total_violation(lower, upper), best_viol);
    best_len
}

#[inline]
fn window_violation(w: u64, lower: u64, upper: u64) -> u64 {
    w.saturating_sub(upper) + lower.saturating_sub(w)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::{Hypergraph, HypergraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Two triangles joined by one bridge net (the dynhg toy).
    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 2).unwrap();
        b.add_net([v[3], v[4], v[5]], 2).unwrap();
        b.add_net([v[2], v[3]], 1).unwrap();
        b.add_net([v[0], v[1]], 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn new_counts_weights_and_cut_agree_with_recompute() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        let p = NLevelPartition::new(&d, 2, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(p.cut(), 1);
        assert_eq!(p.part_weight(0), 3);
        assert_eq!(p.part_weight(1), 3);
        assert_eq!(p.recompute_cut(&d), p.cut());
    }

    #[test]
    fn reset_matches_new_after_dirtying() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        let mut p = NLevelPartition::new(&d, 2, vec![0, 1, 0, 1, 0, 1]);
        p.move_vertex(&d, VertexId::new(1), 0);
        // Reset onto fresh labels: indistinguishable from a fresh build.
        p.reset(&d, 2, &[0, 0, 0, 1, 1, 1]);
        let q = NLevelPartition::new(&d, 2, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(p.cut(), q.cut());
        assert_eq!(p.part_weight(0), q.part_weight(0));
        assert_eq!(p.assignment(), q.assignment());
        assert_eq!(p.recompute_cut(&d), p.cut());
    }

    #[test]
    fn move_vertex_updates_cut_incrementally() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        let mut p = NLevelPartition::new(&d, 2, vec![0, 0, 0, 1, 1, 1]);
        let v2 = VertexId::new(2);
        let g = p.gain(&d, v2, 1);
        let realized = p.move_vertex(&d, v2, 1);
        assert_eq!(g, realized);
        assert_eq!(p.recompute_cut(&d), p.cut());
        assert_eq!(p.part_weight(0), 2);
        assert_eq!(p.part_weight(1), 4);
    }

    #[test]
    fn gain_all_matches_per_target_gain() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        let p = NLevelPartition::new(&d, 3, vec![0, 1, 0, 2, 1, 2]);
        let mut row = [0i64; 3];
        for slot in 0..6 {
            let v = VertexId::new(slot);
            p.gain_all(&d, v, &mut row);
            for (t, &g) in row.iter().enumerate() {
                if t != p.part_of(v) {
                    assert_eq!(g, p.gain(&d, v, t), "v{slot} → {t}");
                }
            }
        }
    }

    #[test]
    fn cached_moves_keep_every_live_row_exact() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        let mut p = NLevelPartition::new(&d, 2, vec![0, 0, 1, 1, 0, 1]);
        let mut s = LocalSearchScratch::new();
        s.begin(d.num_slots(), 2);
        for slot in 0..6 {
            ensure_cached(&p, &d, &mut s, VertexId::new(slot));
        }
        // A few moves, each followed by a full cache/recompute audit of
        // every vertex except the ones already moved.
        let mut moved = Vec::new();
        for (slot, to) in [(2usize, 0usize), (4, 1), (0, 1)] {
            let v = VertexId::from_index(slot);
            let to = if p.part_of(v) == to { 1 - to } else { to };
            let expected = p.gain(&d, v, to);
            assert_eq!(s.gain_of(v, to), expected);
            let realized = p.move_vertex_cached(&d, v, to, &mut s);
            assert_eq!(realized, expected);
            moved.push(slot);
            assert_eq!(p.recompute_cut(&d), p.cut());
            for y in 0..6 {
                if moved.contains(&y) {
                    continue;
                }
                let yv = VertexId::from_index(y);
                let t = 1 - p.part_of(yv);
                assert_eq!(s.gain_of(yv, t), p.gain(&d, yv, t), "row {y} drifted");
            }
        }
    }

    #[test]
    fn uncontraction_preserves_cut_and_weights() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        let (a, b) = (VertexId::new(0), VertexId::new(1));
        let m = d.contract(a, b);
        let mut labels = vec![0u16; 6];
        labels[3] = 1;
        labels[4] = 1;
        labels[5] = 1;
        let mut p = NLevelPartition::new(&d, 2, labels);
        let cut_before = p.cut();
        let weights_before = (p.part_weight(0), p.part_weight(1));
        p.begin_uncontract(&d, &m);
        d.uncontract(&m);
        assert_eq!(p.cut(), cut_before);
        assert_eq!(p.recompute_cut(&d), p.cut());
        assert_eq!((p.part_weight(0), p.part_weight(1)), weights_before);
        assert_eq!(p.part_of(b), p.part_of(a));
    }

    #[test]
    fn localized_refinement_moves_the_bridge_vertex() {
        // Put v2 on the wrong side: net 0 (w=2) cut, net 2 (w=1) uncut.
        // Moving v2 from part 1 to part 0 gains 2 - 1 = 1.
        let h = toy();
        let d = DynHypergraph::new(&h);
        let mut p = NLevelPartition::new(&d, 2, vec![0, 0, 1, 1, 1, 1]);
        assert_eq!(p.cut(), 2);
        let mut ctx = RunCtx::new(11);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut scratch = LocalSearchScratch::new();
        let moves = refine_localized(
            &mut p,
            &d,
            &[VertexId::new(2)],
            1,
            5,
            InsertionPolicy::Lifo,
            &mut rng,
            &mut scratch,
            &mut ctx,
        );
        assert!(moves >= 1);
        assert_eq!(p.part_of(VertexId::new(2)), 0);
        assert_eq!(p.cut(), 1);
        assert_eq!(p.recompute_cut(&d), p.cut());
    }

    #[test]
    fn zero_gain_moves_only_repair_balance() {
        let h = toy();
        let d = DynHypergraph::new(&h);
        // Perfectly balanced optimum: no move should apply.
        let mut p = NLevelPartition::new(&d, 2, vec![0, 0, 0, 1, 1, 1]);
        let mut ctx = RunCtx::new(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut scratch = LocalSearchScratch::new();
        let seeds: Vec<_> = (0..6).map(VertexId::new).collect();
        let moves = refine_localized(
            &mut p,
            &d,
            &seeds,
            2,
            4,
            InsertionPolicy::Lifo,
            &mut rng,
            &mut scratch,
            &mut ctx,
        );
        assert_eq!(moves, 0);
        assert_eq!(p.cut(), 1);
    }
}
