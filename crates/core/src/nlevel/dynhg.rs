//! The incrementally mutated hypergraph view of the n-level backend.
//!
//! A [`DynHypergraph`] is built once from an immutable CSR
//! [`Hypergraph`] and then mutated in place by single-pair contractions:
//! no per-level CSR rebuild ever happens. Each net keeps its pins in one
//! array with an *active prefix* — contracting `v` into `u` either swaps
//! `v` out to the disabled tail (when `u` is already on the net) or
//! overwrites `v`'s slot with `u` (when it is not). This is the **lazy
//! net shrinking** discipline: nets that become identical after a
//! contraction are *not* merged and keep their separate weights, because
//! a merge could not be undone by a constant-size memento.
//!
//! Undo correctness rests on strict LIFO: when a
//! [`ContractionMemento`] is undone, every later contraction has already
//! been undone, so each affected net is in exactly the state the matching
//! contraction left it in. In that state, `v` sits in the first disabled
//! slot of every net it was swapped out of (case A), and `u` occupies
//! `v`'s old slot on every net it was substituted into (case B) — which
//! is why the memento needs no per-net bookkeeping at all.
//!
//! # Storage: slab adjacency arenas
//!
//! Both adjacency directions live in flat slabs instead of per-entity
//! `Vec`s, so the contract/uncontract hot loop walks contiguous memory
//! and a reused view re-fills arenas instead of reallocating:
//!
//! * **pins** never change length (contraction permutes the active
//!   prefix in place), so they are a plain CSR pair
//!   (`pin_off`/`pin_data`) with the active-prefix length in `size` and
//!   the original length recoverable from the offsets;
//! * **incidence lists** grow (case-B contractions append to the
//!   survivor), so each vertex holds an 8-byte segment handle
//!   (offset + length) into one grow-only slab. When a segment fills, it
//!   moves to a power-of-two-capacity segment — taken from a per-class
//!   free list of previously parked segments when possible, carved off
//!   the slab end otherwise — and the old segment is parked on its
//!   class's free list for reuse.
//!
//! [`DynHypergraph::reset_from_csr`] re-points every arena at a new (or
//! the same) source graph while keeping all allocations, which is what
//! makes multi-start / V-cycle / recursive-bisection reuse through
//! [`crate::NLevelWorkspace`] allocation-free in steady state.

use hypart_hypergraph::{Hypergraph, NetId, PartId, VertexId};

/// The constant-size undo record of one contraction `(u ← v)`.
///
/// Valid only under strict LIFO undo (see the module docs): the memento
/// stores which pair was merged, how many nets `u` was on before the
/// merge (everything appended past that length came from case-B
/// substitutions and is truncated on undo), and `u`'s fixed side before
/// it inherited `v`'s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractionMemento {
    /// The surviving vertex.
    pub u: VertexId,
    /// The vertex contracted into `u` (inactive until undone).
    pub v: VertexId,
    /// Length of `u`'s incidence list before the contraction.
    u_nets_len: u32,
    /// `u`'s fixed side before inheriting `v`'s.
    u_fixed_before: Option<PartId>,
}

/// An 8-byte handle to one vertex's incidence segment in the slab.
#[derive(Clone, Copy, Debug, Default)]
struct Seg {
    /// Start of the segment in the incidence slab.
    off: u32,
    /// Current logical length (capacity lives in `inc_cap`).
    len: u32,
}

/// Number of power-of-two segment size classes (covers every `u32`
/// capacity).
const NUM_CLASSES: usize = 33;

/// An incrementally mutated hypergraph view supporting single-pair
/// [`contract`](DynHypergraph::contract) /
/// [`uncontract`](DynHypergraph::uncontract) with lazy net shrinking.
///
/// Vertex and net ids are those of the source [`Hypergraph`]; inactive
/// vertices keep their slots so a memento stack can reactivate them.
#[derive(Clone, Debug, Default)]
pub struct DynHypergraph {
    /// `true` while the vertex is a live (representative) vertex.
    active: Vec<bool>,
    /// Aggregated cluster weight per live vertex.
    weight: Vec<u64>,
    /// Inherited fixed side per live vertex.
    fixed: Vec<Option<PartId>>,
    /// Per-vertex incidence segment handle. Case-B contractions append
    /// to the survivor's segment; undo truncates back to the recorded
    /// length.
    inc_seg: Vec<Seg>,
    /// Per-vertex segment capacity (initial segments are laid out tight;
    /// grown segments have power-of-two capacity).
    inc_cap: Vec<u32>,
    /// The incidence slab all segments live in.
    inc_data: Vec<NetId>,
    /// Per-class free lists of parked segment offsets; class `c` holds
    /// segments with capacity ≥ 2ᶜ, reused as capacity-2ᶜ segments.
    free: Vec<Vec<u32>>,
    /// CSR offsets of the pin slab (`num_nets + 1` entries). Pin arrays
    /// never change length, so the original size of net `e` is
    /// `pin_off[e+1] - pin_off[e]`.
    pin_off: Vec<u32>,
    /// Pin slab; `pin_data[pin_off[e]..][..size[e]]` is the active
    /// prefix of net `e`.
    pin_data: Vec<VertexId>,
    /// Active pin count per net.
    size: Vec<u32>,
    /// Net weights (never change: identical nets are not merged).
    net_weight: Vec<u32>,
    /// Number of active vertices.
    num_active: usize,
    /// Total weight of all nets — a safe gain bound for any aggregate.
    total_net_weight: u64,
}

impl DynHypergraph {
    /// Builds the dynamic view of `h` with every vertex active.
    pub fn new(h: &Hypergraph) -> DynHypergraph {
        let mut d = DynHypergraph::default();
        d.reset_from_csr(h);
        d
    }

    /// Re-points the view at `h` with every vertex active, keeping all
    /// slab and table allocations. A reset view is indistinguishable
    /// from a fresh [`DynHypergraph::new`] — reuse across multi-starts,
    /// V-cycles, and recursive-bisection subproblems never changes
    /// results, only removes allocation cost.
    pub fn reset_from_csr(&mut self, h: &Hypergraph) {
        let n = h.num_vertices();
        self.active.clear();
        self.active.resize(n, true);
        self.weight.clear();
        self.weight.extend(h.vertices().map(|v| h.vertex_weight(v)));
        self.fixed.clear();
        self.fixed.extend(h.vertices().map(|v| h.fixed_part(v)));
        self.inc_seg.clear();
        self.inc_cap.clear();
        self.inc_data.clear();
        if self.free.len() < NUM_CLASSES {
            self.free.resize_with(NUM_CLASSES, Vec::new);
        }
        for f in &mut self.free {
            f.clear();
        }
        for v in h.vertices() {
            let nets = h.vertex_nets(v);
            let off = self.inc_data.len() as u32;
            self.inc_data.extend_from_slice(nets);
            self.inc_seg.push(Seg {
                off,
                len: nets.len() as u32,
            });
            self.inc_cap.push(nets.len() as u32);
        }
        self.pin_off.clear();
        self.pin_data.clear();
        self.size.clear();
        self.net_weight.clear();
        self.pin_off.push(0);
        self.total_net_weight = 0;
        for e in h.nets() {
            let p = h.net_pins(e);
            self.pin_data.extend_from_slice(p);
            self.pin_off.push(self.pin_data.len() as u32);
            self.size.push(p.len() as u32);
            self.net_weight.push(h.net_weight(e));
            self.total_net_weight += u64::from(h.net_weight(e));
        }
        self.num_active = n;
    }

    /// Number of vertex slots (the source graph's vertex count).
    pub fn num_slots(&self) -> usize {
        self.active.len()
    }

    /// Number of currently active vertices.
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Number of net slots (the source graph's net count).
    pub fn num_nets(&self) -> usize {
        self.size.len()
    }

    /// Number of nets whose active prefix still spans two or more pins.
    pub fn num_live_nets(&self) -> usize {
        self.size.iter().filter(|&&s| s >= 2).count()
    }

    /// `true` while `v` is a live representative.
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active[v.index()]
    }

    /// Aggregated cluster weight of `v`.
    pub fn weight(&self, v: VertexId) -> u64 {
        self.weight[v.index()]
    }

    /// Inherited fixed side of `v`.
    pub fn fixed_part(&self, v: VertexId) -> Option<PartId> {
        self.fixed[v.index()]
    }

    /// Weight of net `e`.
    pub fn net_weight(&self, e: NetId) -> u32 {
        self.net_weight[e.index()]
    }

    /// Active pin count of net `e`.
    pub fn net_size(&self, e: NetId) -> u32 {
        self.size[e.index()]
    }

    /// Original (full) pin count of net `e`.
    #[inline]
    fn orig_size(&self, e: usize) -> usize {
        (self.pin_off[e + 1] - self.pin_off[e]) as usize
    }

    /// The active pins of net `e` (prefix order is an implementation
    /// detail: contractions permute it).
    pub fn net_pins(&self, e: NetId) -> &[VertexId] {
        let i = e.index();
        let off = self.pin_off[i] as usize;
        &self.pin_data[off..off + self.size[i] as usize]
    }

    /// The nets `v` currently sits on (only meaningful while active).
    pub fn incident_nets(&self, v: VertexId) -> &[NetId] {
        let seg = self.inc_seg[v.index()];
        &self.inc_data[seg.off as usize..(seg.off + seg.len) as usize]
    }

    /// The first disabled pin of `e`, if any. At LIFO-undo time this is
    /// the vertex the matching case-A contraction swapped out, which is
    /// how callers distinguish case A from case B *before* undoing.
    pub fn tail_pin(&self, e: NetId) -> Option<VertexId> {
        let i = e.index();
        let s = self.size[i] as usize;
        if s < self.orig_size(i) {
            Some(self.pin_data[self.pin_off[i] as usize + s])
        } else {
            None
        }
    }

    /// Total weight of all nets — a safe bound on any vertex's gain in
    /// any partition of this view, however aggregated its clusters are.
    pub fn gain_bound(&self) -> i64 {
        i64::try_from(self.total_net_weight)
            .unwrap_or(i64::MAX)
            .max(1)
    }

    /// Appends `e` to `u`'s incidence segment, migrating to a larger
    /// power-of-two segment (free list first, slab end otherwise) when
    /// the current one is full. The outgrown segment is parked on its
    /// class's free list.
    fn inc_push(&mut self, u: usize, e: NetId) {
        let Seg { off, len } = self.inc_seg[u];
        let cap = self.inc_cap[u];
        if len == cap {
            let new_cap = (cap + 1).next_power_of_two().max(4);
            let class = new_cap.trailing_zeros() as usize;
            let new_off = match self.free[class].pop() {
                Some(o) => o,
                None => {
                    let o = self.inc_data.len() as u32;
                    self.inc_data
                        .resize(self.inc_data.len() + new_cap as usize, NetId::new(u32::MAX));
                    o
                }
            };
            self.inc_data
                .copy_within(off as usize..(off + len) as usize, new_off as usize);
            if cap > 0 {
                // floor(log2(cap)): a parked segment serves any request
                // of its floor class or below.
                let old_class = (31 - cap.leading_zeros()) as usize;
                self.free[old_class].push(off);
            }
            self.inc_seg[u] = Seg { off: new_off, len };
            self.inc_cap[u] = new_cap;
        }
        let seg = self.inc_seg[u];
        self.inc_data[(seg.off + seg.len) as usize] = e;
        self.inc_seg[u].len = seg.len + 1;
    }

    /// Contracts `v` into `u`: `u` absorbs `v`'s weight, nets, and (if
    /// `u` was free) fixed side; `v` becomes inactive. Returns the
    /// memento undoing the step.
    ///
    /// For each net of `v`: if `u` is already on the net, `v` is swapped
    /// to the disabled tail (case A — the net shrinks lazily); otherwise
    /// `v`'s slot is overwritten with `u` and the net is appended to
    /// `u`'s incidence list (case B).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `u != v`, both are active, and their fixed
    /// sides are compatible.
    pub fn contract(&mut self, u: VertexId, v: VertexId) -> ContractionMemento {
        debug_assert_ne!(u, v, "self-contraction");
        debug_assert!(self.active[u.index()] && self.active[v.index()]);
        debug_assert!(
            self.fixed[u.index()].is_none()
                || self.fixed[v.index()].is_none()
                || self.fixed[u.index()] == self.fixed[v.index()],
            "contracting across fixed sides"
        );
        let memento = ContractionMemento {
            u,
            v,
            u_nets_len: self.inc_seg[u.index()].len,
            u_fixed_before: self.fixed[u.index()],
        };
        // v's segment is never touched while contracting into u, so
        // indexed iteration stays valid across slab growth.
        let v_seg = self.inc_seg[v.index()];
        for i in 0..v_seg.len {
            let e = self.inc_data[(v_seg.off + i) as usize];
            let ei = e.index();
            let s = self.size[ei] as usize;
            let off = self.pin_off[ei] as usize;
            let pins = &mut self.pin_data[off..off + s];
            let mut pos_v = usize::MAX;
            let mut has_u = false;
            for (j, &p) in pins.iter().enumerate() {
                if p == v {
                    pos_v = j;
                } else if p == u {
                    has_u = true;
                }
            }
            debug_assert_ne!(pos_v, usize::MAX, "v not on its own net");
            if has_u {
                pins.swap(pos_v, s - 1);
                self.size[ei] = (s - 1) as u32;
            } else {
                pins[pos_v] = u;
                self.inc_push(u.index(), e);
            }
        }
        self.weight[u.index()] += self.weight[v.index()];
        if self.fixed[u.index()].is_none() {
            self.fixed[u.index()] = self.fixed[v.index()];
        }
        self.active[v.index()] = false;
        self.num_active -= 1;
        memento
    }

    /// Undoes the **most recent not-yet-undone** contraction. Mementos
    /// must be undone in strict LIFO order; nothing checks this beyond
    /// debug assertions, and out-of-order undo corrupts the view.
    pub fn uncontract(&mut self, m: &ContractionMemento) {
        let (u, v) = (m.u, m.v);
        debug_assert!(self.active[u.index()] && !self.active[v.index()]);
        // Drop every net case B appended to u during this contraction
        // (the segment keeps its capacity, like a `Vec` truncate).
        self.inc_seg[u.index()].len = m.u_nets_len;
        let v_seg = self.inc_seg[v.index()];
        for i in 0..v_seg.len {
            let e = self.inc_data[(v_seg.off + i) as usize];
            let ei = e.index();
            let s = self.size[ei] as usize;
            let off = self.pin_off[ei] as usize;
            if s < self.orig_size(ei) && self.pin_data[off + s] == v {
                // Case A: v sits in the first disabled slot — regrow the
                // active prefix over it. (The prefix order is permuted
                // relative to the original CSR, which is fine: no
                // consumer depends on pin order.)
                self.size[ei] = (s + 1) as u32;
            } else {
                // Case B: u stands in v's old slot; give it back.
                let pins = &mut self.pin_data[off..off + s];
                match pins.iter().position(|&p| p == u) {
                    Some(j) => pins[j] = v,
                    None => debug_assert!(false, "undo: u missing from net prefix"),
                }
            }
        }
        self.weight[u.index()] -= self.weight[v.index()];
        self.fixed[u.index()] = m.u_fixed_before;
        self.active[v.index()] = true;
        self.num_active += 1;
    }

    /// Materializes the active residual as a standalone [`Hypergraph`]
    /// (for initial partitioning on the coarsest state), filling the
    /// caller's map buffers instead of allocating: `dense_of` maps
    /// original slots to dense coarse ids (`u32::MAX` for inactive
    /// slots), `slot_of` maps dense ids back. Nets with fewer than two
    /// active pins are dropped; fixed sides are carried over.
    ///
    /// # Panics
    ///
    /// Panics if the residual violates builder invariants, which would
    /// indicate memento corruption (duplicated pins on one net).
    pub fn materialize_into(
        &self,
        dense_of: &mut Vec<u32>,
        slot_of: &mut Vec<VertexId>,
    ) -> Hypergraph {
        let mut builder = hypart_hypergraph::HypergraphBuilder::new();
        dense_of.clear();
        dense_of.resize(self.active.len(), u32::MAX);
        slot_of.clear();
        for (i, &alive) in self.active.iter().enumerate() {
            if alive {
                let dense = builder.add_vertex(self.weight[i]);
                dense_of[i] = dense.raw();
                slot_of.push(VertexId::from_index(i));
                if let Some(p) = self.fixed[i] {
                    builder.fix_vertex(dense, p);
                }
            }
        }
        for e in 0..self.size.len() {
            let s = self.size[e] as usize;
            if s < 2 {
                continue;
            }
            let off = self.pin_off[e] as usize;
            let pins = self.pin_data[off..off + s]
                .iter()
                .map(|p| VertexId::new(dense_of[p.index()]));
            if let Err(err) = builder.add_net(pins, self.net_weight[e]) {
                unreachable!("residual net {e} violates builder invariants: {err}");
            }
        }
        match builder.build() {
            Ok(h) => h,
            Err(err) => unreachable!("residual graph is structurally valid: {err}"),
        }
    }

    /// [`materialize_into`](DynHypergraph::materialize_into) with owned
    /// map allocation: returns the graph and the dense-id →
    /// original-slot map. Reuse paths should prefer `materialize_into`
    /// with workspace buffers.
    pub fn materialize(&self) -> (Hypergraph, Vec<VertexId>) {
        let mut dense_of = Vec::new();
        let mut slot_of = Vec::new();
        let h = self.materialize_into(&mut dense_of, &mut slot_of);
        (h, slot_of)
    }

    /// Checks that this view matches the source graph it was built from —
    /// every vertex active with its original weight, fixed side, and
    /// incidence count, every net at full size. Test/audit support for
    /// the contract → uncontract twin property.
    ///
    /// Debug and test builds additionally verify the full pin and
    /// incidence *sets* (a clone-and-sort comparison per entity);
    /// release builds stop at the O(n + m) structural checks so
    /// paranoid-audit production runs don't pay O(n log n) time and
    /// per-vertex allocations here.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate_pristine(&self, h: &Hypergraph) -> Result<(), String> {
        if self.num_active != h.num_vertices() {
            return Err(format!(
                "active count {} != vertex count {}",
                self.num_active,
                h.num_vertices()
            ));
        }
        for v in h.vertices() {
            let i = v.index();
            if !self.active[i] {
                return Err(format!("vertex {i} inactive"));
            }
            if self.weight[i] != h.vertex_weight(v) {
                return Err(format!("vertex {i} weight drifted"));
            }
            if self.fixed[i] != h.fixed_part(v) {
                return Err(format!("vertex {i} fixed side drifted"));
            }
            if self.inc_seg[i].len as usize != h.vertex_nets(v).len() {
                return Err(format!("vertex {i} incidence length drifted"));
            }
        }
        for e in h.nets() {
            let i = e.index();
            if self.size[i] as usize != h.net_size(e) {
                return Err(format!("net {i} size drifted"));
            }
        }
        if !cfg!(debug_assertions) {
            return Ok(());
        }
        // Full set verification, debug/test builds only. The two scratch
        // buffers are reused across entities.
        let mut mine: Vec<u32> = Vec::new();
        let mut orig: Vec<u32> = Vec::new();
        for v in h.vertices() {
            let i = v.index();
            mine.clear();
            mine.extend(self.incident_nets(v).iter().map(|e| e.raw()));
            orig.clear();
            orig.extend(h.vertex_nets(v).iter().map(|e| e.raw()));
            mine.sort_unstable();
            orig.sort_unstable();
            if mine != orig {
                return Err(format!("vertex {i} incidence drifted"));
            }
        }
        for e in h.nets() {
            let i = e.index();
            mine.clear();
            mine.extend(self.net_pins(e).iter().map(|p| p.raw()));
            orig.clear();
            orig.extend(h.net_pins(e).iter().map(|p| p.raw()));
            mine.sort_unstable();
            orig.sort_unstable();
            if mine != orig {
                return Err(format!("net {i} pin set drifted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // v0-v1-v2 triangle net, v2-v3 bridge, v3-v4-v5 triangle net.
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 1).unwrap();
        b.add_net([v[3], v[4], v[5]], 2).unwrap();
        b.add_net([v[2], v[3]], 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn contract_then_uncontract_restores_everything() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        let mut stack = vec![
            d.contract(VertexId::new(0), VertexId::new(1)),
            d.contract(VertexId::new(2), VertexId::new(3)),
            d.contract(VertexId::new(0), VertexId::new(2)),
            d.contract(VertexId::new(4), VertexId::new(5)),
        ];
        assert_eq!(d.num_active(), 2);
        while let Some(m) = stack.pop() {
            d.uncontract(&m);
        }
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn case_a_shrinks_shared_nets_lazily() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        // v0 and v1 share net 0: case A, the net shrinks in place.
        let m = d.contract(VertexId::new(0), VertexId::new(1));
        assert_eq!(d.net_size(NetId::new(0)), 2);
        assert_eq!(d.tail_pin(NetId::new(0)), Some(VertexId::new(1)));
        assert_eq!(d.weight(VertexId::new(0)), 2);
        d.uncontract(&m);
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn case_b_substitutes_and_extends_incidence() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        // v0 is not on net 2 (v2-v3); contracting v2 into v0 substitutes.
        let before = d.incident_nets(VertexId::new(0)).len();
        let m = d.contract(VertexId::new(0), VertexId::new(2));
        assert_eq!(d.net_size(NetId::new(2)), 2);
        assert!(d.net_pins(NetId::new(2)).contains(&VertexId::new(0)));
        assert_eq!(d.incident_nets(VertexId::new(0)).len(), before + 1);
        d.uncontract(&m);
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn materialize_drops_dead_nets_and_maps_back() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        d.contract(VertexId::new(0), VertexId::new(1));
        d.contract(VertexId::new(0), VertexId::new(2));
        // Net 0 is now single-pin; nets 1 and 2 survive.
        let (ch, slot_of) = d.materialize();
        assert_eq!(ch.num_vertices(), 4);
        assert_eq!(ch.num_nets(), 2);
        assert_eq!(slot_of[0], VertexId::new(0));
        assert_eq!(ch.vertex_weight(VertexId::new(0)), 3);
        assert_eq!(ch.total_vertex_weight(), h.total_vertex_weight());
    }

    #[test]
    fn fixed_sides_are_inherited_and_restored() {
        let h = toy().with_fixed(VertexId::new(1), Some(PartId::P1));
        let mut d = DynHypergraph::new(&h);
        let m = d.contract(VertexId::new(0), VertexId::new(1));
        assert_eq!(d.fixed_part(VertexId::new(0)), Some(PartId::P1));
        d.uncontract(&m);
        assert_eq!(d.fixed_part(VertexId::new(0)), None);
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn reset_from_csr_recycles_into_a_pristine_view() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        // Dirty the view thoroughly (grown segments, parked tails) …
        d.contract(VertexId::new(0), VertexId::new(2));
        d.contract(VertexId::new(0), VertexId::new(3));
        d.contract(VertexId::new(4), VertexId::new(5));
        // … then reset onto the same graph: indistinguishable from new.
        d.reset_from_csr(&h);
        d.validate_pristine(&h).unwrap();
        assert_eq!(d.num_active(), 6);
        // And onto a different graph entirely.
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(2)).collect();
        b.add_net([v[0], v[1], v[2]], 5).unwrap();
        let h2 = b.build().unwrap();
        d.reset_from_csr(&h2);
        d.validate_pristine(&h2).unwrap();
        assert_eq!(d.num_slots(), 3);
        assert_eq!(d.gain_bound(), 5);
    }

    #[test]
    fn segment_growth_reuses_parked_segments() {
        // A star: contracting every leaf into the hub forces repeated
        // case-B growth of the hub's segment through several classes.
        let mut b = HypergraphBuilder::new();
        let hub = b.add_vertex(1);
        let leaves: Vec<_> = (0..40).map(|_| b.add_vertex(1)).collect();
        // Hub starts with one net; each leaf brings a private net pair.
        for w in leaves.windows(2) {
            b.add_net([w[0], w[1]], 1).unwrap();
        }
        b.add_net([hub, leaves[0]], 1).unwrap();
        let h = b.build().unwrap();
        let mut d = DynHypergraph::new(&h);
        let mut stack = Vec::new();
        for &leaf in &leaves {
            stack.push(d.contract(hub, leaf));
        }
        assert_eq!(d.num_active(), 1);
        while let Some(m) = stack.pop() {
            d.uncontract(&m);
        }
        d.validate_pristine(&h).unwrap();
    }
}
