//! The incrementally mutated hypergraph view of the n-level backend.
//!
//! A [`DynHypergraph`] is built once from an immutable CSR
//! [`Hypergraph`] and then mutated in place by single-pair contractions:
//! no per-level CSR rebuild ever happens. Each net keeps its pins in one
//! array with an *active prefix* — contracting `v` into `u` either swaps
//! `v` out to the disabled tail (when `u` is already on the net) or
//! overwrites `v`'s slot with `u` (when it is not). This is the **lazy
//! net shrinking** discipline: nets that become identical after a
//! contraction are *not* merged and keep their separate weights, because
//! a merge could not be undone by a constant-size memento.
//!
//! Undo correctness rests on strict LIFO: when a
//! [`ContractionMemento`] is undone, every later contraction has already
//! been undone, so each affected net is in exactly the state the matching
//! contraction left it in. In that state, `v` sits in the first disabled
//! slot of every net it was swapped out of (case A), and `u` occupies
//! `v`'s old slot on every net it was substituted into (case B) — which
//! is why the memento needs no per-net bookkeeping at all.

use hypart_hypergraph::{Hypergraph, NetId, PartId, VertexId};

/// The constant-size undo record of one contraction `(u ← v)`.
///
/// Valid only under strict LIFO undo (see the module docs): the memento
/// stores which pair was merged, how many nets `u` was on before the
/// merge (everything appended past that length came from case-B
/// substitutions and is truncated on undo), and `u`'s fixed side before
/// it inherited `v`'s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContractionMemento {
    /// The surviving vertex.
    pub u: VertexId,
    /// The vertex contracted into `u` (inactive until undone).
    pub v: VertexId,
    /// Length of `u`'s incidence list before the contraction.
    u_nets_len: u32,
    /// `u`'s fixed side before inheriting `v`'s.
    u_fixed_before: Option<PartId>,
}

/// An incrementally mutated hypergraph view supporting single-pair
/// [`contract`](DynHypergraph::contract) /
/// [`uncontract`](DynHypergraph::uncontract) with lazy net shrinking.
///
/// Vertex and net ids are those of the source [`Hypergraph`]; inactive
/// vertices keep their slots so a memento stack can reactivate them.
#[derive(Clone, Debug)]
pub struct DynHypergraph {
    /// `true` while the vertex is a live (representative) vertex.
    active: Vec<bool>,
    /// Aggregated cluster weight per live vertex.
    weight: Vec<u64>,
    /// Inherited fixed side per live vertex.
    fixed: Vec<Option<PartId>>,
    /// Nets each vertex is currently on. Case-B contractions append to
    /// the survivor's list; undo truncates back to the recorded length.
    incident: Vec<Vec<NetId>>,
    /// Pin arrays; `pins[e][..size[e]]` is the active prefix.
    pins: Vec<Vec<VertexId>>,
    /// Active pin count per net.
    size: Vec<u32>,
    /// Net weights (never change: identical nets are not merged).
    net_weight: Vec<u32>,
    /// Number of active vertices.
    num_active: usize,
    /// Total weight of all nets — a safe gain bound for any aggregate.
    total_net_weight: u64,
}

impl DynHypergraph {
    /// Builds the dynamic view of `h` with every vertex active.
    pub fn new(h: &Hypergraph) -> DynHypergraph {
        let n = h.num_vertices();
        let m = h.num_nets();
        let mut incident = Vec::with_capacity(n);
        for v in h.vertices() {
            incident.push(h.vertex_nets(v).to_vec());
        }
        let mut pins = Vec::with_capacity(m);
        let mut size = Vec::with_capacity(m);
        let mut net_weight = Vec::with_capacity(m);
        let mut total_net_weight = 0u64;
        for e in h.nets() {
            let p = h.net_pins(e);
            pins.push(p.to_vec());
            size.push(p.len() as u32);
            net_weight.push(h.net_weight(e));
            total_net_weight += u64::from(h.net_weight(e));
        }
        DynHypergraph {
            active: vec![true; n],
            weight: h.vertices().map(|v| h.vertex_weight(v)).collect(),
            fixed: h.vertices().map(|v| h.fixed_part(v)).collect(),
            incident,
            pins,
            size,
            net_weight,
            num_active: n,
            total_net_weight,
        }
    }

    /// Number of vertex slots (the source graph's vertex count).
    pub fn num_slots(&self) -> usize {
        self.active.len()
    }

    /// Number of currently active vertices.
    pub fn num_active(&self) -> usize {
        self.num_active
    }

    /// Number of net slots (the source graph's net count).
    pub fn num_nets(&self) -> usize {
        self.size.len()
    }

    /// Number of nets whose active prefix still spans two or more pins.
    pub fn num_live_nets(&self) -> usize {
        self.size.iter().filter(|&&s| s >= 2).count()
    }

    /// `true` while `v` is a live representative.
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active[v.index()]
    }

    /// Aggregated cluster weight of `v`.
    pub fn weight(&self, v: VertexId) -> u64 {
        self.weight[v.index()]
    }

    /// Inherited fixed side of `v`.
    pub fn fixed_part(&self, v: VertexId) -> Option<PartId> {
        self.fixed[v.index()]
    }

    /// Weight of net `e`.
    pub fn net_weight(&self, e: NetId) -> u32 {
        self.net_weight[e.index()]
    }

    /// Active pin count of net `e`.
    pub fn net_size(&self, e: NetId) -> u32 {
        self.size[e.index()]
    }

    /// The active pins of net `e` (prefix order is an implementation
    /// detail: contractions permute it).
    pub fn net_pins(&self, e: NetId) -> &[VertexId] {
        &self.pins[e.index()][..self.size[e.index()] as usize]
    }

    /// The nets `v` currently sits on (only meaningful while active).
    pub fn incident_nets(&self, v: VertexId) -> &[NetId] {
        &self.incident[v.index()]
    }

    /// The first disabled pin of `e`, if any. At LIFO-undo time this is
    /// the vertex the matching case-A contraction swapped out, which is
    /// how callers distinguish case A from case B *before* undoing.
    pub fn tail_pin(&self, e: NetId) -> Option<VertexId> {
        let s = self.size[e.index()] as usize;
        self.pins[e.index()].get(s).copied()
    }

    /// Total weight of all nets — a safe bound on any vertex's gain in
    /// any partition of this view, however aggregated its clusters are.
    pub fn gain_bound(&self) -> i64 {
        i64::try_from(self.total_net_weight)
            .unwrap_or(i64::MAX)
            .max(1)
    }

    /// Contracts `v` into `u`: `u` absorbs `v`'s weight, nets, and (if
    /// `u` was free) fixed side; `v` becomes inactive. Returns the
    /// memento undoing the step.
    ///
    /// For each net of `v`: if `u` is already on the net, `v` is swapped
    /// to the disabled tail (case A — the net shrinks lazily); otherwise
    /// `v`'s slot is overwritten with `u` and the net is appended to
    /// `u`'s incidence list (case B).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `u != v`, both are active, and their fixed
    /// sides are compatible.
    pub fn contract(&mut self, u: VertexId, v: VertexId) -> ContractionMemento {
        debug_assert_ne!(u, v, "self-contraction");
        debug_assert!(self.active[u.index()] && self.active[v.index()]);
        debug_assert!(
            self.fixed[u.index()].is_none()
                || self.fixed[v.index()].is_none()
                || self.fixed[u.index()] == self.fixed[v.index()],
            "contracting across fixed sides"
        );
        let memento = ContractionMemento {
            u,
            v,
            u_nets_len: self.incident[u.index()].len() as u32,
            u_fixed_before: self.fixed[u.index()],
        };
        let v_nets = std::mem::take(&mut self.incident[v.index()]);
        for &e in &v_nets {
            let s = self.size[e.index()] as usize;
            let pins = &mut self.pins[e.index()];
            let mut pos_v = usize::MAX;
            let mut has_u = false;
            for (i, &p) in pins[..s].iter().enumerate() {
                if p == v {
                    pos_v = i;
                } else if p == u {
                    has_u = true;
                }
            }
            debug_assert_ne!(pos_v, usize::MAX, "v not on its own net");
            if has_u {
                pins.swap(pos_v, s - 1);
                self.size[e.index()] = (s - 1) as u32;
            } else {
                pins[pos_v] = u;
                self.incident[u.index()].push(e);
            }
        }
        self.incident[v.index()] = v_nets;
        self.weight[u.index()] += self.weight[v.index()];
        if self.fixed[u.index()].is_none() {
            self.fixed[u.index()] = self.fixed[v.index()];
        }
        self.active[v.index()] = false;
        self.num_active -= 1;
        memento
    }

    /// Undoes the **most recent not-yet-undone** contraction. Mementos
    /// must be undone in strict LIFO order; nothing checks this beyond
    /// debug assertions, and out-of-order undo corrupts the view.
    pub fn uncontract(&mut self, m: &ContractionMemento) {
        let (u, v) = (m.u, m.v);
        debug_assert!(self.active[u.index()] && !self.active[v.index()]);
        // Drop every net case B appended to u during this contraction.
        self.incident[u.index()].truncate(m.u_nets_len as usize);
        let v_nets = std::mem::take(&mut self.incident[v.index()]);
        for &e in &v_nets {
            let s = self.size[e.index()] as usize;
            let pins = &mut self.pins[e.index()];
            if pins.get(s) == Some(&v) {
                // Case A: v sits in the first disabled slot — regrow the
                // active prefix over it. (The prefix order is permuted
                // relative to the original CSR, which is fine: no
                // consumer depends on pin order.)
                self.size[e.index()] = (s + 1) as u32;
            } else {
                // Case B: u stands in v's old slot; give it back.
                let slot = pins[..s].iter().position(|&p| p == u);
                match slot {
                    Some(i) => pins[i] = v,
                    None => debug_assert!(false, "undo: u missing from net prefix"),
                }
            }
        }
        self.incident[v.index()] = v_nets;
        self.weight[u.index()] -= self.weight[v.index()];
        self.fixed[u.index()] = m.u_fixed_before;
        self.active[v.index()] = true;
        self.num_active += 1;
    }

    /// Materializes the active residual as a standalone [`Hypergraph`]
    /// (for initial partitioning on the coarsest state). Returns the
    /// graph and the dense-id → original-slot map; nets with fewer than
    /// two active pins are dropped, fixed sides are carried over.
    ///
    /// # Panics
    ///
    /// Panics if the residual violates builder invariants, which would
    /// indicate memento corruption (duplicated pins on one net).
    pub fn materialize(&self) -> (Hypergraph, Vec<VertexId>) {
        let mut builder = hypart_hypergraph::HypergraphBuilder::new();
        let mut dense_of = vec![u32::MAX; self.active.len()];
        let mut slot_of = Vec::with_capacity(self.num_active);
        for (i, &alive) in self.active.iter().enumerate() {
            if alive {
                let dense = builder.add_vertex(self.weight[i]);
                dense_of[i] = dense.raw();
                slot_of.push(VertexId::from_index(i));
                if let Some(p) = self.fixed[i] {
                    builder.fix_vertex(dense, p);
                }
            }
        }
        for e in 0..self.size.len() {
            let s = self.size[e] as usize;
            if s < 2 {
                continue;
            }
            let pins = self.pins[e][..s]
                .iter()
                .map(|p| VertexId::new(dense_of[p.index()]));
            if let Err(err) = builder.add_net(pins, self.net_weight[e]) {
                unreachable!("residual net {e} violates builder invariants: {err}");
            }
        }
        match builder.build() {
            Ok(h) => (h, slot_of),
            Err(err) => unreachable!("residual graph is structurally valid: {err}"),
        }
    }

    /// Exhaustively checks that this view matches the source graph it was
    /// built from — every vertex active with its original weight and
    /// fixed side, every net at full size with its original pin *set*.
    /// Test/audit support for the contract → uncontract twin property.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn validate_pristine(&self, h: &Hypergraph) -> Result<(), String> {
        if self.num_active != h.num_vertices() {
            return Err(format!(
                "active count {} != vertex count {}",
                self.num_active,
                h.num_vertices()
            ));
        }
        for v in h.vertices() {
            let i = v.index();
            if !self.active[i] {
                return Err(format!("vertex {i} inactive"));
            }
            if self.weight[i] != h.vertex_weight(v) {
                return Err(format!("vertex {i} weight drifted"));
            }
            if self.fixed[i] != h.fixed_part(v) {
                return Err(format!("vertex {i} fixed side drifted"));
            }
            let mut mine: Vec<u32> = self.incident[i].iter().map(|e| e.raw()).collect();
            let mut orig: Vec<u32> = h.vertex_nets(v).iter().map(|e| e.raw()).collect();
            mine.sort_unstable();
            orig.sort_unstable();
            if mine != orig {
                return Err(format!("vertex {i} incidence drifted"));
            }
        }
        for e in h.nets() {
            let i = e.index();
            if self.size[i] as usize != h.net_size(e) {
                return Err(format!("net {i} size drifted"));
            }
            let mut mine: Vec<u32> = self.pins[i][..self.size[i] as usize]
                .iter()
                .map(|p| p.raw())
                .collect();
            let mut orig: Vec<u32> = h.net_pins(e).iter().map(|p| p.raw()).collect();
            mine.sort_unstable();
            orig.sort_unstable();
            if mine != orig {
                return Err(format!("net {i} pin set drifted"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::HypergraphBuilder;

    fn toy() -> Hypergraph {
        // v0-v1-v2 triangle net, v2-v3 bridge, v3-v4-v5 triangle net.
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 1).unwrap();
        b.add_net([v[3], v[4], v[5]], 2).unwrap();
        b.add_net([v[2], v[3]], 3).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn contract_then_uncontract_restores_everything() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        let mut stack = vec![
            d.contract(VertexId::new(0), VertexId::new(1)),
            d.contract(VertexId::new(2), VertexId::new(3)),
            d.contract(VertexId::new(0), VertexId::new(2)),
            d.contract(VertexId::new(4), VertexId::new(5)),
        ];
        assert_eq!(d.num_active(), 2);
        while let Some(m) = stack.pop() {
            d.uncontract(&m);
        }
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn case_a_shrinks_shared_nets_lazily() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        // v0 and v1 share net 0: case A, the net shrinks in place.
        let m = d.contract(VertexId::new(0), VertexId::new(1));
        assert_eq!(d.net_size(NetId::new(0)), 2);
        assert_eq!(d.tail_pin(NetId::new(0)), Some(VertexId::new(1)));
        assert_eq!(d.weight(VertexId::new(0)), 2);
        d.uncontract(&m);
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn case_b_substitutes_and_extends_incidence() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        // v0 is not on net 2 (v2-v3); contracting v2 into v0 substitutes.
        let before = d.incident_nets(VertexId::new(0)).len();
        let m = d.contract(VertexId::new(0), VertexId::new(2));
        assert_eq!(d.net_size(NetId::new(2)), 2);
        assert!(d.net_pins(NetId::new(2)).contains(&VertexId::new(0)));
        assert_eq!(d.incident_nets(VertexId::new(0)).len(), before + 1);
        d.uncontract(&m);
        d.validate_pristine(&h).unwrap();
    }

    #[test]
    fn materialize_drops_dead_nets_and_maps_back() {
        let h = toy();
        let mut d = DynHypergraph::new(&h);
        d.contract(VertexId::new(0), VertexId::new(1));
        d.contract(VertexId::new(0), VertexId::new(2));
        // Net 0 is now single-pin; nets 1 and 2 survive.
        let (ch, slot_of) = d.materialize();
        assert_eq!(ch.num_vertices(), 4);
        assert_eq!(ch.num_nets(), 2);
        assert_eq!(slot_of[0], VertexId::new(0));
        assert_eq!(ch.vertex_weight(VertexId::new(0)), 3);
        assert_eq!(ch.total_vertex_weight(), h.total_vertex_weight());
    }

    #[test]
    fn fixed_sides_are_inherited_and_restored() {
        let h = toy().with_fixed(VertexId::new(1), Some(PartId::P1));
        let mut d = DynHypergraph::new(&h);
        let m = d.contract(VertexId::new(0), VertexId::new(1));
        assert_eq!(d.fixed_part(VertexId::new(0)), Some(PartId::P1));
        d.uncontract(&m);
        assert_eq!(d.fixed_part(VertexId::new(0)), None);
        d.validate_pristine(&h).unwrap();
    }
}
