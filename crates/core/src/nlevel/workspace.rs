//! Reusable n-level scratch arenas.
//!
//! The n-level backend runs once per start of every multi-start sweep and
//! once per V-cycle, and each run touches `O(n)` scratch: the
//! [`DynHypergraph`] view itself, the contraction schedule's pair/match
//! buffers, the partition's `nets × k` count table, the label scatter
//! buffer, the flat-sweep seed list, and the localized refiner's
//! lock/log/gain-cache state. An [`NLevelWorkspace`] owns all of it once,
//! grow-only, exactly like [`crate::FmWorkspace`] and
//! [`crate::CoarsenWorkspace`] do for their engines: the drivers re-point
//! the arenas per run ([`DynHypergraph::reset_from_csr`],
//! [`crate::NLevelPartition::reset`], epoch bumps) instead of
//! reallocating, so the steady-state contract / uncontract / localized-FM
//! loop allocates nothing.
//!
//! Workspaces are plain owned data — parallel drivers give each thread
//! its own, as they already do for the FM and coarsening workspaces.
//! Reuse never changes results: a fresh workspace is exactly what the
//! plain entry points construct internally, and the dirty-workspace twin
//! tests pin bitwise-identical traces across reuse.

use super::dynhg::{ContractionMemento, DynHypergraph};
use super::partition::NLevelPartition;
use hypart_hypergraph::VertexId;

/// Scratch of the rating-driven contraction schedule
/// ([`crate::select_contractions`]): the produced memento stack plus the
/// per-round match flags and candidate-pair buffer.
#[derive(Clone, Debug, Default)]
pub struct ContractScratch {
    /// The memento stack of the most recent schedule, in contraction
    /// order (undo it back to front).
    pub mementos: Vec<ContractionMemento>,
    /// Per-slot "contracted this round" flags.
    pub(crate) matched: Vec<bool>,
    /// Candidate pairs of the current round: `(rating, tie-break hash,
    /// survivor, absorbed)`, sorted descending.
    pub(crate) pairs: Vec<(u64, u64, u32, u32)>,
}

impl ContractScratch {
    /// Creates an empty scratch. Arenas grow on first use and are kept.
    pub fn new() -> Self {
        ContractScratch::default()
    }
}

/// Scratch of the localized FM refiner ([`crate::refine_localized`]):
/// epoch-stamped lock flags, the applied-move log, and the exact
/// per-vertex gain cache.
///
/// The gain cache holds, for every vertex stamped in the current epoch,
/// the exact gain of moving it to each of the `k` parts — identical at
/// all times to what [`crate::NLevelPartition::gain`] would recompute.
/// It is filled once per vertex per invocation (one pass over the
/// vertex's nets) and then delta-maintained in O(affected pins) per
/// applied move, replacing the per-activation full rescans. One epoch
/// bump retires the whole cache in O(1) at the next invocation.
#[derive(Clone, Debug, Default)]
pub struct LocalSearchScratch {
    /// Current invocation epoch; stamps below it are stale.
    pub(crate) epoch: u32,
    /// Gain-row stride of the current invocation (the partition's `k`).
    pub(crate) k: usize,
    /// `locked[v] == epoch` iff `v` already moved this invocation.
    pub(crate) locked: Vec<u32>,
    /// `gain_stamp[v] == epoch` iff `v`'s gain row is live.
    pub(crate) gain_stamp: Vec<u32>,
    /// Flat `slots × k` gain rows (entries at the vertex's own part are
    /// unused).
    pub(crate) gains: Vec<i64>,
    /// `(vertex, origin part)` per applied move, for best-prefix
    /// rollback.
    pub(crate) log: Vec<(VertexId, usize)>,
}

impl LocalSearchScratch {
    /// Creates an empty scratch. Arenas grow on first use and are kept.
    pub fn new() -> Self {
        LocalSearchScratch::default()
    }

    /// Starts a new invocation over `slots` slots and `k` parts: all
    /// locks and cached gains become stale in O(1) (amortized — a full
    /// epoch wrap every 2³² invocations costs one stamp clear).
    pub(crate) fn begin(&mut self, slots: usize, k: usize) {
        self.k = k;
        if self.locked.len() < slots {
            self.locked.resize(slots, 0);
        }
        if self.gain_stamp.len() < slots {
            self.gain_stamp.resize(slots, 0);
        }
        if self.gains.len() < slots * k {
            self.gains.resize(slots * k, 0);
        }
        if self.epoch == u32::MAX {
            for s in &mut self.locked {
                *s = 0;
            }
            for s in &mut self.gain_stamp {
                *s = 0;
            }
            self.epoch = 0;
        }
        self.epoch += 1;
        self.log.clear();
    }

    /// Whether `v` already moved this invocation.
    #[inline]
    pub(crate) fn is_locked(&self, v: VertexId) -> bool {
        self.locked[v.index()] == self.epoch
    }

    /// Marks `v` as moved this invocation.
    #[inline]
    pub(crate) fn lock(&mut self, v: VertexId) {
        self.locked[v.index()] = self.epoch;
    }

    /// Whether `v`'s gain row is live this invocation.
    #[inline]
    pub(crate) fn is_cached(&self, v: VertexId) -> bool {
        self.gain_stamp[v.index()] == self.epoch
    }

    /// The cached gain of moving `v` to part `to`. The row must be live.
    #[inline]
    pub(crate) fn gain_of(&self, v: VertexId, to: usize) -> i64 {
        debug_assert!(self.is_cached(v), "gain row read before fill");
        self.gains[v.index() * self.k + to]
    }
}

/// Reusable scratch arenas for the n-level backend.
///
/// Carried on [`crate::RunCtx`] next to [`crate::FmWorkspace`] and
/// [`crate::CoarsenWorkspace`]; the n-level drivers take it out of the
/// context for the duration of one run (so the view, the partition, and
/// the context can be borrowed independently) and put it back at the
/// end. All fields are public: the drivers live in the multilevel and
/// k-way crates and drive them directly.
#[derive(Clone, Debug, Default)]
pub struct NLevelWorkspace {
    /// The recycled dynamic hypergraph view (slab adjacency arenas
    /// inside); re-pointed at each run via
    /// [`DynHypergraph::reset_from_csr`].
    pub dynhg: DynHypergraph,
    /// Contraction-schedule scratch, including the memento stack.
    pub contract: ContractScratch,
    /// The recycled partition state, rebuilt per run via
    /// [`NLevelPartition::reset`].
    pub partition: NLevelPartition,
    /// Per-slot label scatter buffer (initial-partition projection).
    pub labels: Vec<u16>,
    /// Flat-sweep seed list (all active vertices of the current view).
    pub seeds: Vec<VertexId>,
    /// `materialize` scratch: original slot → dense coarse id.
    pub dense_of: Vec<u32>,
    /// `materialize` scratch: dense coarse id → original slot.
    pub slot_of: Vec<VertexId>,
    /// Localized-refiner scratch (locks, move log, gain cache).
    pub refine: LocalSearchScratch,
}

impl NLevelWorkspace {
    /// Creates an empty workspace. Arenas grow on first use and are kept
    /// from then on.
    pub fn new() -> Self {
        NLevelWorkspace::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_search_scratch_epochs_retire_locks_and_cache() {
        let mut s = LocalSearchScratch::new();
        s.begin(4, 2);
        let v = VertexId::new(1);
        assert!(!s.is_locked(v));
        assert!(!s.is_cached(v));
        s.lock(v);
        s.gain_stamp[1] = s.epoch;
        s.gains[2] = 7;
        assert!(s.is_locked(v));
        assert_eq!(s.gain_of(v, 0), 7);
        // Next invocation: everything stale, allocations kept.
        s.begin(4, 2);
        assert!(!s.is_locked(v));
        assert!(!s.is_cached(v));
    }

    #[test]
    fn local_search_scratch_survives_epoch_wrap() {
        let mut s = LocalSearchScratch::new();
        s.begin(2, 2);
        s.lock(VertexId::new(0));
        s.epoch = u32::MAX;
        s.begin(2, 2);
        assert_eq!(s.epoch, 1);
        assert!(!s.is_locked(VertexId::new(0)));
    }

    #[test]
    fn workspace_defaults_are_empty() {
        let ws = NLevelWorkspace::new();
        assert_eq!(ws.dynhg.num_slots(), 0);
        assert!(ws.contract.mementos.is_empty());
        assert!(ws.labels.is_empty());
    }
}
