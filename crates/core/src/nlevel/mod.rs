//! n-level contraction machinery: one-pair-at-a-time coarsening with an
//! undo stack, in the style of *n-Level Hypergraph Partitioning*
//! \[Osipov–Sanders–Schulz\].
//!
//! Where the coarse-grained multilevel backend ([`crate::Hierarchy`])
//! halves the hypergraph per level and rebuilds a CSR per level, the
//! n-level backend contracts **one vertex pair per step**, records each
//! step in a [`ContractionMemento`], and later undoes the stack one
//! memento at a time, running *localized* refinement seeded only on the
//! two released vertices and their boundary neighborhood. The pieces:
//!
//! * [`DynHypergraph`] — an incrementally mutated hypergraph view over an
//!   immutable [`Hypergraph`](hypart_hypergraph::Hypergraph), with lazy
//!   net shrinking (disabled pins park in the tail of each pin array; no
//!   CSR is ever rebuilt);
//! * [`ContractionMemento`] — the constant-size undo record of one
//!   contraction, valid under strict LIFO undo;
//! * [`select_contractions`] — the rating-driven contraction schedule
//!   (heavy-edge connectivity, deterministic seeded tie-breaks);
//! * [`NLevelPartition`] — incremental k-way partition state (per-net
//!   part counts, weighted cut) over a [`DynHypergraph`], plus the
//!   localized FM refiner [`refine_localized`];
//! * [`NLevelWorkspace`] — the reusable scratch arenas of everything
//!   above (carried on [`crate::RunCtx`] like the FM and coarsening
//!   workspaces), which make the steady-state hot path allocation-free.
//!
//! Engines select between the two backends with [`EngineKind`], carried
//! by the multilevel configs (`MlConfig::engine`, `MlKWayConfig::engine`)
//! so the driver, eval runner, server daemon, and CLI pick backends
//! uniformly.

mod dynhg;
mod partition;
mod rating;
mod workspace;

pub use dynhg::{ContractionMemento, DynHypergraph};
pub use partition::{refine_localized, NLevelPartition};
pub use rating::{select_contractions, ContractionLimits};
pub use workspace::{ContractScratch, LocalSearchScratch, NLevelWorkspace};

/// Which multilevel backend a configuration selects.
///
/// | kind | contraction granularity | refinement granularity |
/// |------|-------------------------|------------------------|
/// | [`MlCoarse`](EngineKind::MlCoarse) | whole levels (CSR rebuilt per level) | full FM passes per level |
/// | [`NLevel`](EngineKind::NLevel) | one vertex pair per step (no rebuilds) | localized FM per uncontraction |
///
/// `MlCoarse` is the default everywhere, so existing configs, golden
/// traces, and wire protocols are unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Coarse-grained multilevel: level-by-level coarsening with a full
    /// refinement sweep at every level.
    #[default]
    MlCoarse,
    /// n-level: single-pair contractions with memento undo and localized
    /// refinement per uncontraction.
    NLevel,
}

impl EngineKind {
    /// Stable snake-case name (`"ml"` / `"nlevel"`), used by the CLI
    /// `--engine` flag and the server wire protocol.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::MlCoarse => "ml",
            EngineKind::NLevel => "nlevel",
        }
    }

    /// Parses a [`name`](EngineKind::name) back.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown kind.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "ml" | "ml-coarse" | "coarse" => Ok(EngineKind::MlCoarse),
            "nlevel" | "n-level" => Ok(EngineKind::NLevel),
            other => Err(format!(
                "unknown engine kind `{other}` (expected ml or nlevel)"
            )),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_round_trips_and_defaults_to_ml() {
        assert_eq!(EngineKind::default(), EngineKind::MlCoarse);
        for kind in [EngineKind::MlCoarse, EngineKind::NLevel] {
            assert_eq!(EngineKind::parse(kind.name()).unwrap(), kind);
        }
        assert_eq!(EngineKind::parse("n-level").unwrap(), EngineKind::NLevel);
        assert!(EngineKind::parse("warp").is_err());
    }
}
