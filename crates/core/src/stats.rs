//! Run and pass statistics, including the corking diagnostics of §2.3.

use crate::audit::AuditError;
use hypart_trace::StopReason;

/// Statistics of a single FM pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    /// Moves tentatively made during the pass.
    pub moves_made: usize,
    /// Moves undone when rolling back to the best prefix.
    pub moves_rolled_back: usize,
    /// Vertices eligible to move at pass start (free, and inside the
    /// balance window if overweight exclusion is on).
    pub eligible: usize,
    /// Weighted cut at pass start.
    pub cut_before: u64,
    /// Weighted cut after rollback to the best prefix.
    pub cut_after: u64,
    /// Gain-update events with a zero delta (counted whether or not the
    /// re-insertion was performed — the `ZeroDeltaPolicy` decides that).
    pub zero_delta_events: u64,
    /// Gain-update events with a nonzero delta.
    pub nonzero_delta_events: u64,
    /// `true` if the pass *corked*: it ended with movable vertices still in
    /// the gain container but fewer than [`CORKED_FRACTION`] of the
    /// eligible vertices moved — the CLIP failure mode of §2.3.
    pub corked: bool,
    /// Cut after each tentative move, in move order (empty unless
    /// `FmConfig::record_trace` is set). The characteristic FM "valley"
    /// shape — descend, bottom out at the best prefix, climb while the
    /// remaining forced moves play out — is visible here.
    pub cut_trace: Vec<u64>,
}

/// A pass counts as corked when it moves fewer than this fraction of its
/// eligible vertices while vertices remain available (1/20 = 5 %).
pub const CORKED_FRACTION: (usize, usize) = (1, 20);

impl PassStats {
    /// Cut improvement achieved by the pass (negative if it regressed,
    /// which the engine never accepts).
    pub fn improvement(&self) -> i64 {
        self.cut_before as i64 - self.cut_after as i64
    }
}

/// Statistics of a full FM run (initial solution + passes until
/// convergence).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FmStats {
    /// Per-pass records, in order.
    pub passes: Vec<PassStats>,
    /// Weighted cut of the initial solution.
    pub initial_cut: u64,
    /// Weighted cut of the final solution.
    pub final_cut: u64,
    /// Vertices excluded from the gain container because their area
    /// exceeds the balance window (`FmConfig::exclude_overweight`).
    pub excluded_overweight: usize,
    /// Fixed vertices (never inserted).
    pub fixed: usize,
    /// Why the run ended: normal convergence ([`StopReason::Completed`])
    /// or a cooperative stop at the context's deadline / cancellation
    /// token, with the best-so-far solution kept.
    pub stopped: StopReason,
    /// First invariant violation the [`crate::PartitionAuditor`] found,
    /// if auditing was enabled and the run's bookkeeping disagreed with
    /// the independent recomputation. Always `None` with auditing off.
    pub audit_failure: Option<AuditError>,
}

impl FmStats {
    /// Number of passes executed.
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }

    /// Total moves tentatively made across all passes.
    pub fn total_moves(&self) -> usize {
        self.passes.iter().map(|p| p.moves_made).sum()
    }

    /// Number of corked passes (§2.3 diagnostic: "traces of CLIP
    /// executions show that corking actually occurs fairly often").
    pub fn corked_passes(&self) -> usize {
        self.passes.iter().filter(|p| p.corked).count()
    }

    /// Fraction of passes that corked, 0.0 if no passes ran.
    pub fn corked_fraction(&self) -> f64 {
        if self.passes.is_empty() {
            0.0
        } else {
            self.corked_passes() as f64 / self.passes.len() as f64
        }
    }

    /// Total cut improvement over the run.
    pub fn improvement(&self) -> i64 {
        self.initial_cut as i64 - self.final_cut as i64
    }

    /// Zero-delta events across all passes.
    pub fn zero_delta_events(&self) -> u64 {
        self.passes.iter().map(|p| p.zero_delta_events).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_improvement() {
        let p = PassStats {
            cut_before: 100,
            cut_after: 80,
            ..PassStats::default()
        };
        assert_eq!(p.improvement(), 20);
    }

    #[test]
    fn aggregates() {
        let stats = FmStats {
            passes: vec![
                PassStats {
                    moves_made: 10,
                    corked: false,
                    zero_delta_events: 5,
                    ..PassStats::default()
                },
                PassStats {
                    moves_made: 2,
                    corked: true,
                    zero_delta_events: 1,
                    ..PassStats::default()
                },
            ],
            initial_cut: 50,
            final_cut: 40,
            ..FmStats::default()
        };
        assert_eq!(stats.num_passes(), 2);
        assert_eq!(stats.total_moves(), 12);
        assert_eq!(stats.corked_passes(), 1);
        assert!((stats.corked_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(stats.improvement(), 10);
        assert_eq!(stats.zero_delta_events(), 6);
    }

    #[test]
    fn empty_run_has_zero_corked_fraction() {
        assert_eq!(FmStats::default().corked_fraction(), 0.0);
    }
}
