//! Per-lane scratch state for the shared-memory parallel engine.
//!
//! The parallel multilevel engine splits work into *lanes*: one lane per
//! configured thread, each owning the scratch arenas its jobs need
//! ([`FmWorkspace`] for refinement tries, a
//! [`SparseScores`] accumulator for matching proposals, a proposal
//! buffer for refinement rounds). Lanes live on
//! [`RunCtx`](crate::RunCtx) next to the serial workspaces, so arena
//! reuse across levels, starts, and V-cycles works exactly as it does
//! serially — and, as with the serial workspaces, reuse never changes
//! results.
//!
//! Lanes are plain owned data. The engine lends each spawned job mutable
//! access to exactly one lane (disjoint `&mut` splits of the lane
//! vector), so no lane is ever shared between threads.

use crate::coarsen_ws::SparseScores;
use crate::workspace::FmWorkspace;

/// One candidate move proposed by a refinement shard: move `vertex` to
/// the opposite side for a gain of `gain` *as seen in the frozen
/// pre-round snapshot* (the serial commit re-derives the live gain).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveProposal {
    /// Raw index of the vertex to move.
    pub vertex: u32,
    /// Snapshot gain (cut decrease) of moving the vertex.
    pub gain: i64,
}

/// The scratch state owned by one parallel lane.
#[derive(Debug, Default)]
pub struct ParLane {
    /// Refinement workspace for initial-portfolio tries run on this lane.
    pub fm: FmWorkspace,
    /// Connectivity accumulator for matching proposals computed on this
    /// lane.
    pub conn: SparseScores,
    /// Move proposals of the refinement shard this lane last scanned.
    pub moves: Vec<MoveProposal>,
    /// Whether this lane's shard panicked in the current round (set
    /// inside the shard's `catch_unwind` region, read by the serial
    /// commit).
    pub aborted: bool,
}

impl ParLane {
    /// Creates an empty lane; arenas grow on first use.
    pub fn new() -> Self {
        ParLane::default()
    }
}

/// Grows `lanes` to at least `count` lanes (never shrinks, so arenas
/// built up by a wider earlier run are kept).
pub fn ensure_lanes(lanes: &mut Vec<ParLane>, count: usize) {
    while lanes.len() < count {
        lanes.push(ParLane::new());
    }
}

/// Resolves a configured thread count: `0` means "ask the runtime"
/// ([`rayon::current_num_threads`], which honours `RAYON_NUM_THREADS`),
/// anything else is taken literally. Always at least 1.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        rayon::current_num_threads().max(1)
    } else {
        threads
    }
}

/// Derives a decorrelated per-unit seed from a base seed and a unit
/// index (SplitMix64 finalizer over the golden-ratio-striped index).
///
/// Used for per-try seeds of the parallel initial portfolio: each try's
/// seed is a pure function of `(base, index)`, independent of which lane
/// runs it — a prerequisite for thread-count-invariant results.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ensure_lanes_grows_and_never_shrinks() {
        let mut lanes = Vec::new();
        ensure_lanes(&mut lanes, 4);
        assert_eq!(lanes.len(), 4);
        lanes[2].moves.push(MoveProposal { vertex: 1, gain: 3 });
        ensure_lanes(&mut lanes, 2);
        assert_eq!(lanes.len(), 4);
        assert_eq!(lanes[2].moves.len(), 1);
        ensure_lanes(&mut lanes, 6);
        assert_eq!(lanes.len(), 6);
    }

    #[test]
    fn resolve_threads_passes_explicit_counts_through() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(8), 8);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn derived_seeds_are_stable_and_index_sensitive() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
        assert_ne!(derive_seed(42, 3), derive_seed(43, 3));
        // Index 0 still decorrelates from the raw base.
        assert_ne!(derive_seed(7, 0), 7);
    }
}
