//! Initial solution generation.
//!
//! Hauck & Borriello (TCAD-97) showed initial-solution generation to be one
//! of the impactful hidden implementation decisions; the paper cites it in
//! its taxonomy of implicit choices. Three generators are provided, from
//! strong to deliberately weak (see [`InitialSolution`]).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::config::InitialSolution;
use hypart_hypergraph::{Hypergraph, PartId, VertexId};

/// Generates an initial assignment for `h` under `rule`.
///
/// Fixed vertices always go to their fixed partition. The balanced
/// generators add free vertices greedily to the lighter side, which keeps
/// the split near-perfect regardless of area distribution; the
/// [`InitialSolution::UniformRandom`] generator ignores balance entirely.
///
/// ```
/// use hypart_core::{generate_initial, InitialSolution};
/// use hypart_hypergraph::HypergraphBuilder;
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// for _ in 0..10 { b.add_vertex(1); }
/// let h = b.build()?;
/// let mut rng = SmallRng::seed_from_u64(1);
/// let parts = generate_initial(&h, InitialSolution::RandomBalanced, &mut rng);
/// let p0 = parts.iter().filter(|p| **p == hypart_hypergraph::PartId::P0).count();
/// assert_eq!(p0, 5);
/// # Ok(())
/// # }
/// ```
pub fn generate_initial<R: Rng>(h: &Hypergraph, rule: InitialSolution, rng: &mut R) -> Vec<PartId> {
    let mut assignment = vec![PartId::P0; h.num_vertices()];
    let mut weight = [0u64; 2];
    let mut free: Vec<VertexId> = Vec::with_capacity(h.num_vertices());
    for v in h.vertices() {
        match h.fixed_part(v) {
            Some(p) => {
                assignment[v.index()] = p;
                weight[p.index()] += h.vertex_weight(v);
            }
            None => free.push(v),
        }
    }
    match rule {
        InitialSolution::RandomBalanced => {
            free.shuffle(rng);
            greedy_lighter_side(h, &free, &mut assignment, &mut weight, rng);
        }
        InitialSolution::AreaSortedGreedy => {
            free.shuffle(rng); // randomize ties before the stable sort
            free.sort_by_key(|&v| std::cmp::Reverse(h.vertex_weight(v)));
            greedy_lighter_side(h, &free, &mut assignment, &mut weight, rng);
        }
        InitialSolution::UniformRandom => {
            for v in free {
                let p = if rng.gen::<bool>() {
                    PartId::P1
                } else {
                    PartId::P0
                };
                assignment[v.index()] = p;
                weight[p.index()] += h.vertex_weight(v);
            }
        }
    }
    assignment
}

fn greedy_lighter_side<R: Rng>(
    h: &Hypergraph,
    order: &[VertexId],
    assignment: &mut [PartId],
    weight: &mut [u64; 2],
    rng: &mut R,
) {
    for &v in order {
        let p = match weight[0].cmp(&weight[1]) {
            std::cmp::Ordering::Less => PartId::P0,
            std::cmp::Ordering::Greater => PartId::P1,
            std::cmp::Ordering::Equal => {
                if rng.gen::<bool>() {
                    PartId::P1
                } else {
                    PartId::P0
                }
            }
        };
        assignment[v.index()] = p;
        weight[p.index()] += h.vertex_weight(v);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::HypergraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn weights(h: &Hypergraph, parts: &[PartId]) -> [u64; 2] {
        let mut w = [0u64; 2];
        for v in h.vertices() {
            w[parts[v.index()].index()] += h.vertex_weight(v);
        }
        w
    }

    fn unit_graph(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(n, 1);
        b.build().unwrap()
    }

    #[test]
    fn random_balanced_is_balanced() {
        let h = unit_graph(101);
        let mut rng = SmallRng::seed_from_u64(3);
        let parts = generate_initial(&h, InitialSolution::RandomBalanced, &mut rng);
        let w = weights(&h, &parts);
        assert_eq!(w[0].abs_diff(w[1]), 1); // odd count: off by exactly one
    }

    #[test]
    fn area_sorted_handles_macros() {
        // One macro of weight 50 plus 50 unit cells: greedy-desc puts the
        // macro alone on one side and fills the other to 50/51.
        let mut b = HypergraphBuilder::new();
        b.add_vertex(50);
        b.add_vertices(50, 1);
        let h = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let parts = generate_initial(&h, InitialSolution::AreaSortedGreedy, &mut rng);
        let w = weights(&h, &parts);
        assert_eq!(w[0].abs_diff(w[1]), 0);
    }

    #[test]
    fn uniform_random_ignores_balance_but_covers_both_sides() {
        let h = unit_graph(200);
        let mut rng = SmallRng::seed_from_u64(3);
        let parts = generate_initial(&h, InitialSolution::UniformRandom, &mut rng);
        let w = weights(&h, &parts);
        assert!(w[0] > 0 && w[1] > 0);
    }

    #[test]
    fn fixed_vertices_are_respected_by_all_rules() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        let v1 = b.add_vertex(1);
        b.add_vertices(10, 1);
        b.fix_vertex(v0, PartId::P1);
        b.fix_vertex(v1, PartId::P0);
        let h = b.build().unwrap();
        for rule in [
            InitialSolution::RandomBalanced,
            InitialSolution::AreaSortedGreedy,
            InitialSolution::UniformRandom,
        ] {
            let mut rng = SmallRng::seed_from_u64(11);
            let parts = generate_initial(&h, rule, &mut rng);
            assert_eq!(parts[v0.index()], PartId::P1, "{rule:?}");
            assert_eq!(parts[v1.index()], PartId::P0, "{rule:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let h = unit_graph(64);
        for rule in [
            InitialSolution::RandomBalanced,
            InitialSolution::AreaSortedGreedy,
            InitialSolution::UniformRandom,
        ] {
            let a = generate_initial(&h, rule, &mut SmallRng::seed_from_u64(5));
            let b = generate_initial(&h, rule, &mut SmallRng::seed_from_u64(5));
            assert_eq!(a, b, "{rule:?}");
        }
    }
}
