//! The FM gain container: a bucket array of intrusive doubly-linked lists.
//!
//! One container holds the pending moves of the free vertices currently in
//! one partition (moves are segregated by source partition, which is what
//! creates the two-highest-gain-buckets tie the paper's `TieBreak` knob
//! resolves). Buckets are indexed by the move's key — the current gain for
//! classic FM, the cumulative delta gain for CLIP — and every structural
//! operation is O(1).
//!
//! Where a vertex is attached within its bucket is the
//! [`InsertionPolicy`] decision (LIFO / FIFO / random); the engine passes
//! the policy (and its RNG) down to every insertion.

use rand::Rng;

use crate::config::InsertionPolicy;
use hypart_hypergraph::VertexId;

const NIL: u32 = u32::MAX;

/// Bucket-array priority structure over vertices keyed by gain.
///
/// Capacity is set at construction (vertex ids in `0..num_vertices`, keys
/// in `-max_abs_key..=max_abs_key`) and can be re-pointed at a new target
/// with [`retarget`](Self::retarget), which keeps the allocations — this
/// is what lets an [`crate::FmWorkspace`] reuse one arena across passes,
/// levels, and starts. [`clear`](Self::clear) is O(len + buckets touched),
/// not O(bucket range): insertions record the buckets they dirty and only
/// those are reset. Exposed publicly so that other engines (e.g. k-way
/// FM) can build on the same audited container — the paper argues that
/// *benchmark algorithm implementations* in source form are as valuable
/// as benchmark data.
#[derive(Clone, Debug)]
pub struct GainContainer {
    /// Array capacity: bucket indices cover keys in `[-offset, offset]`.
    /// May exceed `bound` after a [`retarget`](Self::retarget) to a
    /// smaller key range (capacity is grow-only so reuse stays cheap).
    offset: i64,
    /// Declared logical key bound: every stored key must lie in
    /// `[-bound, bound]` (debug-asserted on every insertion).
    bound: i64,
    head: Vec<u32>,
    tail: Vec<u32>,
    prev: Vec<u32>,
    next: Vec<u32>,
    key_of: Vec<i64>,
    present: Vec<bool>,
    /// Bucket indices dirtied since the last clear — the lazy-clear
    /// work list. A bucket is pushed at most once (guarded by `dirty`).
    touched: Vec<u32>,
    dirty: Vec<bool>,
    max_key: i64,
    len: usize,
}

impl GainContainer {
    /// Creates an empty container for `num_vertices` vertices and keys in
    /// `[-max_abs_key, max_abs_key]`.
    pub fn new(num_vertices: usize, max_abs_key: i64) -> Self {
        assert!(max_abs_key >= 0, "key bound must be non-negative");
        let buckets = (2 * max_abs_key + 1) as usize;
        GainContainer {
            offset: max_abs_key,
            bound: max_abs_key,
            head: vec![NIL; buckets],
            tail: vec![NIL; buckets],
            prev: vec![NIL; num_vertices],
            next: vec![NIL; num_vertices],
            key_of: vec![0; num_vertices],
            present: vec![false; num_vertices],
            touched: Vec::new(),
            dirty: vec![false; buckets],
            max_key: -max_abs_key - 1,
            len: 0,
        }
    }

    /// Re-points this container at a (possibly different) vertex count and
    /// key bound, clearing it. Arena reuse for [`crate::FmWorkspace`]:
    /// existing allocations are kept and only *grown* when the new target
    /// exceeds capacity, so re-targeting an already-large container is
    /// O(len + buckets touched) instead of O(V + bucket range).
    pub fn retarget(&mut self, num_vertices: usize, max_abs_key: i64) {
        assert!(max_abs_key >= 0, "key bound must be non-negative");
        self.clear();
        if max_abs_key > self.offset {
            // All buckets are NIL after the clear, so re-basing the
            // key -> bucket mapping needs no relocation.
            let buckets = (2 * max_abs_key + 1) as usize;
            self.head.resize(buckets, NIL);
            self.tail.resize(buckets, NIL);
            self.dirty.resize(buckets, false);
            self.offset = max_abs_key;
        }
        if num_vertices > self.prev.len() {
            self.prev.resize(num_vertices, NIL);
            self.next.resize(num_vertices, NIL);
            self.key_of.resize(num_vertices, 0);
            self.present.resize(num_vertices, false);
        }
        self.bound = max_abs_key;
        self.max_key = -max_abs_key - 1;
    }

    #[inline]
    fn bucket(&self, key: i64) -> usize {
        debug_assert!(
            key >= -self.bound && key <= self.bound,
            "key {key} out of declared bound ±{}",
            self.bound
        );
        let idx = key + self.offset;
        debug_assert!(
            idx >= 0 && (idx as usize) < self.head.len(),
            "key {key} out of range ±{}",
            self.offset
        );
        idx as usize
    }

    /// Marks `b` dirty, scheduling it for the next [`clear`](Self::clear).
    #[inline]
    fn touch(&mut self, b: usize) {
        if !self.dirty[b] {
            self.dirty[b] = true;
            self.touched.push(b as u32);
        }
    }

    /// Number of vertices currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no vertices are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` if `v` is currently stored.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.present[v.index()]
    }

    /// Current key of `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is not present.
    #[inline]
    pub fn key_of(&self, v: VertexId) -> i64 {
        debug_assert!(self.present[v.index()]);
        self.key_of[v.index()]
    }

    /// Inserts `v` with `key` at the position chosen by `policy`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is already present or `key` is out
    /// of range.
    pub fn insert<R: Rng>(&mut self, v: VertexId, key: i64, policy: InsertionPolicy, rng: &mut R) {
        let at_head = match policy {
            InsertionPolicy::Lifo => true,
            InsertionPolicy::Fifo => false,
            InsertionPolicy::Random => rng.gen::<bool>(),
        };
        if at_head {
            self.push_head(v, key);
        } else {
            self.push_tail(v, key);
        }
    }

    /// Inserts `v` with `key` at the head of its bucket (unconditional LIFO
    /// — used for CLIP pass seeding, which prescribes its own order).
    pub fn push_head(&mut self, v: VertexId, key: i64) {
        debug_assert!(!self.present[v.index()], "{v:?} already present");
        let b = self.bucket(key);
        self.touch(b);
        let old = self.head[b];
        self.next[v.index()] = old;
        self.prev[v.index()] = NIL;
        if old == NIL {
            self.tail[b] = v.raw();
        } else {
            self.prev[old as usize] = v.raw();
        }
        self.head[b] = v.raw();
        self.key_of[v.index()] = key;
        self.present[v.index()] = true;
        self.len += 1;
        self.max_key = self.max_key.max(key);
    }

    /// Inserts `v` with `key` at the tail of its bucket.
    pub fn push_tail(&mut self, v: VertexId, key: i64) {
        debug_assert!(!self.present[v.index()], "{v:?} already present");
        let b = self.bucket(key);
        self.touch(b);
        let old = self.tail[b];
        self.prev[v.index()] = old;
        self.next[v.index()] = NIL;
        if old == NIL {
            self.head[b] = v.raw();
        } else {
            self.next[old as usize] = v.raw();
        }
        self.tail[b] = v.raw();
        self.key_of[v.index()] = key;
        self.present[v.index()] = true;
        self.len += 1;
        self.max_key = self.max_key.max(key);
    }

    /// Removes `v`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is not present.
    pub fn remove(&mut self, v: VertexId) {
        debug_assert!(self.present[v.index()], "{v:?} not present");
        let b = self.bucket(self.key_of[v.index()]);
        let p = self.prev[v.index()];
        let n = self.next[v.index()];
        if p == NIL {
            self.head[b] = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail[b] = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.present[v.index()] = false;
        self.len -= 1;
        // max_key is a lazy upper bound; it descends in `descend_max`.
    }

    /// Moves `v` to `new_key`, re-attaching it per `policy`. This is the
    /// operation whose *zero-delta* invocation the paper's
    /// `ZeroDeltaPolicy` knob controls: calling it with `new_key ==
    /// key_of(v)` still shifts the vertex's position within its bucket.
    pub fn update<R: Rng>(
        &mut self,
        v: VertexId,
        new_key: i64,
        policy: InsertionPolicy,
        rng: &mut R,
    ) {
        self.remove(v);
        self.insert(v, new_key, policy, rng);
    }

    /// Lowers the lazy max-key bound past empty buckets and returns the
    /// highest non-empty key, or `None` if the container is empty.
    pub fn descend_max(&mut self) -> Option<i64> {
        if self.len == 0 {
            self.max_key = -self.bound - 1;
            return None;
        }
        while self.max_key >= -self.bound && self.head[self.bucket(self.max_key)] == NIL {
            self.max_key -= 1;
        }
        debug_assert!(self.max_key >= -self.bound);
        Some(self.max_key)
    }

    /// Head vertex of the bucket at `key`, if any. (Without descending the
    /// lazy max bound — combine with [`descend_max`](Self::descend_max) /
    /// manual key iteration for selection scans.)
    #[inline]
    pub fn head_of(&self, key: i64) -> Option<VertexId> {
        if key < -self.bound || key > self.bound {
            return None;
        }
        let h = self.head[self.bucket(key)];
        (h != NIL).then(|| VertexId::new(h))
    }

    /// Successor of `v` within its bucket, if any.
    #[inline]
    pub fn next_in_bucket(&self, v: VertexId) -> Option<VertexId> {
        debug_assert!(self.present[v.index()]);
        let n = self.next[v.index()];
        (n != NIL).then(|| VertexId::new(n))
    }

    /// Minimum representable key.
    #[inline]
    pub fn min_key_bound(&self) -> i64 {
        -self.bound
    }

    /// Number of buckets dirtied since the last clear — the exact count
    /// the next [`clear`](Self::clear) will walk. Exposed so tests (and
    /// diagnostics) can observe that clearing is O(len + buckets touched)
    /// rather than O(bucket range).
    #[inline]
    pub fn touched_buckets(&self) -> usize {
        self.touched.len()
    }

    /// Removes all vertices in O(len + buckets touched): only buckets an
    /// insertion dirtied since the last clear are walked and reset — never
    /// the whole bucket range, which for macro-heavy instances is orders
    /// of magnitude wider than the set of keys actually used.
    pub fn clear(&mut self) {
        for &b in &self.touched {
            let b = b as usize;
            let mut cur = self.head[b];
            while cur != NIL {
                self.present[cur as usize] = false;
                cur = self.next[cur as usize];
            }
            self.head[b] = NIL;
            self.tail[b] = NIL;
            self.dirty[b] = false;
        }
        self.touched.clear();
        self.len = 0;
        self.max_key = -self.bound - 1;
    }

    /// Full contents of the bucket at `key`, head to tail. Intended for
    /// tests and diagnostics (O(bucket length)).
    pub fn bucket_contents(&self, key: i64) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut cur = self.head_of(key);
        while let Some(v) = cur {
            out.push(v);
            cur = self.next_in_bucket(v);
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn lifo_inserts_at_head() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), 3, InsertionPolicy::Lifo, &mut r);
        g.insert(v(1), 3, InsertionPolicy::Lifo, &mut r);
        g.insert(v(2), 3, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.bucket_contents(3), vec![v(2), v(1), v(0)]);
    }

    #[test]
    fn fifo_inserts_at_tail() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), -2, InsertionPolicy::Fifo, &mut r);
        g.insert(v(1), -2, InsertionPolicy::Fifo, &mut r);
        g.insert(v(2), -2, InsertionPolicy::Fifo, &mut r);
        assert_eq!(g.bucket_contents(-2), vec![v(0), v(1), v(2)]);
    }

    #[test]
    fn remove_relinks_neighbors() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        for i in 0..4 {
            g.insert(v(i), 0, InsertionPolicy::Fifo, &mut r);
        }
        g.remove(v(1));
        assert_eq!(g.bucket_contents(0), vec![v(0), v(2), v(3)]);
        g.remove(v(0)); // head
        assert_eq!(g.bucket_contents(0), vec![v(2), v(3)]);
        g.remove(v(3)); // tail
        assert_eq!(g.bucket_contents(0), vec![v(2)]);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn descend_max_finds_highest_nonempty() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), -5, InsertionPolicy::Lifo, &mut r);
        g.insert(v(1), 7, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.descend_max(), Some(7));
        g.remove(v(1));
        assert_eq!(g.descend_max(), Some(-5));
        g.remove(v(0));
        assert_eq!(g.descend_max(), None);
    }

    #[test]
    fn update_moves_between_buckets() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), 2, InsertionPolicy::Lifo, &mut r);
        g.update(v(0), -1, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.key_of(v(0)), -1);
        assert!(g.head_of(2).is_none());
        assert_eq!(g.head_of(-1), Some(v(0)));
    }

    #[test]
    fn zero_delta_update_shifts_position_under_lifo() {
        // This is the "All∆gain" effect: re-inserting at the same key moves
        // the vertex to the bucket head.
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), 0, InsertionPolicy::Lifo, &mut r);
        g.insert(v(1), 0, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.bucket_contents(0), vec![v(1), v(0)]);
        g.update(v(0), 0, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.bucket_contents(0), vec![v(0), v(1)]);
    }

    #[test]
    fn clip_seeding_order_via_push_head() {
        // Seed ascending by initial gain with push_head: the head ends up
        // being the highest-initial-gain vertex, per CLIP's prescription.
        let mut g = GainContainer::new(8, 10);
        for (vertex, _initial_gain) in [(v(3), -1i64), (v(1), 2), (v(0), 5)] {
            g.push_head(vertex, 0);
        }
        assert_eq!(g.bucket_contents(0), vec![v(0), v(1), v(3)]);
    }

    #[test]
    fn clear_empties_everything() {
        let mut g = GainContainer::new(4, 5);
        let mut r = rng();
        for i in 0..4 {
            g.insert(v(i), i as i64 - 2, InsertionPolicy::Lifo, &mut r);
        }
        g.clear();
        assert!(g.is_empty());
        assert_eq!(g.descend_max(), None);
        for i in 0..4 {
            assert!(!g.contains(v(i)));
        }
        // Reusable after clear.
        g.insert(v(2), 1, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.descend_max(), Some(1));
    }

    #[test]
    fn clear_touches_only_dirtied_buckets() {
        // Regression for the O(bucket-range) clear: with a huge key range,
        // one insert must dirty exactly one bucket, and that is all the
        // following clear is allowed to walk.
        let mut g = GainContainer::new(4, 10_000);
        let mut r = rng();
        assert_eq!(g.touched_buckets(), 0);
        g.insert(v(0), 9_999, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.touched_buckets(), 1);
        g.clear();
        assert_eq!(g.touched_buckets(), 0);
        assert!(g.is_empty());
        assert!(!g.contains(v(0)));
        // Moving a vertex between buckets dirties both; re-keying within
        // the same bucket does not add a second entry.
        g.insert(v(1), -5_000, InsertionPolicy::Lifo, &mut r);
        g.update(v(1), 5_000, InsertionPolicy::Lifo, &mut r);
        g.update(v(1), 5_000, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.touched_buckets(), 2);
        g.clear();
        assert_eq!(g.touched_buckets(), 0);
        assert_eq!(g.descend_max(), None);
    }

    #[test]
    fn retarget_reuses_and_grows() {
        let mut g = GainContainer::new(4, 5);
        let mut r = rng();
        g.insert(v(0), 5, InsertionPolicy::Lifo, &mut r);
        // Shrink the key range: contents cleared, old keys now rejected.
        g.retarget(8, 2);
        assert!(g.is_empty());
        assert_eq!(g.min_key_bound(), -2);
        assert!(g.head_of(5).is_none());
        g.insert(v(6), 2, InsertionPolicy::Lifo, &mut r);
        assert_eq!(g.descend_max(), Some(2));
        // Grow both dimensions: more vertices and a wider key range.
        g.retarget(16, 12);
        assert!(g.is_empty());
        assert_eq!(g.min_key_bound(), -12);
        g.insert(v(15), -12, InsertionPolicy::Fifo, &mut r);
        g.insert(v(0), 12, InsertionPolicy::Fifo, &mut r);
        assert_eq!(g.descend_max(), Some(12));
        g.remove(v(0));
        assert_eq!(g.descend_max(), Some(-12));
    }

    #[test]
    fn next_in_bucket_walks_the_list() {
        let mut g = GainContainer::new(8, 10);
        let mut r = rng();
        g.insert(v(0), 4, InsertionPolicy::Fifo, &mut r);
        g.insert(v(1), 4, InsertionPolicy::Fifo, &mut r);
        let head = g.head_of(4).unwrap();
        assert_eq!(head, v(0));
        assert_eq!(g.next_in_bucket(head), Some(v(1)));
        assert_eq!(g.next_in_bucket(v(1)), None);
    }

    #[test]
    fn random_policy_is_deterministic_under_seed() {
        let mut g1 = GainContainer::new(8, 10);
        let mut g2 = GainContainer::new(8, 10);
        let mut r1 = SmallRng::seed_from_u64(99);
        let mut r2 = SmallRng::seed_from_u64(99);
        for i in 0..6 {
            g1.insert(v(i), 0, InsertionPolicy::Random, &mut r1);
            g2.insert(v(i), 0, InsertionPolicy::Random, &mut r2);
        }
        assert_eq!(g1.bucket_contents(0), g2.bucket_contents(0));
    }

    #[test]
    fn head_of_out_of_range_is_none() {
        let g = GainContainer::new(4, 3);
        assert!(g.head_of(4).is_none());
        assert!(g.head_of(-4).is_none());
        assert_eq!(g.min_key_bound(), -3);
    }
}
