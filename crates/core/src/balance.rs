//! Balance constraints on bipartitionings.

use crate::bisection::Bisection;
use hypart_hypergraph::{PartId, VertexId};

/// A symmetric window `[lower, upper]` that each partition's total vertex
/// weight must fall in.
///
/// The paper's "2 % balance tolerance" means each partition holds between
/// 49 % and 51 % of total cell area; "10 %" means 45–55 %. Construct those
/// with [`BalanceConstraint::with_fraction`].
///
/// If a requested window would be empty (e.g. exact bisection of an odd
/// total), the constructor widens it minimally so at least one weight value
/// is admissible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BalanceConstraint {
    lower: u64,
    upper: u64,
}

impl BalanceConstraint {
    /// Window as a fraction of total weight: each part must hold between
    /// `(1 - fraction) / 2` and `(1 + fraction) / 2` of `total`.
    ///
    /// `fraction = 0.02` gives the paper's 49–51 % window; `0.10` gives
    /// 45–55 %.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is negative, not finite, or greater than 1.
    pub fn with_fraction(total: u64, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && (0.0..=1.0).contains(&fraction),
            "balance fraction must be in [0, 1], got {fraction}"
        );
        let half = total as f64 / 2.0;
        let slack = total as f64 * fraction / 2.0;
        let lower = (half - slack).ceil() as u64;
        let upper = (half + slack).floor() as u64;
        Self::from_window(total, lower, upper)
    }

    /// Window with an absolute slack around perfect bisection:
    /// `[total/2 - slack, total/2 + slack]`. The original FM criterion
    /// (|w_A − total/2| < w_max) is `with_slack(total, w_max)`.
    pub fn with_slack(total: u64, slack: u64) -> Self {
        let half = total / 2;
        Self::from_window(total, half.saturating_sub(slack), total.div_ceil(2) + slack)
    }

    /// Explicit window `[lower, upper]`, widened minimally if empty.
    pub fn from_window(total: u64, lower: u64, upper: u64) -> Self {
        let (mut lower, mut upper) = (lower.min(total), upper.min(total));
        if lower > upper {
            // Requested window is empty (e.g. exact bisection of an odd
            // total): widen symmetrically to the nearest feasible split.
            lower = total / 2;
            upper = total.div_ceil(2);
        }
        BalanceConstraint { lower, upper }
    }

    /// Lower bound on a partition's weight.
    #[inline]
    pub fn lower(&self) -> u64 {
        self.lower
    }

    /// Upper bound on a partition's weight.
    #[inline]
    pub fn upper(&self) -> u64 {
        self.upper
    }

    /// Width of the admissible window, `upper - lower`. A cell whose area
    /// exceeds this can never move legally between feasible solutions — the
    /// corking criterion of §2.3.
    #[inline]
    pub fn window(&self) -> u64 {
        self.upper - self.lower
    }

    /// `true` if a partition of weight `w` satisfies the constraint.
    #[inline]
    pub fn contains(&self, w: u64) -> bool {
        (self.lower..=self.upper).contains(&w)
    }

    /// Distance of weight `w` from the admissible window (0 if inside).
    #[inline]
    pub fn violation(&self, w: u64) -> u64 {
        if w < self.lower {
            self.lower - w
        } else {
            w.saturating_sub(self.upper)
        }
    }

    /// Total violation of a bisection: sum of both parts' distances from
    /// the window.
    pub fn total_violation(&self, bisection: &Bisection<'_>) -> u64 {
        self.violation(bisection.part_weight(PartId::P0))
            + self.violation(bisection.part_weight(PartId::P1))
    }

    /// `true` if both parts of `bisection` are inside the window.
    pub fn is_satisfied(&self, bisection: &Bisection<'_>) -> bool {
        self.contains(bisection.part_weight(PartId::P0))
            && self.contains(bisection.part_weight(PartId::P1))
    }

    /// Whether moving `v` to the other side is *legal*: the resulting
    /// bisection is inside the window, or — when the current bisection is
    /// already infeasible — the move strictly reduces total violation.
    /// The relaxation lets the engine drift back to feasibility from an
    /// infeasible initial solution instead of deadlocking.
    pub fn is_legal_move(&self, bisection: &Bisection<'_>, v: VertexId) -> bool {
        let w = bisection.graph().vertex_weight(v);
        let from = bisection.side(v);
        let w_from = bisection.part_weight(from) - w;
        let w_to = bisection.part_weight(from.other()) + w;
        let after = self.violation(w_from) + self.violation(w_to);
        if after == 0 {
            return true;
        }
        let before = self.total_violation(bisection);
        before > 0 && after < before
    }

    /// Margin of the bisection: the smallest distance from either part's
    /// weight to a window edge (how far the solution is from *violating*
    /// the constraint). Used by [`crate::PassBestRule::MostBalanced`].
    pub fn margin(&self, bisection: &Bisection<'_>) -> i64 {
        let m = |w: u64| -> i64 {
            if self.contains(w) {
                (w - self.lower).min(self.upper - w) as i64
            } else {
                -(self.violation(w) as i64)
            }
        };
        m(bisection.part_weight(PartId::P0)).min(m(bisection.part_weight(PartId::P1)))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Bisection;
    use hypart_hypergraph::{Hypergraph, HypergraphBuilder, PartId, VertexId};

    #[test]
    fn two_percent_window_matches_paper() {
        let c = BalanceConstraint::with_fraction(10_000, 0.02);
        assert_eq!(c.lower(), 4_900);
        assert_eq!(c.upper(), 5_100);
        assert!(c.contains(5_000));
        assert!(!c.contains(4_899));
        assert_eq!(c.window(), 200);
    }

    #[test]
    fn ten_percent_window_matches_paper() {
        let c = BalanceConstraint::with_fraction(10_000, 0.10);
        assert_eq!(c.lower(), 4_500);
        assert_eq!(c.upper(), 5_500);
    }

    #[test]
    fn empty_window_is_widened() {
        // Odd total, zero tolerance: window would be empty.
        let c = BalanceConstraint::with_fraction(7, 0.0);
        assert_eq!(c.lower(), 3);
        assert_eq!(c.upper(), 4);
        assert!(c.contains(3));
        assert!(c.contains(4));
    }

    #[test]
    fn with_slack_covers_fm_criterion() {
        let c = BalanceConstraint::with_slack(100, 7);
        assert_eq!(c.lower(), 43);
        assert_eq!(c.upper(), 57);
    }

    #[test]
    fn violation_measures_distance() {
        let c = BalanceConstraint::from_window(100, 40, 60);
        assert_eq!(c.violation(50), 0);
        assert_eq!(c.violation(39), 1);
        assert_eq!(c.violation(70), 10);
    }

    #[test]
    #[should_panic(expected = "balance fraction")]
    fn bad_fraction_panics() {
        let _ = BalanceConstraint::with_fraction(10, 1.5);
    }

    fn path4() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2]], 1).unwrap();
        b.add_net([v[2], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn legal_move_respects_window() {
        let h = path4();
        let c = BalanceConstraint::with_fraction(4, 0.0); // exactly 2/2
        let sides = vec![PartId::P0, PartId::P0, PartId::P1, PartId::P1];
        let b = Bisection::new(&h, sides).unwrap();
        // Any single move makes the split 1/3, which violates 2/2.
        for v in h.vertices() {
            assert!(!c.is_legal_move(&b, v));
        }
        let loose = BalanceConstraint::with_fraction(4, 0.5); // 1..3
        for v in h.vertices() {
            assert!(loose.is_legal_move(&b, v));
        }
    }

    #[test]
    fn infeasible_start_allows_recovery_moves() {
        let h = path4();
        let c = BalanceConstraint::with_fraction(4, 0.0);
        // 4/0 split: infeasible. Moving any vertex to P1 reduces violation.
        let b = Bisection::new(&h, vec![PartId::P0; 4]).unwrap();
        assert!(!c.is_satisfied(&b));
        assert!(c.is_legal_move(&b, VertexId::new(0)));
    }

    #[test]
    fn margin_prefers_centered_solutions() {
        let h = path4();
        let c = BalanceConstraint::with_fraction(4, 0.5); // window [1,3]
        let centered =
            Bisection::new(&h, vec![PartId::P0, PartId::P0, PartId::P1, PartId::P1]).unwrap();
        let skewed =
            Bisection::new(&h, vec![PartId::P0, PartId::P1, PartId::P1, PartId::P1]).unwrap();
        assert!(c.margin(&centered) > c.margin(&skewed));
        let infeasible = Bisection::new(&h, vec![PartId::P0; 4]).unwrap();
        assert!(c.margin(&infeasible) < 0);
    }
}
