//! Shareable, immutable coarsening-hierarchy handles.
//!
//! A multilevel run spends most of its wall clock building the coarsening
//! hierarchy, yet the hierarchy is a pure function of
//! `(hypergraph, coarsening config, seed)` — a re-query against the same
//! instance with a different balance constraint or part count can reuse it
//! wholesale and pay only initial partitioning + refinement. These types
//! make that reuse safe across threads: a [`Hierarchy`] is built once,
//! frozen, wrapped in a [`SharedHierarchy`] (`Arc`), and handed to any
//! number of concurrent runs, none of which can mutate it.
//!
//! The partitioning service keys its hierarchy cache on
//! `(instance digest, coarsening config, seed)` and emits
//! `RunEvent::HierarchyReused` when a run starts from a cached handle, so
//! cache hits are observable from the trace stream.

use std::sync::Arc;

use hypart_hypergraph::{Hypergraph, PartId, VertexId};

/// One coarsening level: the coarse hypergraph plus the fine→coarse vertex
/// map.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse hypergraph.
    pub graph: Hypergraph,
    /// `map[fine_vertex] = coarse_vertex`.
    pub map: Vec<VertexId>,
}

impl CoarseLevel {
    /// Projects a coarse assignment back to the fine level.
    pub fn project(&self, coarse_assignment: &[PartId]) -> Vec<PartId> {
        self.map
            .iter()
            .map(|cv| coarse_assignment[cv.index()])
            .collect()
    }
}

/// An immutable, complete coarsening hierarchy: the levels produced by
/// coarsening a hypergraph, finest first (level 0 maps the original
/// vertices onto the first coarse graph).
///
/// Constructed once (by `build_hierarchy_with` in the multilevel crate or
/// any equivalent builder) and then only read. Wrap in a
/// [`SharedHierarchy`] to share across threads.
#[derive(Clone, Debug, Default)]
pub struct Hierarchy {
    levels: Vec<CoarseLevel>,
}

impl Hierarchy {
    /// Wraps an already-built level stack (finest first).
    pub fn new(levels: Vec<CoarseLevel>) -> Self {
        Hierarchy { levels }
    }

    /// The levels, finest first.
    pub fn levels(&self) -> &[CoarseLevel] {
        &self.levels
    }

    /// Number of coarse levels (0 means coarsening produced nothing and
    /// runs operate directly on the original hypergraph).
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when there are no coarse levels.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The coarsest graph in the hierarchy, if any level exists.
    pub fn coarsest(&self) -> Option<&Hypergraph> {
        self.levels.last().map(|l| &l.graph)
    }

    /// Unwraps back into the owned level stack (for callers that want to
    /// continue a legacy `Vec<CoarseLevel>` code path).
    pub fn into_levels(self) -> Vec<CoarseLevel> {
        self.levels
    }

    /// Freezes the hierarchy into a cheaply clonable shared handle.
    pub fn into_shared(self) -> SharedHierarchy {
        Arc::new(self)
    }
}

impl From<Vec<CoarseLevel>> for Hierarchy {
    fn from(levels: Vec<CoarseLevel>) -> Self {
        Hierarchy::new(levels)
    }
}

/// A thread-safe, immutable handle to a frozen [`Hierarchy`]. Cloning is
/// O(1); the underlying levels are never mutated after construction.
pub type SharedHierarchy = Arc<Hierarchy>;
