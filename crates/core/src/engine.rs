//! The flat FM / CLIP-FM pass engine.
//!
//! One engine implements all four flat variants of the paper's Table 1 and
//! both "Reported"-style baselines of Tables 2–3: classic-FM vs CLIP
//! selection, every tie-break/update/insertion knob, the overweight-cell
//! exclusion that fixes corking, and an optional in-bucket lookahead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::audit::{AuditError, AuditLevel, PartitionAuditor, PARANOID_MOVE_AUDIT_MAX_VERTICES};
use crate::balance::BalanceConstraint;
use crate::bisection::Bisection;
use crate::config::{FmConfig, IllegalHeadPolicy, SelectionRule, TieBreak, ZeroDeltaPolicy};
use crate::ctx::{BudgetProbe, RunCtx};
use crate::initial::generate_initial;
use crate::stats::{FmStats, PassStats, CORKED_FRACTION};
use crate::workspace::FmWorkspace;
use hypart_hypergraph::{Hypergraph, PartId, VertexId};
use hypart_trace::{RunEvent, StopReason, TraceSink};

/// Result of a full FM run on one instance.
#[derive(Clone, Debug)]
pub struct FmOutcome {
    /// Final partition assignment (index = vertex id).
    pub assignment: Vec<PartId>,
    /// Final weighted cut.
    pub cut: u64,
    /// `true` if the final solution satisfies the balance constraint.
    pub balanced: bool,
    /// Why the run ended ([`StopReason::Completed`] unless the context's
    /// budget ran out or its token was cancelled).
    pub stopped: StopReason,
    /// Detailed run statistics.
    pub stats: FmStats,
}

/// A configurable flat Fiduccia–Mattheyses 2-way partitioner.
///
/// Construct with an [`FmConfig`] (see its presets), then either
/// [`run`](FmPartitioner::run) end-to-end from a seeded random initial
/// solution, or [`refine`](FmPartitioner::refine) an existing
/// [`Bisection`] in place (as the multilevel framework does at each level).
#[derive(Clone, Debug)]
pub struct FmPartitioner {
    config: FmConfig,
}

impl FmPartitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: FmConfig) -> Self {
        FmPartitioner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &FmConfig {
        &self.config
    }

    /// The canonical run entry point: generates the configured initial
    /// solution from `ctx.seed`, then refines under the context's sink,
    /// workspace, and budget. All other `run*` conveniences delegate here.
    ///
    /// If the context's deadline expires (or its token is cancelled) the
    /// engine stops at its next cooperative check and returns the
    /// best-so-far solution with `stopped` set — see
    /// [`refine_with`](FmPartitioner::refine_with).
    pub fn run_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> FmOutcome {
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let assignment = generate_initial(h, self.config.initial, &mut rng);
        let mut bisection = match Bisection::new(h, assignment) {
            Ok(b) => b,
            Err(e) => unreachable!("generated initial solution is always valid: {e}"),
        };
        let stats = self.refine_with(&mut bisection, constraint, &mut rng, ctx);
        FmOutcome {
            cut: bisection.cut(),
            balanced: constraint.is_satisfied(&bisection),
            stopped: stats.stopped,
            assignment: bisection.into_assignment(),
            stats,
        }
    }

    /// Runs a complete partitioning of `h`: generate the configured initial
    /// solution from `seed`, then refine until no pass improves.
    ///
    /// Equivalent to [`run_with`](FmPartitioner::run_with) with a default
    /// [`RunCtx`] (no sink, no deadline).
    pub fn run(&self, h: &Hypergraph, constraint: &BalanceConstraint, seed: u64) -> FmOutcome {
        self.run_with(h, constraint, &mut RunCtx::new(seed))
    }

    /// [`run`](FmPartitioner::run), narrating the execution into `sink`
    /// (one [`RunEvent::RunBegin`]..[`RunEvent::RunEnd`] bracket with the
    /// full pass/move anatomy inside). Tracing never changes the result:
    /// the sink observes, it does not steer.
    pub fn run_traced<S: TraceSink + ?Sized>(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        seed: u64,
        sink: &S,
    ) -> FmOutcome {
        self.run_with(h, constraint, &mut RunCtx::new(seed).with_sink(&sink))
    }

    /// Refines `bisection` in place with FM passes until a pass fails to
    /// improve (lexicographically on (balance violation, cut)) or
    /// `max_passes` is reached. Returns per-pass statistics.
    ///
    /// Equivalent to [`refine_with`](FmPartitioner::refine_with) with a
    /// default [`RunCtx`].
    pub fn refine<R: Rng>(
        &self,
        bisection: &mut Bisection<'_>,
        constraint: &BalanceConstraint,
        rng: &mut R,
    ) -> FmStats {
        self.refine_with(bisection, constraint, rng, &mut RunCtx::new(0))
    }

    /// [`refine`](FmPartitioner::refine) with event emission. The
    /// returned [`FmStats`] is derivable from the stream: every
    /// `PassStats` field mirrors a [`RunEvent::PassEnd`] field, and the
    /// legacy `cut_trace` is the `cut` column of the
    /// [`RunEvent::Move`] events of that pass.
    pub fn refine_traced<R: Rng, S: TraceSink + ?Sized>(
        &self,
        bisection: &mut Bisection<'_>,
        constraint: &BalanceConstraint,
        rng: &mut R,
        sink: &S,
    ) -> FmStats {
        self.refine_with(
            bisection,
            constraint,
            rng,
            &mut RunCtx::new(0).with_sink(&sink),
        )
    }

    /// The canonical refinement entry point: FM passes on `bisection`
    /// until no pass improves, `max_passes` is reached, or the context's
    /// budget runs out. The gain containers and scratch vectors come from
    /// (and return to) `ctx.workspace`, so a caller that refines many
    /// times — the multilevel driver at every level of every start — pays
    /// the container setup O(len + buckets touched) instead of
    /// O(V + bucket range) allocate-and-zero per call. Results are
    /// identical to the workspace-free entry points.
    ///
    /// The budget is polled cooperatively: at every pass boundary and
    /// every [`RunCtx::move_check_interval`] moves inside a pass. A
    /// mid-pass stop still performs the normal best-prefix rollback, so
    /// the bisection is always a legal, coherent solution; the run then
    /// emits [`RunEvent::BudgetExhausted`] and returns with
    /// `stats.stopped` set to the [`StopReason`].
    pub fn refine_with<R: Rng>(
        &self,
        bisection: &mut Bisection<'_>,
        constraint: &BalanceConstraint,
        rng: &mut R,
        ctx: &mut RunCtx<'_>,
    ) -> FmStats {
        let mut probe = ctx.probe();
        let audit = ctx.audit();
        let sink: &dyn TraceSink = ctx.sink;
        let workspace = &mut ctx.workspace;
        let graph = bisection.graph();
        // Bucket range per selection rule: classic FM keys are true gains,
        // bounded by ±max_gain_bound; only CLIP's cumulative delta-gain
        // keys (current gain minus initial gain) need twice that.
        let bound = match self.config.selection {
            SelectionRule::Classic => graph.max_gain_bound(),
            SelectionRule::Clip => 2 * graph.max_gain_bound(),
        }
        .max(1);
        workspace.containers(2, graph.num_vertices(), bound);
        let mut state = PassState {
            config: &self.config,
            constraint,
            ws: workspace,
            last_moved_from: None,
            excluded_overweight: 0,
            audit,
            audit_failure: None,
        };

        let mut stats = FmStats {
            initial_cut: bisection.cut(),
            fixed: graph.num_fixed(),
            ..FmStats::default()
        };
        sink.emit(RunEvent::RunBegin {
            cut: stats.initial_cut,
        });
        for pass_index in 0..self.config.max_passes {
            // Pass-boundary budget check: the cheapest place to stop, and
            // the one that keeps the reported partition identical to what
            // an unbudgeted run would have had after the same passes.
            if probe.stop_now().is_some() {
                break;
            }
            let before = (constraint.total_violation(bisection), bisection.cut());
            let pass = state.run_pass(bisection, rng, sink, pass_index, &mut probe);
            stats.passes.push(pass);
            // Pass-boundary checkpoint: independently recount cut, pin
            // distribution, part weights, and fixed-vertex respect.
            if state.audit.is_on() {
                state.record_audit(PartitionAuditor::audit_bisection(bisection, None), sink);
            }
            let after = (constraint.total_violation(bisection), bisection.cut());
            // A mid-pass stop latches in the probe; the truncated pass has
            // already rolled back to its best prefix, so just exit.
            if probe.reason().is_stopped() || after >= before {
                break;
            }
        }
        stats.stopped = probe.reason();
        if stats.stopped.is_stopped() {
            sink.emit(RunEvent::BudgetExhausted {
                reason: stats.stopped,
            });
        }
        // Final checkpoint: when the engine claims a balanced solution,
        // also assert the recomputed weights sit inside the window.
        if state.audit.is_on() {
            let window = constraint
                .is_satisfied(bisection)
                .then(|| (constraint.lower(), constraint.upper()));
            state.record_audit(PartitionAuditor::audit_bisection(bisection, window), sink);
        }
        stats.audit_failure = state.audit_failure.take();
        stats.excluded_overweight = state.excluded_overweight;
        stats.final_cut = bisection.cut();
        sink.emit(RunEvent::RunEnd {
            cut: stats.final_cut,
            passes: stats.passes.len(),
        });
        stats
    }
}

/// Mutable working state shared across the passes of one refinement. The
/// containers and scratch vectors live in the borrowed [`FmWorkspace`]
/// (entries 0–1 of its pool, one per partition side), so they outlive the
/// refinement and are reused by the next one.
struct PassState<'c> {
    config: &'c FmConfig,
    constraint: &'c BalanceConstraint,
    ws: &'c mut FmWorkspace,
    last_moved_from: Option<PartId>,
    excluded_overweight: usize,
    audit: AuditLevel,
    audit_failure: Option<AuditError>,
}

impl PassState<'_> {
    fn run_pass<R: Rng, S: TraceSink + ?Sized>(
        &mut self,
        bisection: &mut Bisection<'_>,
        rng: &mut R,
        sink: &S,
        pass_index: usize,
        probe: &mut BudgetProbe,
    ) -> PassStats {
        self.seed(bisection, rng);
        // Paranoid seeding audit: every container key must agree with a
        // freshly computed gain (classic FM) or the CLIP zero-seed.
        if self.audit.is_paranoid() {
            let check = self.audit_container_keys(bisection);
            self.record_audit(check, sink);
        }
        self.ws.moves.clear();
        self.last_moved_from = None;

        let cut_before = bisection.cut();
        let violation_before = self.constraint.total_violation(bisection);
        sink.emit(RunEvent::PassBegin {
            pass: pass_index,
            cut: cut_before,
            eligible: self.ws.eligible.len(),
        });
        if self.excluded_overweight > 0 {
            sink.emit(RunEvent::OverweightExcluded {
                pass: pass_index,
                count: self.excluded_overweight,
            });
        }
        // Cached once per pass: per-move emission only for enabled sinks,
        // so a NullSink costs one branch per move at most.
        let traced = sink.is_enabled();

        // Best-prefix tracking, lexicographic on (violation, cut), with the
        // configured tie-break among equals. Prefix 0 = "make no moves".
        let mut best = PrefixScore {
            violation: violation_before,
            cut: cut_before,
            margin: self.constraint.margin(bisection),
            prefix: 0,
        };
        let mut zero_delta_events = 0u64;
        let mut nonzero_delta_events = 0u64;
        let mut cut_trace: Vec<u64> = Vec::new();

        let ended_with_leftovers = loop {
            let Some(v) = self.select(bisection) else {
                break !self.ws.pool[0].is_empty() || !self.ws.pool[1].is_empty();
            };
            let from = bisection.side(v);
            self.ws.pool[from.index()].remove(v);
            let cut_prev = bisection.cut();
            self.apply_and_update(
                bisection,
                v,
                rng,
                &mut zero_delta_events,
                &mut nonzero_delta_events,
            );
            self.ws.moves.push(v);
            self.last_moved_from = Some(from);
            if self.config.record_trace {
                cut_trace.push(bisection.cut());
            }
            if traced {
                sink.emit(RunEvent::Move {
                    vertex: v.index() as u64,
                    gain: cut_prev as i64 - bisection.cut() as i64,
                    cut: bisection.cut(),
                });
            }
            // Paranoid per-move audit, bounded to small instances: a full
            // from-scratch recount after every tentative move.
            if self.audit.is_paranoid()
                && bisection.graph().num_vertices() <= PARANOID_MOVE_AUDIT_MAX_VERTICES
            {
                let check = PartitionAuditor::audit_bisection(bisection, None);
                self.record_audit(check, sink);
            }

            let candidate = PrefixScore {
                violation: self.constraint.total_violation(bisection),
                cut: bisection.cut(),
                margin: self.constraint.margin(bisection),
                prefix: self.ws.moves.len(),
            };
            if candidate.beats(&best, self.config.pass_best) {
                best = candidate;
            }

            // Mid-pass budget check, counter-gated so the hot loop pays one
            // increment per move. Truncating here is safe: the rollback
            // below restores the best prefix seen so far, exactly as if
            // the gain containers had run empty.
            if probe.stop_every().is_some() {
                break !self.ws.pool[0].is_empty() || !self.ws.pool[1].is_empty();
            }
        };

        // Roll back everything after the best prefix.
        let rolled_back = self.ws.moves.len() - best.prefix;
        for &v in self.ws.moves[best.prefix..].iter().rev() {
            bisection.move_vertex(v);
            if traced {
                sink.emit(RunEvent::Rollback {
                    vertex: v.index() as u64,
                    cut: bisection.cut(),
                });
            }
        }
        debug_assert_eq!(bisection.cut(), best.cut);

        let moves_made = self.ws.moves.len();
        let eligible = self.ws.eligible.len();
        let corked = ended_with_leftovers
            && eligible > 0
            && moves_made * CORKED_FRACTION.1 < eligible * CORKED_FRACTION.0;
        if corked {
            sink.emit(RunEvent::Corked {
                pass: pass_index,
                moves_made,
                eligible,
            });
        }
        sink.emit(RunEvent::PassEnd {
            pass: pass_index,
            cut: bisection.cut(),
            moves_made,
            moves_rolled_back: rolled_back,
            leftovers: ended_with_leftovers,
            corked,
        });
        PassStats {
            moves_made,
            moves_rolled_back: rolled_back,
            eligible,
            cut_before,
            cut_after: bisection.cut(),
            zero_delta_events,
            nonzero_delta_events,
            corked,
            cut_trace,
        }
    }

    /// Emits an `InvariantViolation` event and records the first failure
    /// when an audit check comes back with a discrepancy.
    fn record_audit<S: TraceSink + ?Sized>(&mut self, result: Result<(), AuditError>, sink: &S) {
        if let Err(e) = result {
            sink.emit(RunEvent::InvariantViolation {
                check: e.check().to_string(),
                detail: e.to_string(),
            });
            if self.audit_failure.is_none() {
                self.audit_failure = Some(e);
            }
        }
    }

    /// Verifies every freshly seeded container key against an independent
    /// gain computation: classic FM keys are true FS−TE gains; CLIP seeds
    /// every vertex in the zero bucket.
    fn audit_container_keys(&self, bisection: &Bisection<'_>) -> Result<(), AuditError> {
        for &v in &self.ws.eligible {
            let side = bisection.side(v);
            let container = &self.ws.pool[side.index()];
            if !container.contains(v) {
                continue;
            }
            let stored = container.key_of(v);
            let expected = match self.config.selection {
                SelectionRule::Classic => bisection.gain(v),
                SelectionRule::Clip => 0,
            };
            if stored != expected {
                return Err(AuditError::GainMismatch {
                    vertex: v.index(),
                    stored,
                    recomputed: expected,
                });
            }
        }
        Ok(())
    }

    /// Seeds both gain containers for a fresh pass.
    fn seed<R: Rng>(&mut self, bisection: &Bisection<'_>, rng: &mut R) {
        let graph = bisection.graph();
        let ws = &mut *self.ws;
        ws.pool[0].clear();
        ws.pool[1].clear();
        ws.eligible.clear();
        self.excluded_overweight = 0;
        let window = self.constraint.window();
        for v in graph.vertices() {
            if graph.is_fixed(v) {
                continue;
            }
            if self.config.exclude_overweight && graph.vertex_weight(v) > window {
                self.excluded_overweight += 1;
                continue;
            }
            ws.eligible.push(v);
        }
        match self.config.selection {
            SelectionRule::Classic => {
                // Insert in vertex-id order at each vertex's initial gain —
                // itself an implicit decision; id order is the common
                // "netlist order" choice.
                for &v in &ws.eligible {
                    let side = bisection.side(v);
                    ws.pool[side.index()].insert(v, bisection.gain(v), self.config.insertion, rng);
                }
            }
            SelectionRule::Clip => {
                // CLIP prescribes: every move starts in the 0 bucket with
                // the highest-initial-gain move at the head. Seeding in
                // ascending gain order with head insertion realizes that
                // (and is precisely what puts high-degree, high-area cells
                // at the head — the corking setup of §2.3). The sort runs
                // in persistent scratch (same contents, same stable sort,
                // same order as ever) instead of a per-pass clone.
                ws.order.clear();
                ws.order.extend_from_slice(&ws.eligible);
                ws.order.sort_by_key(|&v| bisection.gain(v));
                for &v in &ws.order {
                    let side = bisection.side(v);
                    ws.pool[side.index()].push_head(v, 0);
                }
            }
        }
    }

    /// Selects the next move per the paper's selection discipline: each
    /// side exposes the head of its highest gain bucket (scanning past
    /// illegal heads per `IllegalHeadPolicy` / `lookahead`); the higher key
    /// wins; equal keys go to the `TieBreak` rule.
    fn select(&mut self, bisection: &Bisection<'_>) -> Option<VertexId> {
        let c0 = self.scan_side(bisection, PartId::P0);
        let c1 = self.scan_side(bisection, PartId::P1);
        match (c0, c1) {
            (None, None) => None,
            (Some((v, _)), None) => Some(v),
            (None, Some((v, _))) => Some(v),
            (Some((v0, k0)), Some((v1, k1))) => {
                if k0 != k1 {
                    return Some(if k0 > k1 { v0 } else { v1 });
                }
                let pick_p0 = match self.config.tie_break {
                    TieBreak::Part0 => true,
                    // "Away": not from the same partition the last vertex
                    // was moved from; first move defaults to partition 0.
                    TieBreak::Away => self.last_moved_from != Some(PartId::P0),
                    TieBreak::Toward => self.last_moved_from != Some(PartId::P1),
                };
                Some(if pick_p0 { v0 } else { v1 })
            }
        }
    }

    /// Finds the best selectable move from one side's container.
    fn scan_side(&mut self, bisection: &Bisection<'_>, side: PartId) -> Option<(VertexId, i64)> {
        let container = &mut self.ws.pool[side.index()];
        let mut key = container.descend_max()?;
        let min = container.min_key_bound();
        loop {
            if let Some(head) = container.head_of(key) {
                let mut cursor = Some(head);
                let mut examined = 0usize;
                while let Some(v) = cursor {
                    if examined >= self.config.lookahead {
                        break;
                    }
                    examined += 1;
                    if self.constraint.is_legal_move(bisection, v) {
                        return Some((v, key));
                    }
                    cursor = container.next_in_bucket(v);
                }
                // Every examined entry was illegal.
                if self.config.illegal_head == IllegalHeadPolicy::SkipSide {
                    return None;
                }
            }
            if key == min {
                return None;
            }
            key -= 1;
        }
    }

    /// Applies the move of `v` and updates neighbor gains with the generic
    /// four-cut-value delta computation the paper describes, honoring the
    /// zero-delta policy.
    fn apply_and_update<R: Rng>(
        &mut self,
        bisection: &mut Bisection<'_>,
        v: VertexId,
        rng: &mut R,
        zero_delta_events: &mut u64,
        nonzero_delta_events: &mut u64,
    ) {
        let from = bisection.side(v);
        let to = from.other();
        bisection.move_vertex(v);
        let graph = bisection.graph();
        for &e in graph.vertex_nets(v) {
            let w = i64::from(graph.net_weight(e));
            let after = [
                bisection.pins_in(e, PartId::P0),
                bisection.pins_in(e, PartId::P1),
            ];
            let mut before = after;
            before[from.index()] += 1;
            before[to.index()] -= 1;

            // Under the `Nonzero` policy nets that cannot change any pin's
            // contribution are skipped outright — exactly the fast path the
            // `Nonzero` choice legitimizes. Under `All` every pin must be
            // visited because even a zero delta triggers a re-insertion.
            if self.config.zero_delta == ZeroDeltaPolicy::Nonzero
                && before[from.index()] > 2
                && before[to.index()] > 1
            {
                continue;
            }

            for &y in graph.net_pins(e) {
                if y == v {
                    continue;
                }
                let side_y = bisection.side(y);
                if !self.ws.pool[side_y.index()].contains(y) {
                    continue; // locked this pass, fixed, or excluded
                }
                let s = side_y.index();
                let o = side_y.other().index();
                let contrib_before = i64::from(before[s] == 1) * w - i64::from(before[o] == 0) * w;
                let contrib_after = i64::from(after[s] == 1) * w - i64::from(after[o] == 0) * w;
                let delta = contrib_after - contrib_before;
                let container = &mut self.ws.pool[s];
                if delta == 0 {
                    *zero_delta_events += 1;
                    if self.config.zero_delta == ZeroDeltaPolicy::All {
                        let key = container.key_of(y);
                        container.update(y, key, self.config.insertion, rng);
                    }
                } else {
                    *nonzero_delta_events += 1;
                    let key = container.key_of(y);
                    container.update(y, key + delta, self.config.insertion, rng);
                }
            }
        }
    }
}

/// Score of a move-sequence prefix for best-prefix selection.
#[derive(Clone, Copy, Debug)]
struct PrefixScore {
    violation: u64,
    cut: u64,
    margin: i64,
    prefix: usize,
}

impl PrefixScore {
    fn beats(&self, best: &PrefixScore, rule: crate::config::PassBestRule) -> bool {
        use crate::config::PassBestRule;
        match (self.violation, self.cut).cmp(&(best.violation, best.cut)) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => match rule {
                PassBestRule::FirstSeen => false,
                PassBestRule::LastSeen => true,
                PassBestRule::MostBalanced => self.margin > best.margin,
            },
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::{InitialSolution, InsertionPolicy, PassBestRule, TieBreak};
    use hypart_hypergraph::HypergraphBuilder;

    /// Two unit-weight cliques of size k bridged by `bridges` nets.
    fn two_clusters(k: usize, bridges: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let left: Vec<_> = (0..k).map(|_| b.add_vertex(1)).collect();
        let right: Vec<_> = (0..k).map(|_| b.add_vertex(1)).collect();
        for grp in [&left, &right] {
            for i in 0..k {
                for j in (i + 1)..k {
                    b.add_net([grp[i], grp[j]], 1).unwrap();
                }
            }
        }
        for i in 0..bridges {
            b.add_net([left[i % k], right[i % k]], 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_the_natural_two_cluster_cut() {
        let h = two_clusters(6, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        for seed in 0..5 {
            let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, seed);
            assert_eq!(out.cut, 2, "seed {seed}");
            assert!(out.balanced);
        }
    }

    #[test]
    fn clip_also_finds_the_cut() {
        let h = two_clusters(6, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        let out = FmPartitioner::new(FmConfig::clip()).run(&h, &c, 1);
        assert_eq!(out.cut, 2);
        assert!(out.balanced);
    }

    #[test]
    fn all_knob_combinations_produce_legal_solutions() {
        let h = two_clusters(5, 3);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        for selection in [SelectionRule::Classic, SelectionRule::Clip] {
            for tie in [TieBreak::Away, TieBreak::Part0, TieBreak::Toward] {
                for zd in [ZeroDeltaPolicy::All, ZeroDeltaPolicy::Nonzero] {
                    for ins in [
                        InsertionPolicy::Lifo,
                        InsertionPolicy::Fifo,
                        InsertionPolicy::Random,
                    ] {
                        let cfg = FmConfig::default()
                            .with_selection(selection)
                            .with_tie_break(tie)
                            .with_zero_delta(zd)
                            .with_insertion(ins);
                        let out = FmPartitioner::new(cfg).run(&h, &c, 7);
                        assert!(out.balanced, "{cfg:?}");
                        assert!(out.cut <= 10, "{cfg:?} cut {}", out.cut);
                    }
                }
            }
        }
    }

    #[test]
    fn refinement_never_worsens_the_cut() {
        let h = two_clusters(8, 5);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, 3);
        assert!(out.stats.final_cut <= out.stats.initial_cut);
    }

    #[test]
    fn fixed_vertices_never_move() {
        let h = two_clusters(4, 1);
        // Fix one left-cluster vertex on the *wrong* side.
        let h = h.with_fixed(VertexId::new(0), Some(PartId::P1));
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.25);
        let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, 5);
        assert_eq!(out.assignment[0], PartId::P1);
    }

    #[test]
    fn overweight_exclusion_reports_excluded_cells() {
        let mut b = HypergraphBuilder::new();
        let macro_cell = b.add_vertex(1000);
        let v: Vec<_> = (0..10).map(|_| b.add_vertex(1)).collect();
        b.add_net([macro_cell, v[0]], 1).unwrap();
        for i in 0..9 {
            b.add_net([v[i], v[i + 1]], 1).unwrap();
        }
        let h = b.build().unwrap();
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.02);
        let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, 1);
        assert_eq!(out.stats.excluded_overweight, 1);
    }

    #[test]
    fn reported_baselines_are_weaker_on_average() {
        let h = two_clusters(7, 4);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        let strong: u64 = (0..20)
            .map(|s| FmPartitioner::new(FmConfig::lifo()).run(&h, &c, s).cut)
            .sum();
        let weak: u64 = (0..20)
            .map(|s| {
                FmPartitioner::new(FmConfig::reported_lifo())
                    .run(&h, &c, s)
                    .cut
            })
            .sum();
        assert!(
            strong <= weak,
            "strong total {strong} should not exceed weak total {weak}"
        );
    }

    #[test]
    fn pass_best_rules_all_converge() {
        let h = two_clusters(5, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        for rule in [
            PassBestRule::FirstSeen,
            PassBestRule::LastSeen,
            PassBestRule::MostBalanced,
        ] {
            let cfg = FmConfig::default().with_pass_best(rule);
            let out = FmPartitioner::new(cfg).run(&h, &c, 11);
            assert!(out.balanced, "{rule:?}");
            assert_eq!(out.cut, 2, "{rule:?}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let h = two_clusters(6, 3);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        let a = FmPartitioner::new(FmConfig::clip()).run(&h, &c, 123);
        let b = FmPartitioner::new(FmConfig::clip()).run(&h, &c, 123);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn lookahead_still_produces_legal_results() {
        let h = two_clusters(5, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        let cfg = FmConfig::clip().with_lookahead(8);
        let out = FmPartitioner::new(cfg).run(&h, &c, 2);
        assert!(out.balanced);
    }

    #[test]
    fn empty_graph_runs_cleanly() {
        let h = HypergraphBuilder::new().build().unwrap();
        let c = BalanceConstraint::with_fraction(0, 0.02);
        let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, 0);
        assert_eq!(out.cut, 0);
        assert!(out.assignment.is_empty());
    }

    #[test]
    fn paranoid_audit_passes_clean_and_emits_nothing() {
        use crate::audit::AuditLevel;
        use hypart_trace::MemorySink;
        let h = two_clusters(6, 3);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        for cfg in [FmConfig::lifo(), FmConfig::clip()] {
            let sink = MemorySink::new();
            let mut ctx = RunCtx::new(9)
                .with_audit(AuditLevel::Paranoid)
                .with_sink(&sink);
            let out = FmPartitioner::new(cfg).run_with(&h, &c, &mut ctx);
            assert!(
                out.stats.audit_failure.is_none(),
                "{:?}",
                out.stats.audit_failure
            );
            assert!(
                !sink
                    .events()
                    .iter()
                    .any(|e| matches!(e, RunEvent::InvariantViolation { .. })),
                "clean run must not emit violations"
            );
        }
    }

    #[test]
    fn audit_off_is_the_default_and_adds_no_events() {
        let h = two_clusters(5, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, 3);
        assert!(out.stats.audit_failure.is_none());
    }

    #[test]
    fn uniform_random_initial_recovers_feasibility() {
        let h = two_clusters(8, 2);
        let c = BalanceConstraint::with_slack(h.total_vertex_weight(), 1);
        let cfg = FmConfig::lifo().with_initial(InitialSolution::UniformRandom);
        // Several seeds: even badly unbalanced starts must end feasible.
        for seed in 0..10 {
            let out = FmPartitioner::new(cfg).run(&h, &c, seed);
            assert!(out.balanced, "seed {seed}");
        }
    }
}
