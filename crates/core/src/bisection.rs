//! Incremental bipartitioning state.

use std::error::Error;
use std::fmt;

use hypart_hypergraph::{Hypergraph, NetId, PartId, VertexId};

/// Error constructing a [`Bisection`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BisectionError {
    /// The assignment vector length does not match the vertex count.
    LengthMismatch {
        /// Vertices in the hypergraph.
        expected: usize,
        /// Entries in the supplied assignment.
        actual: usize,
    },
    /// A fixed vertex was assigned to the wrong partition.
    FixedViolated {
        /// The offending vertex.
        vertex: VertexId,
        /// The partition it is fixed in.
        fixed: PartId,
        /// The partition the assignment put it in.
        assigned: PartId,
    },
}

impl fmt::Display for BisectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BisectionError::LengthMismatch { expected, actual } => write!(
                f,
                "assignment has {actual} entries but hypergraph has {expected} vertices"
            ),
            BisectionError::FixedViolated {
                vertex,
                fixed,
                assigned,
            } => write!(
                f,
                "vertex {vertex:?} is fixed in partition {fixed} but assigned to {assigned}"
            ),
        }
    }
}

impl Error for BisectionError {}

/// A 2-way partitioning of a hypergraph with incrementally maintained cut
/// weight, per-partition vertex weights, and per-net pin distribution.
///
/// All mutation goes through [`move_vertex`](Bisection::move_vertex), which
/// runs in `O(deg(v))` and keeps every derived quantity consistent — this is
/// the substrate both the FM engine and all evaluation objectives share.
///
/// # Example
///
/// ```
/// use hypart_core::Bisection;
/// use hypart_hypergraph::{HypergraphBuilder, PartId, VertexId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..3).map(|_| b.add_vertex(1)).collect();
/// b.add_net([v[0], v[1], v[2]], 1)?;
/// let h = b.build()?;
/// let mut bis = Bisection::new(&h, vec![PartId::P0, PartId::P0, PartId::P1])?;
/// assert_eq!(bis.cut(), 1);
/// bis.move_vertex(VertexId::new(2));
/// assert_eq!(bis.cut(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Bisection<'h> {
    graph: &'h Hypergraph,
    side: Vec<PartId>,
    part_weight: [u64; 2],
    pins_in: Vec<[u32; 2]>,
    cut_weight: u64,
    num_moves: u64,
}

impl<'h> Bisection<'h> {
    /// Creates a bisection over `graph` from an explicit assignment.
    ///
    /// # Errors
    ///
    /// Fails if `assignment.len() != graph.num_vertices()` or if a fixed
    /// vertex is assigned to the wrong partition.
    pub fn new(graph: &'h Hypergraph, assignment: Vec<PartId>) -> Result<Self, BisectionError> {
        if assignment.len() != graph.num_vertices() {
            return Err(BisectionError::LengthMismatch {
                expected: graph.num_vertices(),
                actual: assignment.len(),
            });
        }
        for v in graph.vertices() {
            if let Some(fixed) = graph.fixed_part(v) {
                if assignment[v.index()] != fixed {
                    return Err(BisectionError::FixedViolated {
                        vertex: v,
                        fixed,
                        assigned: assignment[v.index()],
                    });
                }
            }
        }
        let mut part_weight = [0u64; 2];
        for v in graph.vertices() {
            part_weight[assignment[v.index()].index()] += graph.vertex_weight(v);
        }
        let mut pins_in = vec![[0u32; 2]; graph.num_nets()];
        let mut cut_weight = 0u64;
        for e in graph.nets() {
            let counts = &mut pins_in[e.index()];
            for &v in graph.net_pins(e) {
                counts[assignment[v.index()].index()] += 1;
            }
            if counts[0] > 0 && counts[1] > 0 {
                cut_weight += u64::from(graph.net_weight(e));
            }
        }
        Ok(Bisection {
            graph,
            side: assignment,
            part_weight,
            pins_in,
            cut_weight,
            num_moves: 0,
        })
    }

    /// The underlying hypergraph.
    #[inline]
    pub fn graph(&self) -> &'h Hypergraph {
        self.graph
    }

    /// Current partition of vertex `v`.
    #[inline]
    pub fn side(&self, v: VertexId) -> PartId {
        self.side[v.index()]
    }

    /// Total vertex weight currently in partition `p`.
    #[inline]
    pub fn part_weight(&self, p: PartId) -> u64 {
        self.part_weight[p.index()]
    }

    /// Current weighted cut: sum of weights of nets with pins on both sides.
    #[inline]
    pub fn cut(&self) -> u64 {
        self.cut_weight
    }

    /// How many pins of net `e` are currently in partition `p`.
    #[inline]
    pub fn pins_in(&self, e: NetId, p: PartId) -> u32 {
        self.pins_in[e.index()][p.index()]
    }

    /// `true` if net `e` currently has pins on both sides.
    #[inline]
    pub fn is_cut(&self, e: NetId) -> bool {
        let c = self.pins_in[e.index()];
        c[0] > 0 && c[1] > 0
    }

    /// Number of `move_vertex` calls performed so far (diagnostics).
    #[inline]
    pub fn num_moves(&self) -> u64 {
        self.num_moves
    }

    /// The full assignment as a slice (index = vertex id).
    #[inline]
    pub fn assignment(&self) -> &[PartId] {
        &self.side
    }

    /// Consumes the bisection, returning the assignment vector.
    pub fn into_assignment(self) -> Vec<PartId> {
        self.side
    }

    /// Moves vertex `v` to the opposite partition, updating cut, partition
    /// weights, and pin counts in `O(deg(v))`, and returns the realized gain
    /// (decrease in weighted cut; negative if the cut grew).
    ///
    /// Balance legality and fixed-vertex constraints are *not* checked here
    /// — they are engine policy; see
    /// [`BalanceConstraint::is_legal_move`](crate::BalanceConstraint::is_legal_move).
    pub fn move_vertex(&mut self, v: VertexId) -> i64 {
        let from = self.side[v.index()];
        let to = from.other();
        let w = self.graph.vertex_weight(v);
        let cut_before = self.cut_weight;
        for &e in self.graph.vertex_nets(v) {
            let counts = &mut self.pins_in[e.index()];
            let was_cut = counts[0] > 0 && counts[1] > 0;
            counts[from.index()] -= 1;
            counts[to.index()] += 1;
            let now_cut = counts[0] > 0 && counts[1] > 0;
            let we = u64::from(self.graph.net_weight(e));
            match (was_cut, now_cut) {
                (false, true) => self.cut_weight += we,
                (true, false) => self.cut_weight -= we,
                _ => {}
            }
        }
        self.side[v.index()] = to;
        self.part_weight[from.index()] -= w;
        self.part_weight[to.index()] += w;
        self.num_moves += 1;
        cut_before as i64 - self.cut_weight as i64
    }

    /// The FM gain of moving `v` to the other side — the decrease in
    /// weighted cut the move would realize — computed in `O(deg(v))`
    /// without mutating anything: `FS(v) − TE(v)` in FM terminology.
    pub fn gain(&self, v: VertexId) -> i64 {
        let from = self.side[v.index()];
        let to = from.other();
        let mut gain = 0i64;
        for &e in self.graph.vertex_nets(v) {
            let counts = self.pins_in[e.index()];
            let we = i64::from(self.graph.net_weight(e));
            if counts[from.index()] == 1 {
                // v is the only pin on its side: the net becomes uncut.
                gain += we;
            }
            if counts[to.index()] == 0 {
                // Net is entirely on v's side: the move cuts it.
                gain -= we;
            }
        }
        gain
    }

    /// Recomputes the cut from scratch (reference implementation for tests
    /// and debug assertions).
    pub fn recompute_cut(&self) -> u64 {
        let mut cut = 0u64;
        for e in self.graph.nets() {
            let mut seen = [false; 2];
            for &v in self.graph.net_pins(e) {
                seen[self.side[v.index()].index()] = true;
            }
            if seen[0] && seen[1] {
                cut += u64::from(self.graph.net_weight(e));
            }
        }
        cut
    }

    /// Absolute imbalance `|w(P0) - w(P1)|`.
    pub fn imbalance(&self) -> u64 {
        self.part_weight[0].abs_diff(self.part_weight[1])
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_hypergraph::HypergraphBuilder;

    fn sample() -> Hypergraph {
        // nets: {0,1} w1, {1,2,3} w2, {0,3} w1
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = [2u64, 1, 1, 3].iter().map(|&w| b.add_vertex(w)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        b.add_net([v[1], v[2], v[3]], 2).unwrap();
        b.add_net([v[0], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn initial_state_is_consistent() {
        let h = sample();
        let b = Bisection::new(&h, vec![PartId::P0, PartId::P0, PartId::P1, PartId::P1]).unwrap();
        assert_eq!(b.part_weight(PartId::P0), 3);
        assert_eq!(b.part_weight(PartId::P1), 4);
        assert_eq!(b.cut(), 3); // net1 (w2) and net2 (w1) are cut
        assert_eq!(b.cut(), b.recompute_cut());
        assert_eq!(b.pins_in(NetId::new(1), PartId::P0), 1);
        assert_eq!(b.pins_in(NetId::new(1), PartId::P1), 2);
        assert!(b.is_cut(NetId::new(1)));
        assert!(!b.is_cut(NetId::new(0)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let h = sample();
        let err = Bisection::new(&h, vec![PartId::P0; 3]).unwrap_err();
        assert!(matches!(err, BisectionError::LengthMismatch { .. }));
    }

    #[test]
    fn fixed_violation_rejected() {
        let h = sample().with_fixed(VertexId::new(0), Some(PartId::P1));
        let err = Bisection::new(&h, vec![PartId::P0; 4]).unwrap_err();
        assert!(matches!(err, BisectionError::FixedViolated { .. }));
    }

    #[test]
    fn move_updates_everything_incrementally() {
        let h = sample();
        let mut b =
            Bisection::new(&h, vec![PartId::P0, PartId::P0, PartId::P1, PartId::P1]).unwrap();
        let predicted = b.gain(VertexId::new(1));
        let realized = b.move_vertex(VertexId::new(1));
        assert_eq!(predicted, realized);
        assert_eq!(b.cut(), b.recompute_cut());
        assert_eq!(b.side(VertexId::new(1)), PartId::P1);
        assert_eq!(b.part_weight(PartId::P0), 2);
        assert_eq!(b.part_weight(PartId::P1), 5);
        assert_eq!(b.num_moves(), 1);
    }

    #[test]
    fn move_back_restores_cut() {
        let h = sample();
        let assignment = vec![PartId::P0, PartId::P1, PartId::P0, PartId::P1];
        let mut b = Bisection::new(&h, assignment.clone()).unwrap();
        let cut0 = b.cut();
        b.move_vertex(VertexId::new(2));
        b.move_vertex(VertexId::new(2));
        assert_eq!(b.cut(), cut0);
        assert_eq!(b.assignment(), assignment.as_slice());
    }

    #[test]
    fn gain_matches_brute_force_on_all_vertices() {
        let h = sample();
        let b = Bisection::new(&h, vec![PartId::P0, PartId::P1, PartId::P0, PartId::P1]).unwrap();
        for v in h.vertices() {
            let mut probe = b.clone();
            let realized = probe.move_vertex(v);
            assert_eq!(b.gain(v), realized, "gain mismatch for {v:?}");
        }
    }

    #[test]
    fn imbalance_and_assignment_accessors() {
        let h = sample();
        let b = Bisection::new(&h, vec![PartId::P0; 4]).unwrap();
        assert_eq!(b.imbalance(), 7);
        assert_eq!(b.cut(), 0);
        let parts = b.into_assignment();
        assert_eq!(parts.len(), 4);
    }
}
