//! Parallel refinement via synchronized move rounds.
//!
//! The serial FM engine is inherently sequential: every move depends on
//! the gain updates of the one before it. The parallel engine therefore
//! refines in *rounds* instead of passes:
//!
//! 1. **Proposal** — the vertex set is split into one contiguous shard
//!    per lane; each shard scans its vertices against a *frozen*
//!    snapshot of the bisection and proposes every vertex with a strictly
//!    positive gain (plus, while the solution is unbalanced, every free
//!    vertex on the heavier side, so the round can restore legality the
//!    way an FM pass would).
//! 2. **Commit** — the shard proposals are concatenated (shards are
//!    contiguous ascending ranges, so the merged list is vertex-ascending
//!    regardless of the shard count), sorted by (gain descending, vertex
//!    ascending), and applied serially. Each proposal's gain is
//!    *recomputed against the live state* before applying; a move is
//!    applied only if it strictly reduces the balance violation, or
//!    keeps the solution legal while strictly reducing the cut. Stale
//!    proposals — invalidated by an earlier commit this round — simply
//!    fail the recheck and are skipped.
//!
//! Every applied move strictly decreases the lexicographic objective
//! `(total balance violation, cut)`, so rounds terminate without a move
//! budget; [`PAR_REFINE_MAX_ROUNDS`] is a belt-and-braces cap.
//!
//! # Determinism contract
//!
//! The proposal set is a pure function of the frozen snapshot, and the
//! merged proposal list is identical for *any* shard count; the commit
//! is serial with a total ordering key. Round refinement is therefore
//! bitwise thread-count-invariant — deterministic and non-deterministic
//! engine modes share this code; the modes differ only in coarsening.
//!
//! # Fault isolation
//!
//! Each shard's proposal scan runs inside `catch_unwind`. A panicking
//! shard (e.g. an injected [`FaultPlan`](crate::FaultPlan) shard fault)
//! is announced with a `ShardAborted` trace event, its proposals are
//! discarded, and the round commits the surviving shards' proposals —
//! best-of-survivors, mirroring the multi-start driver's per-start
//! isolation. The lane's panic flag and buffers are reset afterwards, so
//! a poisoned lock or a wedged round is impossible by construction.

use std::panic::{catch_unwind, AssertUnwindSafe};

use hypart_hypergraph::{PartId, VertexId};
use hypart_trace::{RunEvent, StopReason, TraceSink};

use crate::audit::{AuditError, PartitionAuditor, PARANOID_MOVE_AUDIT_MAX_VERTICES};
use crate::balance::BalanceConstraint;
use crate::bisection::Bisection;
use crate::ctx::RunCtx;
use crate::par::{MoveProposal, ParLane};

/// Upper bound on rounds per [`refine_rounds_parallel`] call. Rounds
/// strictly improve `(violation, cut)`, so this cap only matters as a
/// guard against bookkeeping bugs.
pub const PAR_REFINE_MAX_ROUNDS: usize = 64;

/// What one parallel round-refinement run did.
#[derive(Clone, Debug, Default)]
pub struct ParRefineOutcome {
    /// Rounds executed (proposal + commit cycles).
    pub rounds: usize,
    /// Moves applied across all rounds.
    pub moves_applied: usize,
    /// Shard panics isolated across all rounds.
    pub aborted_shards: usize,
    /// Why the run ended.
    pub stopped: StopReason,
    /// First audit discrepancy observed, if auditing was on.
    pub audit_failure: Option<AuditError>,
}

/// Emits an `InvariantViolation` and records the first failure.
fn record_audit(
    result: Result<(), AuditError>,
    sink: &dyn TraceSink,
    failure: &mut Option<AuditError>,
) {
    if let Err(e) = result {
        sink.emit(RunEvent::InvariantViolation {
            check: e.check().to_string(),
            detail: e.to_string(),
        });
        if failure.is_none() {
            *failure = Some(e);
        }
    }
}

/// Scans one contiguous vertex shard against the frozen bisection and
/// fills `out` with its move proposals.
fn propose_shard(
    bisection: &Bisection<'_>,
    range: std::ops::Range<usize>,
    heavy: Option<PartId>,
    out: &mut Vec<MoveProposal>,
) {
    let h = bisection.graph();
    for raw in range {
        let v = VertexId::from_index(raw);
        if h.fixed_part(v).is_some() {
            continue;
        }
        let gain = bisection.gain(v);
        if gain > 0 || heavy == Some(bisection.side(v)) {
            out.push(MoveProposal {
                vertex: raw as u32,
                gain,
            });
        }
    }
}

/// Refines `bisection` in synchronized parallel move rounds using the
/// context's lanes as shards (see the module docs for the round
/// anatomy, determinism contract, and fault isolation).
///
/// `lanes` must be non-empty; the shard count equals `lanes.len()`.
/// Budgets and cancellation are honoured at round boundaries and every
/// [`RunCtx::move_check_interval`] commits; auditing follows the
/// context's [`AuditLevel`](crate::AuditLevel) (round boundaries, plus
/// per-move recounts under `Paranoid` on small instances).
pub fn refine_rounds_parallel(
    bisection: &mut Bisection<'_>,
    constraint: &BalanceConstraint,
    lanes: &mut [ParLane],
    ctx: &RunCtx<'_>,
) -> ParRefineOutcome {
    assert!(!lanes.is_empty(), "parallel refinement needs >= 1 lane");
    let mut probe = ctx.probe();
    let sink = ctx.sink;
    let enabled = sink.is_enabled();
    let audit = ctx.audit();
    let fault = ctx.fault_plan().clone();
    let n = bisection.graph().num_vertices();
    let shards = lanes.len();
    let mut out = ParRefineOutcome::default();
    let mut commit: Vec<MoveProposal> = Vec::new();

    sink.emit(RunEvent::RunBegin {
        cut: bisection.cut(),
    });

    for round in 0..PAR_REFINE_MAX_ROUNDS {
        if probe.stop_now().is_some() {
            break;
        }
        // While the solution is unbalanced, the heavier side proposes
        // every free vertex (any-gain), so the round can restore
        // legality; once legal, only strict cut improvements qualify.
        let w0 = bisection.part_weight(PartId::P0);
        let w1 = bisection.part_weight(PartId::P1);
        let heavy = if constraint.violation(w0) + constraint.violation(w1) > 0 {
            Some(if w0 >= w1 { PartId::P0 } else { PartId::P1 })
        } else {
            None
        };

        // Proposal phase: one job per shard, each against the frozen
        // snapshot. A shard panic is contained inside the job.
        {
            let frozen: &Bisection<'_> = &*bisection;
            let fault = &fault;
            rayon::scope(|sc| {
                for (shard, lane) in lanes.iter_mut().enumerate() {
                    let start = shard * n / shards;
                    let end = (shard + 1) * n / shards;
                    sc.spawn(move |_| {
                        lane.moves.clear();
                        lane.aborted = false;
                        let scan = catch_unwind(AssertUnwindSafe(|| {
                            fault.trip_shard(round as u64, shard as u64);
                            propose_shard(frozen, start..end, heavy, &mut lane.moves);
                        }));
                        if scan.is_err() {
                            lane.moves.clear();
                            lane.aborted = true;
                        }
                    });
                }
            });
        }
        commit.clear();
        for (shard, lane) in lanes.iter_mut().enumerate() {
            if lane.aborted {
                lane.aborted = false;
                out.aborted_shards += 1;
                sink.emit(RunEvent::ShardAborted {
                    round: round as u64,
                    shard: shard as u64,
                });
            } else {
                commit.extend_from_slice(&lane.moves);
            }
        }
        if commit.is_empty() {
            break;
        }
        // Highest snapshot gain first; vertex id breaks ties, making the
        // commit order total and shard-count-independent.
        commit.sort_unstable_by(|a, b| b.gain.cmp(&a.gain).then_with(|| a.vertex.cmp(&b.vertex)));

        sink.emit(RunEvent::PassBegin {
            pass: round,
            cut: bisection.cut(),
            eligible: commit.len(),
        });
        let mut applied = 0usize;
        for p in &commit {
            if probe.stop_every().is_some() {
                break;
            }
            let v = VertexId::new(p.vertex);
            let from = bisection.side(v);
            let w = bisection.graph().vertex_weight(v);
            let wf = bisection.part_weight(from);
            let wt = bisection.part_weight(from.other());
            let old_violation = constraint.violation(wf) + constraint.violation(wt);
            let new_violation = constraint.violation(wf - w) + constraint.violation(wt + w);
            // Live recheck: the snapshot gain may be stale after earlier
            // commits this round.
            let gain = bisection.gain(v);
            let apply = if old_violation > 0 {
                new_violation < old_violation
            } else {
                gain > 0 && new_violation == 0
            };
            if !apply {
                continue;
            }
            let realized = bisection.move_vertex(v);
            applied += 1;
            if enabled {
                sink.emit(RunEvent::Move {
                    vertex: u64::from(p.vertex),
                    gain: realized,
                    cut: bisection.cut(),
                });
            }
            if audit.is_paranoid() && n <= PARANOID_MOVE_AUDIT_MAX_VERTICES {
                record_audit(
                    PartitionAuditor::audit_bisection(bisection, None),
                    sink,
                    &mut out.audit_failure,
                );
            }
        }
        sink.emit(RunEvent::PassEnd {
            pass: round,
            cut: bisection.cut(),
            moves_made: applied,
            moves_rolled_back: 0,
            leftovers: false,
            corked: false,
        });
        if audit.is_on() {
            record_audit(
                PartitionAuditor::audit_bisection(bisection, None),
                sink,
                &mut out.audit_failure,
            );
        }
        out.rounds = round + 1;
        out.moves_applied += applied;
        if applied == 0 {
            break;
        }
    }

    out.stopped = probe.reason();
    if out.stopped.is_stopped() {
        sink.emit(RunEvent::BudgetExhausted {
            reason: out.stopped,
        });
    }
    sink.emit(RunEvent::RunEnd {
        cut: bisection.cut(),
        passes: out.rounds,
    });
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::generate_initial;
    use crate::par::ensure_lanes;
    use crate::AuditLevel;
    use crate::FaultPlan;
    use crate::InitialSolution;
    use hypart_trace::MemorySink;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn two_blocks() -> hypart_hypergraph::Hypergraph {
        // Two 8-vertex cliques of 2-pin nets joined by one bridge net.
        let mut b = hypart_hypergraph::HypergraphBuilder::new();
        let v: Vec<_> = (0..16).map(|_| b.add_vertex(1)).collect();
        for block in 0..2 {
            let base = block * 8;
            for i in 0..8 {
                for j in (i + 1)..8 {
                    b.add_net([v[base + i], v[base + j]], 1).unwrap();
                }
            }
        }
        b.add_net([v[3], v[11]], 1).unwrap();
        b.build().unwrap()
    }

    fn refine(
        shards: usize,
        assignment: Vec<PartId>,
        ctx: &mut RunCtx<'_>,
    ) -> (Vec<PartId>, u64, ParRefineOutcome) {
        let h = two_blocks();
        let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.25);
        let mut bisection = Bisection::new(&h, assignment).unwrap();
        let mut lanes = Vec::new();
        ensure_lanes(&mut lanes, shards);
        let out = refine_rounds_parallel(&mut bisection, &constraint, &mut lanes, ctx);
        let cut = bisection.cut();
        (bisection.into_assignment(), cut, out)
    }

    fn scrambled() -> Vec<PartId> {
        let h = two_blocks();
        let mut rng = SmallRng::seed_from_u64(9);
        generate_initial(&h, InitialSolution::RandomBalanced, &mut rng)
    }

    #[test]
    fn rounds_repair_a_two_vertex_swap_to_the_block_cut() {
        // Blocks split perfectly except v0 and v8 are exchanged; both
        // carry strong positive gains, so greedy rounds must restore the
        // block split and leave only the bridge net cut.
        let mut start = vec![PartId::P0; 16];
        for side in start.iter_mut().skip(8) {
            *side = PartId::P1;
        }
        start[0] = PartId::P1;
        start[8] = PartId::P0;
        let mut ctx = RunCtx::new(0).with_audit(AuditLevel::Paranoid);
        let (_, cut, out) = refine(4, start, &mut ctx);
        assert_eq!(cut, 1);
        assert_eq!(out.stopped, StopReason::Completed);
        assert!(out.audit_failure.is_none());
    }

    #[test]
    fn rounds_are_shard_count_invariant() {
        let start = scrambled();
        let mut reference = None;
        for shards in [1usize, 2, 3, 8] {
            let sink = MemorySink::new();
            let mut ctx = RunCtx::new(0).with_sink(&sink);
            let (assignment, cut, out) = refine(shards, start.clone(), &mut ctx);
            assert_eq!(out.stopped, StopReason::Completed);
            let events = sink.take();
            match &reference {
                None => reference = Some((assignment, cut, events)),
                Some((ref_assignment, ref_cut, ref_events)) => {
                    assert_eq!(&assignment, ref_assignment, "shards={shards}");
                    assert_eq!(&cut, ref_cut, "shards={shards}");
                    assert_eq!(&events, ref_events, "shards={shards}");
                }
            }
        }
    }

    #[test]
    fn unbalanced_start_is_repaired() {
        // All vertices on one side: rounds must first restore legality.
        let start = vec![PartId::P0; 16];
        let mut ctx = RunCtx::new(0).with_audit(AuditLevel::Paranoid);
        let (assignment, _, out) = refine(4, start, &mut ctx);
        let h = two_blocks();
        let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.25);
        let bisection = Bisection::new(&h, assignment).unwrap();
        assert_eq!(constraint.total_violation(&bisection), 0);
        assert!(out.audit_failure.is_none());
        assert!(out.moves_applied >= 4);
    }

    #[test]
    fn shard_panic_degrades_to_best_of_survivors() {
        let start = scrambled();
        let sink = MemorySink::new();
        let mut ctx = RunCtx::new(0)
            .with_sink(&sink)
            .with_audit(AuditLevel::Paranoid)
            .with_fault_plan(FaultPlan::panic_in_shard(0, 1));
        let (_, _, out) = refine(4, start, &mut ctx);
        assert!(out.aborted_shards >= 1);
        assert!(out.audit_failure.is_none());
        let aborted: Vec<_> = sink
            .take()
            .into_iter()
            .filter(|e| matches!(e, RunEvent::ShardAborted { .. }))
            .collect();
        assert_eq!(aborted, vec![RunEvent::ShardAborted { round: 0, shard: 1 }]);
    }

    #[test]
    fn expired_deadline_stops_before_any_round() {
        let start = scrambled();
        let mut ctx = RunCtx::new(0)
            .with_deadline(std::time::Instant::now() - std::time::Duration::from_millis(1));
        let (_, _, out) = refine(2, start, &mut ctx);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.stopped, StopReason::Deadline);
    }
}
