//! Independent invariant auditing and deterministic fault injection.
//!
//! The paper's thesis is that *silent* implementation decisions corrupt
//! experimental conclusions (§2.2–2.3). A gain-bookkeeping bug is the
//! silent decision nobody made: the engine would keep reporting legal
//! cuts that are simply wrong, and every downstream table would inherit
//! the error. The [`PartitionAuditor`] closes that hole by recomputing
//! cut, part areas, balance legality, and fixed-vertex respect **from
//! scratch** — walking the raw hypergraph and the assignment, sharing no
//! bookkeeping with the incremental hot path — and comparing against what
//! the engine claims.
//!
//! Auditing is opt-in via [`AuditLevel`] on
//! [`RunCtx`](crate::RunCtx): `Off` (the default) does zero work and
//! emits zero events, `Checkpoints` verifies at pass/level/start
//! boundaries, and `Paranoid` adds per-move cut verification on small
//! instances plus gain-container key checks at pass seeding.
//!
//! [`FaultPlan`] is the other half of the robustness story: a
//! deterministic, seed-derivable description of a fault to inject (a
//! panicking start, a failing trace-sink write, an early deadline), so
//! the degradation paths are exercised in CI rather than assumed.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use hypart_hypergraph::{Hypergraph, PartId, VertexId};

use crate::bisection::Bisection;

/// How much independent verification runs during a partitioning run.
///
/// | Level | Work | When it fires |
/// |---|---|---|
/// | `Off` | none — zero events, zero overhead | never (default) |
/// | `Checkpoints` | full from-scratch audit | pass / level / start boundaries |
/// | `Paranoid` | `Checkpoints` + per-move cut recompute on small instances + gain-key checks at pass seeding | every boundary and every move |
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AuditLevel {
    /// No auditing at all. Golden trace streams are bitwise-unchanged.
    #[default]
    Off,
    /// Audit at pass, level, and start boundaries.
    Checkpoints,
    /// Audit boundaries *and* every tentative move (cut recompute is
    /// restricted to instances of at most
    /// [`PARANOID_MOVE_AUDIT_MAX_VERTICES`] vertices to keep runs
    /// tractable), plus gain-container key consistency at pass seeding.
    Paranoid,
}

/// Largest instance (in vertices) on which `Paranoid` recomputes the cut
/// after every tentative move. Above this, `Paranoid` still audits every
/// boundary and every pass seeding.
pub const PARANOID_MOVE_AUDIT_MAX_VERTICES: usize = 4096;

impl AuditLevel {
    /// `true` unless auditing is off.
    pub fn is_on(self) -> bool {
        self != AuditLevel::Off
    }

    /// `true` for the per-move level.
    pub fn is_paranoid(self) -> bool {
        self == AuditLevel::Paranoid
    }

    /// Stable lowercase name (what the CLI `--audit` flag accepts).
    pub fn name(self) -> &'static str {
        match self {
            AuditLevel::Off => "off",
            AuditLevel::Checkpoints => "checkpoints",
            AuditLevel::Paranoid => "paranoid",
        }
    }

    /// Parses a [`name`](AuditLevel::name) back.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown level.
    pub fn parse(s: &str) -> Result<AuditLevel, String> {
        match s {
            "off" => Ok(AuditLevel::Off),
            "checkpoints" => Ok(AuditLevel::Checkpoints),
            "paranoid" => Ok(AuditLevel::Paranoid),
            other => Err(format!(
                "unknown audit level `{other}` (expected off, checkpoints, or paranoid)"
            )),
        }
    }
}

/// A discrepancy between the engine's incremental bookkeeping and the
/// auditor's independent recomputation.
///
/// Every variant names both sides of the disagreement so the failure is
/// actionable from the error alone.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuditError {
    /// The reported cut disagrees with a from-scratch recount.
    CutMismatch {
        /// Cut the engine reports.
        reported: u64,
        /// Cut recomputed by walking every net.
        recomputed: u64,
    },
    /// A reported part weight disagrees with a from-scratch sum.
    PartWeightMismatch {
        /// Zero-based part index.
        part: usize,
        /// Weight the engine reports.
        reported: u64,
        /// Weight recomputed by summing vertex weights.
        recomputed: u64,
    },
    /// A part weight falls outside the balance window.
    Unbalanced {
        /// Zero-based part index.
        part: usize,
        /// Recomputed weight of the part.
        weight: u64,
        /// Lower bound of the balance window.
        lower: u64,
        /// Upper bound of the balance window.
        upper: u64,
    },
    /// A fixed vertex sits in the wrong part.
    FixedViolated {
        /// The offending vertex (raw index).
        vertex: usize,
        /// The part it is fixed in.
        fixed: usize,
        /// The part the assignment put it in.
        assigned: usize,
    },
    /// A per-net pin count disagrees with a from-scratch recount.
    PinCountMismatch {
        /// Zero-based net index.
        net: usize,
        /// Zero-based part index.
        part: usize,
        /// Pin count the engine reports.
        reported: u32,
        /// Pin count recomputed from the raw pin list.
        recomputed: u32,
    },
    /// A gain-container key disagrees with the freshly computed FM gain.
    GainMismatch {
        /// The offending vertex (raw index).
        vertex: usize,
        /// Key stored in the gain container.
        stored: i64,
        /// Gain recomputed from the pin distribution.
        recomputed: i64,
    },
}

impl AuditError {
    /// Short check name for the `InvariantViolation` trace event
    /// (`"cut"`, `"balance"`, `"fixed"`, `"gain"`).
    pub fn check(&self) -> &'static str {
        match self {
            AuditError::CutMismatch { .. } | AuditError::PinCountMismatch { .. } => "cut",
            AuditError::PartWeightMismatch { .. } | AuditError::Unbalanced { .. } => "balance",
            AuditError::FixedViolated { .. } => "fixed",
            AuditError::GainMismatch { .. } => "gain",
        }
    }
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::CutMismatch {
                reported,
                recomputed,
            } => write!(
                f,
                "cut mismatch: reported {reported}, recomputed {recomputed}"
            ),
            AuditError::PartWeightMismatch {
                part,
                reported,
                recomputed,
            } => write!(
                f,
                "part {part} weight mismatch: reported {reported}, recomputed {recomputed}"
            ),
            AuditError::Unbalanced {
                part,
                weight,
                lower,
                upper,
            } => write!(
                f,
                "part {part} weight {weight} outside balance window [{lower}, {upper}]"
            ),
            AuditError::FixedViolated {
                vertex,
                fixed,
                assigned,
            } => write!(
                f,
                "vertex {vertex} is fixed in part {fixed} but assigned to part {assigned}"
            ),
            AuditError::PinCountMismatch {
                net,
                part,
                reported,
                recomputed,
            } => write!(
                f,
                "net {net} pin count in part {part}: reported {reported}, recomputed {recomputed}"
            ),
            AuditError::GainMismatch {
                vertex,
                stored,
                recomputed,
            } => write!(
                f,
                "vertex {vertex} gain-container key {stored} but recomputed gain {recomputed}"
            ),
        }
    }
}

impl Error for AuditError {}

/// The independent verifier.
///
/// Every method recomputes its quantities by walking the raw
/// [`Hypergraph`] — it deliberately shares no code with the incremental
/// update paths it is checking (not even
/// [`Bisection::recompute_cut`]), so a bug in the hot path cannot hide
/// inside the audit.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartitionAuditor;

impl PartitionAuditor {
    /// Audits a 2-way [`Bisection`]: cut, per-net pin counts, part
    /// weights, fixed-vertex respect, and — when `window` is given —
    /// balance legality.
    ///
    /// Pass `window = None` for mid-run checkpoints: the engine may
    /// legitimately traverse infeasible states while recovering from an
    /// unbalanced initial solution, so window legality is only asserted
    /// where the engine claims it (e.g. on a final outcome flagged
    /// `balanced`).
    ///
    /// # Errors
    ///
    /// The first discrepancy found, as a typed [`AuditError`].
    pub fn audit_bisection(
        bisection: &Bisection<'_>,
        window: Option<(u64, u64)>,
    ) -> Result<(), AuditError> {
        let h = bisection.graph();
        // Cut and pin counts, recounted from the raw pin lists.
        let mut cut = 0u64;
        for e in h.nets() {
            let mut counts = [0u32; 2];
            for &v in h.net_pins(e) {
                counts[bisection.side(v).index()] += 1;
            }
            for p in PartId::ALL {
                let reported = bisection.pins_in(e, p);
                if reported != counts[p.index()] {
                    return Err(AuditError::PinCountMismatch {
                        net: e.index(),
                        part: p.index(),
                        reported,
                        recomputed: counts[p.index()],
                    });
                }
            }
            if counts[0] > 0 && counts[1] > 0 {
                cut += u64::from(h.net_weight(e));
            }
        }
        let reported_cut = bisection.cut();
        if reported_cut != cut {
            return Err(AuditError::CutMismatch {
                reported: reported_cut,
                recomputed: cut,
            });
        }
        // Part weights and fixed-vertex respect, from the raw assignment.
        let mut weights = [0u64; 2];
        for v in h.vertices() {
            let side = bisection.side(v);
            weights[side.index()] += h.vertex_weight(v);
            if let Some(fixed) = h.fixed_part(v) {
                if side != fixed {
                    return Err(AuditError::FixedViolated {
                        vertex: v.index(),
                        fixed: fixed.index(),
                        assigned: side.index(),
                    });
                }
            }
        }
        for p in PartId::ALL {
            let reported = bisection.part_weight(p);
            if reported != weights[p.index()] {
                return Err(AuditError::PartWeightMismatch {
                    part: p.index(),
                    reported,
                    recomputed: weights[p.index()],
                });
            }
        }
        Self::check_window(&weights, window)
    }

    /// Audits a flat k-way assignment: recomputed connectivity cut vs
    /// `reported_cut`, recomputed per-part weights vs
    /// `reported_weights`, fixed-vertex respect, and (when `window` is
    /// given) per-part balance legality.
    ///
    /// `part_of` maps each vertex to its zero-based part; the auditor
    /// never reads the engine's derived tables.
    ///
    /// # Errors
    ///
    /// The first discrepancy found, as a typed [`AuditError`].
    pub fn audit_parts(
        h: &Hypergraph,
        k: usize,
        part_of: impl Fn(VertexId) -> usize,
        reported_cut: u64,
        reported_weights: &[u64],
        window: Option<(u64, u64)>,
    ) -> Result<(), AuditError> {
        // Cut: a net is cut when its pins span more than one part.
        let mut cut = 0u64;
        let mut seen = vec![false; k];
        for e in h.nets() {
            for s in seen.iter_mut() {
                *s = false;
            }
            let mut span = 0usize;
            for &v in h.net_pins(e) {
                let p = part_of(v);
                if !seen[p] {
                    seen[p] = true;
                    span += 1;
                }
            }
            if span > 1 {
                cut += u64::from(h.net_weight(e));
            }
        }
        if reported_cut != cut {
            return Err(AuditError::CutMismatch {
                reported: reported_cut,
                recomputed: cut,
            });
        }
        // Part weights and fixed-vertex respect.
        let mut weights = vec![0u64; k];
        for v in h.vertices() {
            let p = part_of(v);
            weights[p] += h.vertex_weight(v);
            if let Some(fixed) = h.fixed_part(v) {
                if p != fixed.index() {
                    return Err(AuditError::FixedViolated {
                        vertex: v.index(),
                        fixed: fixed.index(),
                        assigned: p,
                    });
                }
            }
        }
        for (p, (&reported, &recomputed)) in reported_weights.iter().zip(weights.iter()).enumerate()
        {
            if reported != recomputed {
                return Err(AuditError::PartWeightMismatch {
                    part: p,
                    reported,
                    recomputed,
                });
            }
        }
        Self::check_window(&weights, window)
    }

    fn check_window(weights: &[u64], window: Option<(u64, u64)>) -> Result<(), AuditError> {
        if let Some((lower, upper)) = window {
            for (p, &w) in weights.iter().enumerate() {
                if w < lower || w > upper {
                    return Err(AuditError::Unbalanced {
                        part: p,
                        weight: w,
                        lower,
                        upper,
                    });
                }
            }
        }
        Ok(())
    }
}

/// A deterministic description of a fault to inject into a run.
///
/// Test/bench-only surface: production code never constructs one, and
/// the default ([`FaultPlan::none`]) injects nothing. Plans are plain
/// data, so the same plan injects the same fault on every run — the
/// degradation path under test is reproducible by construction.
///
/// The three faults mirror the three degradation guarantees:
///
/// * [`panic_in_start`](FaultPlan::panic_in_start) — a multi-start
///   worker dies; the sweep must isolate it and return the best of the
///   survivors.
/// * [`fail_sink_writes`](FaultPlan::fail_sink_writes) — trace output
///   becomes unwritable; the run must finish and report a sticky sink
///   error at the end instead of panicking mid-emit.
/// * [`early_deadline`](FaultPlan::early_deadline) — the budget expires
///   almost immediately; the run must stop gracefully with a legal
///   best-so-far.
#[doc(hidden)]
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    panic_in_start: Option<u64>,
    fail_sink_writes: bool,
    early_deadline: Option<Duration>,
    panic_in_shard: Option<(u64, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (the default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Injects a panic at the beginning of start `index` of a
    /// multi-start sweep.
    pub fn panic_in_start(index: u64) -> Self {
        FaultPlan {
            panic_in_start: Some(index),
            ..FaultPlan::default()
        }
    }

    /// Makes every trace-sink write fail (consumers route their sink
    /// through a failing writer when this is set).
    pub fn fail_sink_writes() -> Self {
        FaultPlan {
            fail_sink_writes: true,
            ..FaultPlan::default()
        }
    }

    /// Expires the run's deadline `budget` after it begins.
    pub fn early_deadline(budget: Duration) -> Self {
        FaultPlan {
            early_deadline: Some(budget),
            ..FaultPlan::default()
        }
    }

    /// Injects a panic into shard `shard` of round `round` of every
    /// parallel refinement run. The round must isolate the shard,
    /// announce it with a `ShardAborted` trace event, and continue with
    /// the surviving shards' proposals.
    pub fn panic_in_shard(round: u64, shard: u64) -> Self {
        FaultPlan {
            panic_in_shard: Some((round, shard)),
            ..FaultPlan::default()
        }
    }

    /// Derives a plan from a seed: the fault kind and (for panics) the
    /// target start index are pure functions of `seed`, so a seeded test
    /// sweep covers all three faults deterministically.
    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 finalizer: decorrelates consecutive seeds.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        match z % 3 {
            0 => FaultPlan::panic_in_start((z >> 2) % 16),
            1 => FaultPlan::fail_sink_writes(),
            _ => FaultPlan::early_deadline(Duration::from_millis(1 + (z >> 2) % 5)),
        }
    }

    /// `true` if this plan panics start `index`.
    pub fn should_panic_start(&self, index: u64) -> bool {
        self.panic_in_start == Some(index)
    }

    /// The start index this plan panics, if any.
    pub fn panicked_start(&self) -> Option<u64> {
        self.panic_in_start
    }

    /// `true` if trace-sink writes should fail.
    pub fn sink_writes_fail(&self) -> bool {
        self.fail_sink_writes
    }

    /// The injected early deadline, if any.
    pub fn injected_deadline(&self) -> Option<Duration> {
        self.early_deadline
    }

    /// Panics with a recognizable payload if this plan targets start
    /// `index`. Drivers call this inside their per-start `catch_unwind`
    /// region.
    pub fn trip_start(&self, index: u64) {
        if self.should_panic_start(index) {
            panic!("injected fault: panic in start {index}");
        }
    }

    /// `true` if this plan panics shard `shard` of round `round`.
    pub fn should_panic_shard(&self, round: u64, shard: u64) -> bool {
        self.panic_in_shard == Some((round, shard))
    }

    /// The (round, shard) pair this plan panics, if any.
    pub fn panicked_shard(&self) -> Option<(u64, u64)> {
        self.panic_in_shard
    }

    /// Panics with a recognizable payload if this plan targets shard
    /// `shard` of round `round`. Parallel refinement calls this inside
    /// its per-shard `catch_unwind` region.
    pub fn trip_shard(&self, round: u64, shard: u64) {
        if self.should_panic_shard(round, shard) {
            panic!("injected fault: panic in shard {shard} of round {round}");
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::balance::BalanceConstraint;
    use crate::generate_initial;
    use crate::InitialSolution;
    use hypart_hypergraph::HypergraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..6).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 1).unwrap();
        b.add_net([v[3], v[4], v[5]], 1).unwrap();
        b.add_net([v[2], v[3]], 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn audit_level_names_round_trip() {
        for level in [
            AuditLevel::Off,
            AuditLevel::Checkpoints,
            AuditLevel::Paranoid,
        ] {
            assert_eq!(AuditLevel::parse(level.name()), Ok(level));
        }
        assert!(AuditLevel::parse("verbose").is_err());
        assert!(!AuditLevel::Off.is_on());
        assert!(AuditLevel::Checkpoints.is_on());
        assert!(AuditLevel::Paranoid.is_paranoid());
    }

    #[test]
    fn clean_bisection_passes_audit() {
        let h = sample();
        let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.34);
        let mut rng = SmallRng::seed_from_u64(42);
        let assignment = generate_initial(&h, InitialSolution::RandomBalanced, &mut rng);
        let b = Bisection::new(&h, assignment).unwrap();
        PartitionAuditor::audit_bisection(&b, Some((constraint.lower(), constraint.upper())))
            .unwrap();
    }

    #[test]
    fn unbalanced_bisection_is_flagged() {
        let h = sample();
        let all_zero = vec![PartId::P0; 6];
        let b = Bisection::new(&h, all_zero).unwrap();
        let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.34);
        let window = Some((constraint.lower(), constraint.upper()));
        let err = PartitionAuditor::audit_bisection(&b, window).unwrap_err();
        assert!(
            matches!(err, AuditError::Unbalanced { part: 0, .. }),
            "{err}"
        );
        assert_eq!(err.check(), "balance");
        // Without a window the same state is merely unbalanced, not wrong.
        PartitionAuditor::audit_bisection(&b, None).unwrap();
    }

    #[test]
    fn kway_audit_detects_wrong_cut_and_weights() {
        let h = sample();
        let parts = [0usize, 0, 0, 1, 1, 2];
        let weights = [3u64, 2, 1];
        // Correct claim passes: nets {3,4,5} and {2,3} each span two parts.
        PartitionAuditor::audit_parts(&h, 3, |v| parts[v.index()], 2, &weights, None).unwrap();
        let err = PartitionAuditor::audit_parts(&h, 3, |v| parts[v.index()], 1, &weights, None)
            .unwrap_err();
        assert!(
            matches!(
                err,
                AuditError::CutMismatch {
                    reported: 1,
                    recomputed: 2
                }
            ),
            "{err}"
        );
        let bad_weights = [3u64, 2, 2];
        let err = PartitionAuditor::audit_parts(&h, 3, |v| parts[v.index()], 2, &bad_weights, None)
            .unwrap_err();
        assert!(
            matches!(err, AuditError::PartWeightMismatch { part: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn fixed_violation_is_flagged() {
        let h = sample().with_fixed(VertexId::new(0), Some(PartId::P1));
        let parts = [0usize, 0, 0, 1, 1, 1];
        let err = PartitionAuditor::audit_parts(&h, 2, |v| parts[v.index()], 1, &[3, 3], None)
            .unwrap_err();
        assert!(
            matches!(err, AuditError::FixedViolated { vertex: 0, .. }),
            "{err}"
        );
        assert_eq!(err.check(), "fixed");
    }

    #[test]
    fn fault_plans_are_deterministic_and_typed() {
        let plan = FaultPlan::panic_in_start(3);
        assert!(plan.should_panic_start(3));
        assert!(!plan.should_panic_start(2));
        assert_eq!(plan.panicked_start(), Some(3));
        assert!(FaultPlan::fail_sink_writes().sink_writes_fail());
        assert!(FaultPlan::early_deadline(Duration::from_millis(2))
            .injected_deadline()
            .is_some());
        assert!(!FaultPlan::none().sink_writes_fail());
        for seed in 0..64 {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
        }
        // All three fault kinds appear across a small seed sweep.
        let kinds: std::collections::HashSet<u8> = (0..32)
            .map(|s| {
                let p = FaultPlan::from_seed(s);
                if p.panicked_start().is_some() {
                    0
                } else if p.sink_writes_fail() {
                    1
                } else {
                    2
                }
            })
            .collect();
        assert_eq!(kinds.len(), 3);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn trip_start_panics_on_target() {
        FaultPlan::panic_in_start(5).trip_start(5);
    }

    #[test]
    fn shard_fault_is_typed_and_targeted() {
        let plan = FaultPlan::panic_in_shard(1, 2);
        assert!(plan.should_panic_shard(1, 2));
        assert!(!plan.should_panic_shard(1, 1));
        assert!(!plan.should_panic_shard(0, 2));
        assert_eq!(plan.panicked_shard(), Some((1, 2)));
        assert_eq!(FaultPlan::none().panicked_shard(), None);
        // A shard fault never masquerades as a start fault.
        assert!(!plan.should_panic_start(2));
        plan.trip_shard(0, 0); // off-target: no panic
    }

    #[test]
    #[should_panic(expected = "injected fault: panic in shard 2 of round 1")]
    fn trip_shard_panics_on_target() {
        FaultPlan::panic_in_shard(1, 2).trip_shard(1, 2);
    }
}
