//! Reusable FM scratch arenas.
//!
//! `refine` is called at every level of every start of every V-cycle of a
//! multi-start sweep — millions of times in a Table 4–5 style experiment —
//! so allocating and zeroing `O(V + bucket range)` gain containers per
//! call is a methodology-level cost, not a constant. An [`FmWorkspace`]
//! owns the containers and per-pass scratch vectors once and re-points
//! them at each refinement target ([`GainContainer::retarget`] keeps the
//! allocations and only grows them), turning per-call setup into
//! O(len + buckets touched).
//!
//! One workspace serves every engine layer: the flat 2-way engine takes
//! two containers, direct k-way FM takes a k·(k−1) grid from the same
//! pool. Workspaces are plain owned data — to parallelize, give each
//! thread its own (as the multilevel multi-start driver does).

use crate::gain::GainContainer;
use hypart_hypergraph::VertexId;

/// Reusable gain-container arena plus per-pass scratch vectors.
///
/// Feed one to [`crate::FmPartitioner::refine_with`] (or the
/// multilevel / k-way equivalents) to amortize container setup across
/// passes, levels, and starts. A fresh workspace is equivalent to — and is
/// exactly what — the plain `refine` entry points create internally; reuse
/// never changes results, only removes allocation and reset cost.
#[derive(Clone, Debug, Default)]
pub struct FmWorkspace {
    /// Container pool, re-targeted on acquisition. The flat engine uses
    /// entries 0–1 (one per partition side); k-way FM uses a k² grid.
    pub(crate) pool: Vec<GainContainer>,
    /// Free movable vertices of the current pass.
    pub(crate) eligible: Vec<VertexId>,
    /// Move sequence of the current pass (for best-prefix rollback).
    pub(crate) moves: Vec<VertexId>,
    /// CLIP seeding scratch: `eligible` sorted by initial gain.
    pub(crate) order: Vec<VertexId>,
}

impl FmWorkspace {
    /// Creates an empty workspace. Arenas grow on first use and are kept
    /// from then on.
    pub fn new() -> Self {
        FmWorkspace::default()
    }

    /// Borrows `count` cleared containers sized for `num_vertices`
    /// vertices and keys in `±max_abs_key`, reusing (and growing only when
    /// necessary) the pooled allocations.
    pub fn containers(
        &mut self,
        count: usize,
        num_vertices: usize,
        max_abs_key: i64,
    ) -> &mut [GainContainer] {
        while self.pool.len() < count {
            self.pool.push(GainContainer::new(0, 0));
        }
        for c in &mut self.pool[..count] {
            c.retarget(num_vertices, max_abs_key);
        }
        &mut self.pool[..count]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InsertionPolicy;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pool_grows_and_comes_back_cleared() {
        let mut ws = FmWorkspace::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let cs = ws.containers(2, 8, 5);
        assert_eq!(cs.len(), 2);
        cs[0].insert(VertexId::new(3), 4, InsertionPolicy::Lifo, &mut rng);
        assert_eq!(cs[0].len(), 1);
        // Re-acquire: same pool, larger grid, everything cleared.
        let cs = ws.containers(9, 16, 12);
        assert_eq!(cs.len(), 9);
        for c in cs.iter_mut() {
            assert!(c.is_empty());
            assert_eq!(c.min_key_bound(), -12);
        }
        // Shrinking the request leaves surplus pool entries untouched.
        let cs = ws.containers(2, 4, 3);
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].min_key_bound(), -3);
    }
}
