//! Configuration of the FM engine: every implicit implementation decision
//! of the Fiduccia–Mattheyses description, made explicit.

/// How the engine selects moves from the gain structure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SelectionRule {
    /// Classic FM: bucket key = current gain; at pass start every free
    /// vertex is inserted at its initial gain.
    #[default]
    Classic,
    /// CLIP \[Dutt–Deng ICCAD-96\]: bucket key = *cumulative delta gain*
    /// (actual gain minus initial gain). At pass start every free vertex
    /// sits in the 0 bucket, ordered by descending initial gain — which is
    /// exactly what makes CLIP susceptible to *corking* on actual-area
    /// instances (§2.3 of the paper).
    Clip,
}

/// Tie-breaking between the two partitions' highest-gain buckets when both
/// head moves are legal and have equal gain (§2.2, first implicit decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TieBreak {
    /// Choose the move that is *not* from the partition the last vertex was
    /// moved from.
    #[default]
    Away,
    /// Always prefer the move whose source is partition 0.
    Part0,
    /// Choose the move from the *same* partition as the last vertex moved.
    Toward,
}

/// Whether to perform a gain-container update when a vertex's delta gain is
/// zero (§2.2, second implicit decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ZeroDeltaPolicy {
    /// Re-insert the vertex even on a zero delta, shifting its position
    /// within the same bucket ("All∆gain" in Table 1).
    All,
    /// Skip the update entirely, leaving the vertex's position unchanged
    /// ("Nonzero" in Table 1). This is the side effect the original FM-82
    /// netcut-specific update rule has implicitly.
    #[default]
    Nonzero,
}

/// Where a (re-)inserted vertex is attached within its gain bucket
/// (§2.2, third implicit decision; studied by Hagen–Huang–Kahng EuroDAC-95).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum InsertionPolicy {
    /// Insert at the head: last-in-first-out. What every strong FM
    /// implementation has used since \[HHK95\].
    #[default]
    Lifo,
    /// Insert at the tail: first-in-first-out.
    Fifo,
    /// Insert at head or tail uniformly at random (constant-time
    /// approximation of random-position insertion).
    Random,
}

/// Tie-breaking when several prefixes of the move sequence achieve the same
/// best cut (§2.2, fourth implicit decision).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum PassBestRule {
    /// Roll back to the *first* best prefix encountered.
    FirstSeen,
    /// Roll back to the *last* best prefix encountered.
    #[default]
    LastSeen,
    /// Roll back to the best prefix whose partition weights are furthest
    /// from violating the balance constraint.
    MostBalanced,
}

/// What to do when the head move of a gain bucket is illegal (§2.3, first
/// observation: partitioners look only at the first move in a bucket).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum IllegalHeadPolicy {
    /// Skip the whole bucket and continue with the next lower gain bucket
    /// of the same partition.
    #[default]
    SkipBucket,
    /// Skip every remaining bucket of that partition for this selection.
    SkipSide,
}

/// How the initial solution is generated before the first pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum InitialSolution {
    /// Shuffle the vertices, then greedily add each to the currently
    /// lighter side (respecting fixed vertices). Produces feasible or
    /// near-feasible starts with high probability.
    #[default]
    RandomBalanced,
    /// Sort by descending area, then greedily add to the lighter side with
    /// randomized tie-breaking. More reliable on macro-heavy instances.
    AreaSortedGreedy,
    /// Independently assign each free vertex to a uniformly random side —
    /// ignores balance entirely; the weakest reasonable choice (used by the
    /// "Reported"-style baseline).
    UniformRandom,
}

/// Complete configuration of [`crate::FmPartitioner`].
///
/// The defaults are the strong choices identified in the paper; the
/// constructors give the four named engine variants of Table 1 plus the
/// deliberately weak "Reported"-style baselines of Tables 2–3.
///
/// Every field has a `with_*` builder, so any cell of the paper's Table 1
/// grid is one chained expression. How the knobs map onto that grid:
///
/// | knob | Table 1 axis | strong default |
/// |------|--------------|----------------|
/// | [`selection`](Self::selection) | FM vs CLIP row family | `Classic` |
/// | [`zero_delta`](Self::zero_delta) | "All∆gain" vs "Nonzero" columns | `Nonzero` |
/// | [`tie_break`](Self::tie_break) | tie-break bias columns | `Away` |
/// | [`insertion`](Self::insertion) | LIFO / FIFO / random rows | `Lifo` |
/// | [`pass_best`](Self::pass_best) | §2.2 rollback decision | `LastSeen` |
/// | [`illegal_head`](Self::illegal_head) | §2.3 bucket-head handling | `SkipBucket` |
/// | [`exclude_overweight`](Self::exclude_overweight) | §2.3 anti-corking fix | `true` |
/// | [`lookahead`](Self::lookahead) | §2.3 in-bucket lookahead | `1` |
/// | [`max_passes`](Self::max_passes) | pass-limit stop rule | `64` |
/// | [`initial`](Self::initial) | initial-solution generator | `RandomBalanced` |
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FmConfig {
    /// Classic FM or CLIP selection.
    pub selection: SelectionRule,
    /// Tie-break between the two sides' equal-gain head moves.
    pub tie_break: TieBreak,
    /// Zero-delta-gain update policy.
    pub zero_delta: ZeroDeltaPolicy,
    /// Bucket insertion position policy.
    pub insertion: InsertionPolicy,
    /// Which equal-cut prefix to keep at end of pass.
    pub pass_best: PassBestRule,
    /// What to skip when a bucket head move is illegal.
    pub illegal_head: IllegalHeadPolicy,
    /// Do not insert cells wider than the balance window into the gain
    /// container (the paper's zero-overhead anti-corking fix; benefits all
    /// FM variants).
    pub exclude_overweight: bool,
    /// How many list entries to examine past an illegal head before giving
    /// up on a bucket (1 = head only; the paper finds larger values too
    /// slow and harmful to quality, but the knob exists to reproduce that
    /// experiment).
    pub lookahead: usize,
    /// Upper bound on the number of passes (a pass that fails to improve
    /// the cut always terminates the run regardless).
    pub max_passes: usize,
    /// Initial solution generator.
    pub initial: InitialSolution,
    /// Record the cut after every tentative move into
    /// [`crate::PassStats::cut_trace`] (diagnostic; off by default since
    /// it allocates O(moves) per pass).
    pub record_trace: bool,
}

impl Default for FmConfig {
    fn default() -> Self {
        FmConfig {
            selection: SelectionRule::default(),
            tie_break: TieBreak::default(),
            zero_delta: ZeroDeltaPolicy::default(),
            insertion: InsertionPolicy::default(),
            pass_best: PassBestRule::default(),
            illegal_head: IllegalHeadPolicy::default(),
            exclude_overweight: true,
            lookahead: 1,
            max_passes: 64,
            initial: InitialSolution::default(),
            record_trace: false,
        }
    }
}

impl FmConfig {
    /// The authors' competent flat **LIFO FM** ("Our LIFO" in Table 2):
    /// classic selection, LIFO insertion, `Nonzero` updates, overweight
    /// cells excluded.
    pub fn lifo() -> Self {
        FmConfig::default()
    }

    /// The authors' competent flat **CLIP FM** ("Our CLIP" in Table 3):
    /// CLIP selection with the anti-corking overweight exclusion.
    pub fn clip() -> Self {
        FmConfig {
            selection: SelectionRule::Clip,
            ..FmConfig::default()
        }
    }

    /// A weak **"Reported"-style LIFO FM** standing in for the
    /// irreproducible implementation of \[Alpert, ISPD-98\] (Table 2):
    /// FIFO insertion masquerading as "a gain bucket", `All` updates,
    /// `Part0` bias, uniform-random initial solutions, no overweight
    /// exclusion, first-seen rollback.
    pub fn reported_lifo() -> Self {
        FmConfig {
            selection: SelectionRule::Classic,
            tie_break: TieBreak::Part0,
            zero_delta: ZeroDeltaPolicy::All,
            insertion: InsertionPolicy::Fifo,
            pass_best: PassBestRule::FirstSeen,
            illegal_head: IllegalHeadPolicy::SkipSide,
            exclude_overweight: false,
            lookahead: 1,
            max_passes: 64,
            initial: InitialSolution::UniformRandom,
            record_trace: false,
        }
    }

    /// A weak **"Reported"-style CLIP FM** (Table 3): CLIP selection
    /// *without* the overweight exclusion — fully exposed to corking —
    /// plus the same weak secondary choices as [`reported_lifo`](Self::reported_lifo).
    pub fn reported_clip() -> Self {
        FmConfig {
            selection: SelectionRule::Clip,
            ..FmConfig::reported_lifo()
        }
    }

    /// Returns this configuration with a different tie-break rule
    /// (builder-style, for sweeping the Table 1 grid).
    pub fn with_tie_break(mut self, tie_break: TieBreak) -> Self {
        self.tie_break = tie_break;
        self
    }

    /// Returns this configuration with a different zero-delta policy.
    pub fn with_zero_delta(mut self, zero_delta: ZeroDeltaPolicy) -> Self {
        self.zero_delta = zero_delta;
        self
    }

    /// Returns this configuration with a different insertion policy.
    pub fn with_insertion(mut self, insertion: InsertionPolicy) -> Self {
        self.insertion = insertion;
        self
    }

    /// Returns this configuration with a different selection rule.
    pub fn with_selection(mut self, selection: SelectionRule) -> Self {
        self.selection = selection;
        self
    }

    /// Returns this configuration with overweight exclusion switched
    /// on/off.
    pub fn with_exclude_overweight(mut self, exclude: bool) -> Self {
        self.exclude_overweight = exclude;
        self
    }

    /// Returns this configuration with a different in-bucket lookahead.
    ///
    /// # Panics
    ///
    /// Panics if `lookahead == 0` (the head itself always counts).
    pub fn with_lookahead(mut self, lookahead: usize) -> Self {
        assert!(lookahead >= 1, "lookahead must be at least 1");
        self.lookahead = lookahead;
        self
    }

    /// Returns this configuration with a different initial-solution rule.
    pub fn with_initial(mut self, initial: InitialSolution) -> Self {
        self.initial = initial;
        self
    }

    /// Returns this configuration with a different illegal-head policy.
    pub fn with_illegal_head(mut self, illegal_head: IllegalHeadPolicy) -> Self {
        self.illegal_head = illegal_head;
        self
    }

    /// Returns this configuration with a different pass limit.
    ///
    /// # Panics
    ///
    /// Panics if `max_passes == 0` (the engine always runs one pass).
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        assert!(max_passes >= 1, "max_passes must be at least 1");
        self.max_passes = max_passes;
        self
    }

    /// Returns this configuration with a different pass-best rule.
    pub fn with_pass_best(mut self, pass_best: PassBestRule) -> Self {
        self.pass_best = pass_best;
        self
    }

    /// Returns this configuration with per-move cut tracing on/off.
    pub fn with_record_trace(mut self, record_trace: bool) -> Self {
        self.record_trace = record_trace;
        self
    }

    /// Short human-readable label, e.g. `"CLIP/Nonzero/Away/LIFO"` — used
    /// as the algorithm column in regenerated tables.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            match self.selection {
                SelectionRule::Classic => "FM",
                SelectionRule::Clip => "CLIP",
            },
            match self.zero_delta {
                ZeroDeltaPolicy::All => "All",
                ZeroDeltaPolicy::Nonzero => "Nonzero",
            },
            match self.tie_break {
                TieBreak::Away => "Away",
                TieBreak::Part0 => "Part0",
                TieBreak::Toward => "Toward",
            },
            match self.insertion {
                InsertionPolicy::Lifo => "LIFO",
                InsertionPolicy::Fifo => "FIFO",
                InsertionPolicy::Random => "RAND",
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_strong_choices() {
        let c = FmConfig::default();
        assert_eq!(c.selection, SelectionRule::Classic);
        assert_eq!(c.zero_delta, ZeroDeltaPolicy::Nonzero);
        assert_eq!(c.insertion, InsertionPolicy::Lifo);
        assert!(c.exclude_overweight);
        assert_eq!(c.lookahead, 1);
    }

    #[test]
    fn presets_differ_where_the_paper_says() {
        assert_eq!(FmConfig::clip().selection, SelectionRule::Clip);
        assert!(FmConfig::clip().exclude_overweight);
        let weak = FmConfig::reported_clip();
        assert_eq!(weak.selection, SelectionRule::Clip);
        assert!(!weak.exclude_overweight);
        assert_eq!(weak.insertion, InsertionPolicy::Fifo);
        assert_eq!(weak.initial, InitialSolution::UniformRandom);
    }

    #[test]
    fn builder_methods_compose() {
        let c = FmConfig::lifo()
            .with_tie_break(TieBreak::Toward)
            .with_zero_delta(ZeroDeltaPolicy::All)
            .with_insertion(InsertionPolicy::Random)
            .with_lookahead(4);
        assert_eq!(c.tie_break, TieBreak::Toward);
        assert_eq!(c.zero_delta, ZeroDeltaPolicy::All);
        assert_eq!(c.insertion, InsertionPolicy::Random);
        assert_eq!(c.lookahead, 4);
    }

    #[test]
    #[should_panic(expected = "lookahead")]
    fn zero_lookahead_panics() {
        let _ = FmConfig::default().with_lookahead(0);
    }

    #[test]
    fn label_is_compact() {
        assert_eq!(FmConfig::lifo().label(), "FM/Nonzero/Away/LIFO");
        assert_eq!(
            FmConfig::clip().with_tie_break(TieBreak::Part0).label(),
            "CLIP/Nonzero/Part0/LIFO"
        );
    }
}
