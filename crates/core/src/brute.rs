//! Exhaustive optimal bipartitioning for small instances.
//!
//! Enumeration over all `2^(n-1)` assignments (the first free vertex is
//! pinned to partition 0 to halve the symmetric space). Only useful for
//! `n ≲ 24`, as a ground-truth oracle in tests and for calibrating how far
//! from optimal the heuristics land on toy instances.

use crate::balance::BalanceConstraint;
use crate::bisection::Bisection;
use hypart_hypergraph::{Hypergraph, PartId};

/// The optimum found by [`optimal_bisection`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BruteForceResult {
    /// An optimal assignment.
    pub assignment: Vec<PartId>,
    /// Its weighted cut.
    pub cut: u64,
    /// Number of feasible assignments examined.
    pub feasible_count: u64,
}

/// Exhaustively finds a minimum-cut bisection of `h` subject to
/// `constraint` (and any fixed vertices). Returns `None` if no feasible
/// assignment exists.
///
/// # Panics
///
/// Panics if `h` has more than 30 free vertices — the enumeration would
/// not terminate in reasonable time.
///
/// # Example
///
/// ```
/// use hypart_core::{brute::optimal_bisection, BalanceConstraint};
/// use hypart_hypergraph::HypergraphBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..4).map(|_| b.add_vertex(1)).collect();
/// b.add_net([v[0], v[1]], 1)?;
/// b.add_net([v[2], v[3]], 1)?;
/// b.add_net([v[1], v[2]], 1)?;
/// let h = b.build()?;
/// let c = BalanceConstraint::with_fraction(4, 0.0);
/// let best = optimal_bisection(&h, &c).expect("feasible");
/// assert_eq!(best.cut, 1);
/// # Ok(())
/// # }
/// ```
pub fn optimal_bisection(
    h: &Hypergraph,
    constraint: &BalanceConstraint,
) -> Option<BruteForceResult> {
    let free: Vec<_> = h.vertices().filter(|&v| !h.is_fixed(v)).collect();
    assert!(
        free.len() <= 30,
        "brute force limited to 30 free vertices, got {}",
        free.len()
    );
    let mut assignment: Vec<PartId> = h
        .vertices()
        .map(|v| h.fixed_part(v).unwrap_or(PartId::P0))
        .collect();

    let mut best: Option<BruteForceResult> = None;
    let mut feasible_count = 0u64;
    // If there are no fixed vertices the problem is symmetric; pin the
    // first free vertex to halve the search space.
    let symmetric = h.num_fixed() == 0 && !free.is_empty();
    let bits = if symmetric {
        free.len() - 1
    } else {
        free.len()
    };
    let moving = if symmetric { &free[1..] } else { &free[..] };

    for mask in 0u64..(1u64 << bits) {
        for (i, &v) in moving.iter().enumerate() {
            assignment[v.index()] = if mask >> i & 1 == 1 {
                PartId::P1
            } else {
                PartId::P0
            };
        }
        let bisection = match Bisection::new(h, assignment.clone()) {
            Ok(b) => b,
            Err(e) => unreachable!("enumerated assignment is valid: {e}"),
        };
        if !constraint.is_satisfied(&bisection) {
            continue;
        }
        feasible_count += 1;
        let cut = bisection.cut();
        if best.as_ref().is_none_or(|b| cut < b.cut) {
            best = Some(BruteForceResult {
                assignment: assignment.clone(),
                cut,
                feasible_count: 0,
            });
        }
    }
    best.map(|mut b| {
        b.feasible_count = feasible_count;
        b
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{FmConfig, FmPartitioner};
    use hypart_hypergraph::{HypergraphBuilder, VertexId};

    fn ring(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for i in 0..n {
            b.add_net([v[i], v[(i + 1) % n]], 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_optimal_cut_is_two() {
        let h = ring(8);
        let c = BalanceConstraint::with_fraction(8, 0.0);
        let best = optimal_bisection(&h, &c).unwrap();
        assert_eq!(best.cut, 2);
    }

    #[test]
    fn infeasible_constraint_returns_none() {
        // One vertex of weight 100 makes an exact 50/52 split impossible.
        let mut b = HypergraphBuilder::new();
        b.add_vertex(100);
        b.add_vertex(1);
        b.add_vertex(1);
        let h = b.build().unwrap();
        let c = BalanceConstraint::from_window(102, 50, 52);
        assert!(optimal_bisection(&h, &c).is_none());
    }

    #[test]
    fn respects_fixed_vertices() {
        let h = ring(6).with_fixed(VertexId::new(0), Some(PartId::P1));
        let c = BalanceConstraint::with_fraction(6, 0.34);
        let best = optimal_bisection(&h, &c).unwrap();
        assert_eq!(best.assignment[0], PartId::P1);
        assert_eq!(best.cut, 2);
    }

    #[test]
    fn fm_matches_brute_force_on_small_instances() {
        let h = ring(10);
        let c = BalanceConstraint::with_fraction(10, 0.2);
        let optimal = optimal_bisection(&h, &c).unwrap();
        // Multi-start FM should find the ring optimum easily.
        let best_fm = (0..10)
            .map(|s| FmPartitioner::new(FmConfig::lifo()).run(&h, &c, s).cut)
            .min()
            .unwrap();
        assert_eq!(best_fm, optimal.cut);
    }

    #[test]
    fn feasible_count_is_reported() {
        let h = ring(4);
        let c = BalanceConstraint::with_fraction(4, 0.0);
        let best = optimal_bisection(&h, &c).unwrap();
        // 2^3 = 8 assignments with v0 pinned, those with 2/2 split: C(3,1) = 3.
        assert_eq!(best.feasible_count, 3);
    }

    #[test]
    #[should_panic(expected = "brute force limited")]
    fn too_large_panics() {
        let h = ring(31);
        let c = BalanceConstraint::with_fraction(31, 0.1);
        let _ = optimal_bisection(&h, &c);
    }
}
