//! Model-based property test: [`GainContainer`] against a naive reference
//! implementation under arbitrary operation sequences.

use proptest::prelude::*;

use hypart_core::gain::GainContainer;
use hypart_core::InsertionPolicy;
use hypart_hypergraph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Naive reference: per-bucket `Vec` with explicit head-at-front order.
#[derive(Default)]
struct NaiveModel {
    /// (key, bucket front-to-back) pairs.
    buckets: std::collections::BTreeMap<i64, Vec<u32>>,
    key_of: std::collections::HashMap<u32, i64>,
}

impl NaiveModel {
    fn insert_head(&mut self, v: u32, key: i64) {
        self.buckets.entry(key).or_default().insert(0, v);
        self.key_of.insert(v, key);
    }
    fn insert_tail(&mut self, v: u32, key: i64) {
        self.buckets.entry(key).or_default().push(v);
        self.key_of.insert(v, key);
    }
    fn remove(&mut self, v: u32) {
        let key = self.key_of.remove(&v).expect("present");
        let bucket = self.buckets.get_mut(&key).expect("bucket exists");
        bucket.retain(|&x| x != v);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
    }
    fn contains(&self, v: u32) -> bool {
        self.key_of.contains_key(&v)
    }
    fn max_key(&self) -> Option<i64> {
        self.buckets.keys().next_back().copied()
    }
    fn bucket(&self, key: i64) -> Vec<u32> {
        self.buckets.get(&key).cloned().unwrap_or_default()
    }
    fn len(&self) -> usize {
        self.key_of.len()
    }
}

/// One random operation on the pair of structures.
#[derive(Clone, Debug)]
enum Op {
    InsertHead(u32, i64),
    InsertTail(u32, i64),
    InsertRandom(u32, i64),
    Remove(u32),
    Update(u32, i64),
    UpdateRandom(u32, i64),
    Clear,
}

fn op_strategy(num_vertices: u32, key_bound: i64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..num_vertices, -key_bound..=key_bound).prop_map(|(v, k)| Op::InsertHead(v, k)),
        (0..num_vertices, -key_bound..=key_bound).prop_map(|(v, k)| Op::InsertTail(v, k)),
        (0..num_vertices, -key_bound..=key_bound).prop_map(|(v, k)| Op::InsertRandom(v, k)),
        (0..num_vertices).prop_map(Op::Remove),
        (0..num_vertices, -key_bound..=key_bound).prop_map(|(v, k)| Op::Update(v, k)),
        (0..num_vertices, -key_bound..=key_bound).prop_map(|(v, k)| Op::UpdateRandom(v, k)),
        // Rarely useful more than once in a row, but Clear must appear so
        // the O(len + touched) reset is exercised mid-sequence.
        (0..num_vertices).prop_map(|_| Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn container_matches_naive_model(ops in proptest::collection::vec(op_strategy(24, 9), 0..300)) {
        const N: usize = 24;
        const BOUND: i64 = 9;
        let mut real = GainContainer::new(N, BOUND);
        let mut model = NaiveModel::default();
        // Twin identically-seeded RNGs, consumed in lockstep: `rng` drives
        // the real container's `InsertionPolicy::Random` coin flips and
        // `twin` predicts them for the model. Both draw exactly once per
        // Random-policy insertion, so they never diverge.
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
        let mut twin = SmallRng::seed_from_u64(0xC0FFEE);

        for op in ops {
            match op {
                Op::InsertHead(v, k) if !model.contains(v) => {
                    real.insert(VertexId::new(v), k, InsertionPolicy::Lifo, &mut rng);
                    model.insert_head(v, k);
                }
                Op::InsertTail(v, k) if !model.contains(v) => {
                    real.insert(VertexId::new(v), k, InsertionPolicy::Fifo, &mut rng);
                    model.insert_tail(v, k);
                }
                Op::InsertRandom(v, k) if !model.contains(v) => {
                    real.insert(VertexId::new(v), k, InsertionPolicy::Random, &mut rng);
                    if twin.gen::<bool>() {
                        model.insert_head(v, k);
                    } else {
                        model.insert_tail(v, k);
                    }
                }
                Op::Remove(v) if model.contains(v) => {
                    real.remove(VertexId::new(v));
                    model.remove(v);
                }
                Op::Update(v, k) if model.contains(v) => {
                    // Update = remove + LIFO reinsert, in both structures.
                    real.update(VertexId::new(v), k, InsertionPolicy::Lifo, &mut rng);
                    model.remove(v);
                    model.insert_head(v, k);
                }
                Op::UpdateRandom(v, k) if model.contains(v) => {
                    real.update(VertexId::new(v), k, InsertionPolicy::Random, &mut rng);
                    model.remove(v);
                    if twin.gen::<bool>() {
                        model.insert_head(v, k);
                    } else {
                        model.insert_tail(v, k);
                    }
                }
                Op::Clear => {
                    real.clear();
                    model = NaiveModel::default();
                    prop_assert_eq!(real.touched_buckets(), 0);
                    prop_assert_eq!(real.descend_max(), None);
                }
                _ => continue, // skip ops invalid in the current state
            }

            // Full-state equivalence after every operation.
            prop_assert_eq!(real.len(), model.len());
            prop_assert_eq!(real.descend_max(), model.max_key());
            for key in -BOUND..=BOUND {
                let real_bucket: Vec<u32> =
                    real.bucket_contents(key).iter().map(|v| v.raw()).collect();
                prop_assert_eq!(&real_bucket, &model.bucket(key), "bucket {}", key);
            }
            for v in 0..N as u32 {
                prop_assert_eq!(real.contains(VertexId::new(v)), model.contains(v));
                if model.contains(v) {
                    prop_assert_eq!(real.key_of(VertexId::new(v)), model.key_of[&v]);
                }
            }
        }
    }
}
