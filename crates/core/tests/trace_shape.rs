//! Integration tests of the engine's trace emission: the event stream
//! must have the documented shape, agree with the returned
//! [`FmStats`]/[`FmOutcome`], and satisfy the paper's §2.3 corking
//! definition exactly.

use proptest::prelude::*;

use hypart_benchgen::ispd98_like;
use hypart_core::{BalanceConstraint, FmConfig, FmPartitioner, PassStats, CORKED_FRACTION};
use hypart_trace::{MemorySink, RunEvent};

/// Splits a run-level stream into per-pass event slices (everything
/// between a `PassBegin` and its `PassEnd`).
fn passes_of(events: &[RunEvent]) -> Vec<&[RunEvent]> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, e) in events.iter().enumerate() {
        match e {
            RunEvent::PassBegin { .. } => {
                assert!(start.is_none(), "nested PassBegin at {i}");
                start = Some(i);
            }
            RunEvent::PassEnd { .. } => {
                let s = start.take().expect("PassEnd without PassBegin");
                out.push(&events[s..=i]);
            }
            _ => {}
        }
    }
    assert!(start.is_none(), "unterminated pass");
    out
}

#[test]
fn event_stream_shape_matches_outcome() {
    let h = ispd98_like(1, 0.03, 11);
    let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let sink = MemorySink::new();
    let out = FmPartitioner::new(FmConfig::clip()).run_traced(&h, &c, 5, &sink);
    let events = sink.take();

    // Exactly one RunBegin (first) and one RunEnd (last).
    let begins: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, RunEvent::RunBegin { .. }))
        .map(|(i, _)| i)
        .collect();
    let ends: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, RunEvent::RunEnd { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(begins, vec![0]);
    assert_eq!(ends, vec![events.len() - 1]);
    assert_eq!(
        events[0],
        RunEvent::RunBegin {
            cut: out.stats.initial_cut
        }
    );
    assert_eq!(
        events[events.len() - 1],
        RunEvent::RunEnd {
            cut: out.cut,
            passes: out.stats.num_passes()
        }
    );

    // At least one PassBegin/PassEnd pair, pass indices dense and
    // monotone, and one pair per PassStats record.
    let passes = passes_of(&events);
    assert!(!passes.is_empty());
    assert_eq!(passes.len(), out.stats.num_passes());
    for (expect, pass) in passes.iter().enumerate() {
        let RunEvent::PassBegin { pass: b, .. } = pass[0] else {
            panic!("pass slice must start with PassBegin");
        };
        let RunEvent::PassEnd { pass: e, .. } = pass[pass.len() - 1] else {
            panic!("pass slice must end with PassEnd");
        };
        assert_eq!(b, expect, "PassBegin indices monotone from 0");
        assert_eq!(e, expect, "PassEnd index matches its PassBegin");
    }

    // Rollback events match the stats' rolled-back move count, per pass
    // and in total; Move events match moves_made.
    for (stats, pass) in out.stats.passes.iter().zip(&passes) {
        let moves = pass
            .iter()
            .filter(|e| matches!(e, RunEvent::Move { .. }))
            .count();
        let rollbacks = pass
            .iter()
            .filter(|e| matches!(e, RunEvent::Rollback { .. }))
            .count();
        assert_eq!(moves, stats.moves_made);
        assert_eq!(rollbacks, stats.moves_rolled_back);
    }
    let total_rollbacks = events
        .iter()
        .filter(|e| matches!(e, RunEvent::Rollback { .. }))
        .count();
    assert_eq!(
        total_rollbacks,
        out.stats
            .passes
            .iter()
            .map(|p| p.moves_rolled_back)
            .sum::<usize>()
    );
}

#[test]
fn fm_stats_are_derivable_from_events() {
    let h = ispd98_like(1, 0.03, 7);
    let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.05);
    let sink = MemorySink::new();
    let out = FmPartitioner::new(FmConfig::lifo()).run_traced(&h, &c, 2, &sink);
    let events = sink.take();

    for (stats, pass) in out.stats.passes.iter().zip(passes_of(&events)) {
        let RunEvent::PassBegin { cut, eligible, .. } = pass[0] else {
            unreachable!()
        };
        assert_eq!(cut, stats.cut_before);
        assert_eq!(eligible, stats.eligible);
        let RunEvent::PassEnd {
            cut,
            moves_made,
            moves_rolled_back,
            corked,
            ..
        } = pass[pass.len() - 1]
        else {
            unreachable!()
        };
        assert_eq!(cut, stats.cut_after);
        assert_eq!(moves_made, stats.moves_made);
        assert_eq!(moves_rolled_back, stats.moves_rolled_back);
        assert_eq!(corked, stats.corked);
    }
}

#[test]
fn traces_are_deterministic_per_seed() {
    let h = ispd98_like(1, 0.02, 3);
    let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let engine = FmPartitioner::new(FmConfig::clip());
    let a = MemorySink::new();
    let b = MemorySink::new();
    engine.run_traced(&h, &c, 9, &a);
    engine.run_traced(&h, &c, 9, &b);
    assert_eq!(a.take(), b.take());
}

/// Recomputes the §2.3 corked predicate from the raw pass observables.
fn corked_by_definition(leftovers: bool, moves_made: usize, eligible: usize) -> bool {
    leftovers && eligible > 0 && moves_made * CORKED_FRACTION.1 < eligible * CORKED_FRACTION.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `PassStats::cut_after` equals the minimum prefix of the recorded
    /// cut trajectory: rollback restores exactly the best cut seen.
    #[test]
    fn cut_after_is_min_prefix_of_trajectory(seed in any::<u64>(), clip in any::<bool>()) {
        let h = ispd98_like(1, 0.02, 19);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        let base = if clip { FmConfig::clip() } else { FmConfig::lifo() };
        let out = FmPartitioner::new(base.with_record_trace(true)).run(&h, &c, seed);
        prop_assert!(out.stats.num_passes() > 0);
        for p in &out.stats.passes {
            let best = p.cut_trace.iter().copied().min()
                .map_or(p.cut_before, |m| m.min(p.cut_before));
            prop_assert_eq!(p.cut_after, best,
                "cut_after {} != min-prefix {} (before {}, trace {:?})",
                p.cut_after, best, p.cut_before, p.cut_trace);
        }
    }

    /// The Move-event cut column reproduces `cut_trace` exactly, so the
    /// ad-hoc trajectory recorder is redundant with the event stream.
    #[test]
    fn move_events_reproduce_cut_trace(seed in any::<u64>()) {
        let h = ispd98_like(1, 0.02, 23);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        let sink = MemorySink::new();
        let out = FmPartitioner::new(FmConfig::clip().with_record_trace(true))
            .run_traced(&h, &c, seed, &sink);
        let events = sink.take();
        for (stats, pass) in out.stats.passes.iter().zip(passes_of(&events)) {
            let cuts: Vec<u64> = pass.iter().filter_map(|e| match e {
                RunEvent::Move { cut, .. } => Some(*cut),
                _ => None,
            }).collect();
            prop_assert_eq!(&cuts, &stats.cut_trace);
        }
    }

    /// The `corked` flag matches the `CORKED_FRACTION` definition exactly,
    /// both in the event stream (from `PassEnd` observables) and in the
    /// returned stats, with `Corked` events on exactly the corked passes.
    #[test]
    fn corked_flag_matches_definition(seed in 0u64..16, instance_seed in 0u64..8) {
        let h = ispd98_like(1, 0.03, instance_seed);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.02);
        let sink = MemorySink::new();
        let out = FmPartitioner::new(
            FmConfig::clip().with_exclude_overweight(false),
        ).run_traced(&h, &c, seed, &sink);
        let events = sink.take();
        for (stats, pass) in out.stats.passes.iter().zip(passes_of(&events)) {
            let RunEvent::PassBegin { eligible, .. } = pass[0] else { unreachable!() };
            let RunEvent::PassEnd { moves_made, leftovers, corked, .. } =
                pass[pass.len() - 1] else { unreachable!() };
            let expect = corked_by_definition(leftovers, moves_made, eligible);
            prop_assert_eq!(corked, expect);
            prop_assert_eq!(stats.corked, expect);
            let corked_events = pass.iter().filter(
                |e| matches!(e, RunEvent::Corked { .. })).count();
            prop_assert_eq!(corked_events, usize::from(expect));
        }
    }
}

/// The definition itself, pinned against hand-built `PassStats`.
#[test]
fn corked_definition_on_hand_built_stats() {
    // 5 of 100 eligible moved with leftovers: 5 * 20 == 100, NOT corked
    // (strict inequality).
    assert!(!corked_by_definition(true, 5, 100));
    // 4 of 100: corked.
    assert!(corked_by_definition(true, 4, 100));
    // No leftovers: never corked no matter how few moves.
    assert!(!corked_by_definition(false, 0, 100));
    // Nothing eligible: not corked.
    assert!(!corked_by_definition(true, 0, 0));
    let p = PassStats {
        moves_made: 4,
        eligible: 100,
        corked: true,
        ..PassStats::default()
    };
    assert_eq!(
        p.corked,
        corked_by_definition(true, p.moves_made, p.eligible)
    );
}
