//! Property tests of the FM engine across its entire knob space: whatever
//! the configuration, results must verify, respect balance, and never
//! regress the initial score.

use proptest::prelude::*;

use hypart_core::{
    BalanceConstraint, Bisection, FmConfig, FmPartitioner, IllegalHeadPolicy, InitialSolution,
    InsertionPolicy, PassBestRule, SelectionRule, TieBreak, ZeroDeltaPolicy,
};
use hypart_hypergraph::{Hypergraph, HypergraphBuilder, VertexId};
use rand::SeedableRng;

/// Compact random-hypergraph recipe: (size nibble, net triples, weights).
type Recipe = (u8, Vec<(u8, u8, u8)>, Vec<u8>);

/// Builds a random hypergraph from a compact recipe (avoids a dev-dep on
/// the generator crate).
fn build(recipe: &Recipe) -> Hypergraph {
    let (n_raw, nets, weights) = recipe;
    let n = (*n_raw as usize % 30) + 4;
    let mut b = HypergraphBuilder::new();
    for i in 0..n {
        let w = weights.get(i).copied().unwrap_or(1) as u64 % 8 + 1;
        b.add_vertex(w);
    }
    for &(a, c, d) in nets {
        let pins: Vec<VertexId> = [a, c, d]
            .iter()
            .map(|&x| VertexId::from_index(x as usize % n))
            .collect();
        // duplicates collapse in the builder; single-pin nets are legal
        b.add_net(pins, 1).expect("valid pins");
    }
    b.build().expect("valid hypergraph")
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (
        any::<u8>(),
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..60),
        proptest::collection::vec(any::<u8>(), 0..34),
    )
}

fn config() -> impl Strategy<Value = FmConfig> {
    (
        prop_oneof![Just(SelectionRule::Classic), Just(SelectionRule::Clip)],
        prop_oneof![
            Just(TieBreak::Away),
            Just(TieBreak::Part0),
            Just(TieBreak::Toward)
        ],
        prop_oneof![Just(ZeroDeltaPolicy::All), Just(ZeroDeltaPolicy::Nonzero)],
        prop_oneof![
            Just(InsertionPolicy::Lifo),
            Just(InsertionPolicy::Fifo),
            Just(InsertionPolicy::Random)
        ],
        prop_oneof![
            Just(PassBestRule::FirstSeen),
            Just(PassBestRule::LastSeen),
            Just(PassBestRule::MostBalanced)
        ],
        prop_oneof![
            Just(IllegalHeadPolicy::SkipBucket),
            Just(IllegalHeadPolicy::SkipSide)
        ],
        any::<bool>(),
        1usize..5,
        prop_oneof![
            Just(InitialSolution::RandomBalanced),
            Just(InitialSolution::AreaSortedGreedy),
            Just(InitialSolution::UniformRandom)
        ],
    )
        .prop_map(
            |(selection, tie, zero, insertion, pass_best, illegal, exclude, lookahead, initial)| {
                FmConfig {
                    selection,
                    tie_break: tie,
                    zero_delta: zero,
                    insertion,
                    pass_best,
                    illegal_head: illegal,
                    exclude_overweight: exclude,
                    lookahead,
                    max_passes: 16,
                    initial,
                    record_trace: false,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any configuration, any instance: the reported cut matches a
    /// from-scratch recount and the run terminates.
    #[test]
    fn every_configuration_verifies(r in recipe(), cfg in config(), seed in any::<u64>()) {
        let h = build(&r);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.30);
        // Reconstruct the engine's initial solution (run() derives it from
        // the same seed) so the true invariant — the lexicographic
        // (violation, cut) score never worsens — is checkable.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let initial = hypart_core::generate_initial(&h, cfg.initial, &mut rng);
        let initial_bis = Bisection::new(&h, initial).expect("valid initial");
        let score_before = (c.total_violation(&initial_bis), initial_bis.cut());

        let out = FmPartitioner::new(cfg).run(&h, &c, seed);
        let bis = Bisection::new(&h, out.assignment).expect("valid assignment");
        prop_assert_eq!(bis.recompute_cut(), out.cut);
        prop_assert_eq!(out.balanced, c.is_satisfied(&bis));
        prop_assert_eq!(out.stats.initial_cut, score_before.1);
        let score_after = (c.total_violation(&bis), bis.cut());
        prop_assert!(score_after <= score_before,
            "score worsened {score_before:?} -> {score_after:?}");
    }

    /// Same seed, same config, same instance: identical outcome (the
    /// reproducibility requirement the paper puts first).
    #[test]
    fn runs_are_reproducible(r in recipe(), cfg in config(), seed in any::<u64>()) {
        let h = build(&r);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.25);
        let a = FmPartitioner::new(cfg).run(&h, &c, seed);
        let b = FmPartitioner::new(cfg).run(&h, &c, seed);
        prop_assert_eq!(a.assignment, b.assignment);
        prop_assert_eq!(a.cut, b.cut);
        prop_assert_eq!(a.stats.num_passes(), b.stats.num_passes());
    }

    /// Tightening the balance window never produces an unbalanced report
    /// claiming to be balanced, and zero-tolerance windows still terminate.
    #[test]
    fn extreme_tolerances_terminate(r in recipe(), seed in any::<u64>()) {
        let h = build(&r);
        for fraction in [0.0, 0.01, 0.9] {
            let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), fraction);
            let out = FmPartitioner::new(FmConfig::lifo()).run(&h, &c, seed);
            let bis = Bisection::new(&h, out.assignment).expect("valid");
            prop_assert_eq!(out.balanced, c.is_satisfied(&bis), "fraction {}", fraction);
        }
    }
}
