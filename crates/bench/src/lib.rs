//! Regeneration harness for every table and figure of the paper.
//!
//! Each public function rebuilds one evaluation artifact on the synthetic
//! ISPD98-like suite (see `hypart-benchgen` and DESIGN.md §4 for the
//! substitution rationale):
//!
//! | paper artifact | function | binary |
//! |----------------|----------|--------|
//! | Table 1 (implicit decisions × engines) | [`table1`] | `table1` |
//! | Table 2 (our vs reported LIFO) | [`table2`] | `table2` |
//! | Table 3 (our vs reported CLIP) | [`table3`] | `table3` |
//! | Tables 4–5 (hMetis-style quality/runtime sweep) | [`table45`] | `table45` |
//! | BSF curve methodology (§3.2) | [`bsf_experiment`] | `bsf_curve` |
//! | Pareto frontier methodology (§3.2) | [`pareto_experiment`] | `pareto_frontier` |
//! | Ranking diagram methodology (§3.2) | [`ranking_experiment`] | `ranking_diagram` |
//! | CLIP corking traces (§2.3) | [`corking_experiment`] | `corking_trace` |
//!
//! All functions take an [`ExperimentConfig`] so binaries, integration
//! tests, and Criterion benches share one code path at different scales.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hypart_benchgen::{ispd98_like, mcnc_like};
use hypart_core::{BalanceConstraint, FmConfig, SelectionRule, TieBreak, ZeroDeltaPolicy};
use hypart_eval::bsf::BsfCurve;
use hypart_eval::pareto::{frontier_report, pareto_frontier, PerfPoint};
use hypart_eval::ranking::{RankingDiagram, RankingRow};
use hypart_eval::runner::{
    run_trials, FlatFmHeuristic, Heuristic, MlHeuristic, MultiStartHeuristic, TrialSet,
};
use hypart_eval::stats::wilcoxon_rank_sum;
use hypart_eval::table::Table;
use hypart_hypergraph::Hypergraph;
use hypart_ml::MlConfig;

/// Shared experiment parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExperimentConfig {
    /// Instance scale relative to the published ISPD98 sizes (1.0 = full).
    pub scale: f64,
    /// Independent trials per configuration (the paper uses 100 for
    /// Tables 1–3 and 50 for Tables 4–5).
    pub trials: usize,
    /// Base RNG seed for instance generation and trial seeding.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.10,
            trials: 20,
            seed: 1999, // DAC-99
        }
    }
}

impl ExperimentConfig {
    /// Parses `--scale`, `--trials`, and `--seed` from a CLI argument list
    /// (unknown arguments are ignored so binaries can add their own).
    ///
    /// # Panics
    ///
    /// Panics with a usage message if a flag value is missing or
    /// unparsable.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = ExperimentConfig::default();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let mut take = |what: &str| -> String {
                i += 1;
                args.get(i)
                    .unwrap_or_else(|| panic!("missing value for {what}"))
                    .clone()
            };
            match flag {
                "--scale" => cfg.scale = take("--scale").parse().expect("--scale takes a float"),
                "--trials" => {
                    cfg.trials = take("--trials").parse().expect("--trials takes an integer")
                }
                "--seed" => cfg.seed = take("--seed").parse().expect("--seed takes an integer"),
                _ => {}
            }
            i += 1;
        }
        cfg
    }
}

/// Builds the synthetic instance for 1-based IBM index `i`.
pub fn instance(cfg: &ExperimentConfig, i: usize) -> Hypergraph {
    ispd98_like(i, cfg.scale, cfg.seed.wrapping_add(i as u64))
}

/// The paper's 2 % balance constraint (49–51 %) for `h`.
pub fn tol2(h: &Hypergraph) -> BalanceConstraint {
    BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.02)
}

/// The paper's 10 % balance constraint (45–55 %) for `h`.
pub fn tol10(h: &Hypergraph) -> BalanceConstraint {
    BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10)
}

fn flat(config: FmConfig, label: &str) -> Box<dyn Heuristic> {
    Box::new(FlatFmHeuristic::new(label, config))
}

fn ml(config: FmConfig, label: &str) -> Box<dyn Heuristic> {
    Box::new(MlHeuristic::new(
        label,
        MlConfig::default().with_refine(config),
    ))
}

/// **Table 1**: best/average cuts for the four engines × the two implicit
/// decisions (zero-delta updates × tie-break bias), on ibm01s–ibm03s with
/// actual areas and 2 % balance tolerance.
pub fn table1(cfg: &ExperimentConfig) -> Table {
    let instances: Vec<Hypergraph> = (1..=3).map(|i| instance(cfg, i)).collect();
    let mut table = Table::new(["ENGINE", "Updates", "Bias", "ibm01s", "ibm02s", "ibm03s"])
        .with_title(format!(
            "Table 1: min/avg cuts, actual areas, 2% tolerance, {} runs, scale {}",
            cfg.trials, cfg.scale
        ));

    let engines: [(&str, bool, SelectionRule); 4] = [
        ("Flat LIFO FM", false, SelectionRule::Classic),
        ("Flat CLIP FM", false, SelectionRule::Clip),
        ("ML LIFO FM", true, SelectionRule::Classic),
        ("ML CLIP FM", true, SelectionRule::Clip),
    ];
    let updates = [
        ("All\u{2206}gain", ZeroDeltaPolicy::All),
        ("Nonzero", ZeroDeltaPolicy::Nonzero),
    ];
    let biases = [
        ("Away", TieBreak::Away),
        ("Part0", TieBreak::Part0),
        ("Toward", TieBreak::Toward),
    ];

    for (engine_name, is_ml, selection) in engines {
        for (update_name, zero_delta) in updates {
            for (bias_name, tie_break) in biases {
                let fm = FmConfig::default()
                    .with_selection(selection)
                    .with_zero_delta(zero_delta)
                    .with_tie_break(tie_break);
                let heuristic: Box<dyn Heuristic> = if is_ml {
                    ml(fm, engine_name)
                } else {
                    flat(fm, engine_name)
                };
                let mut cells = Vec::with_capacity(3);
                for h in &instances {
                    let set = run_trials(heuristic.as_ref(), h, &tol2(h), cfg.trials, cfg.seed);
                    cells.push(set.min_avg_cell());
                }
                table.add_row([
                    engine_name.to_string(),
                    update_name.to_string(),
                    bias_name.to_string(),
                    cells[0].clone(),
                    cells[1].clone(),
                    cells[2].clone(),
                ]);
            }
        }
    }
    table
}

/// Shared engine-vs-baseline comparison behind Tables 2 and 3.
fn ours_vs_reported(
    cfg: &ExperimentConfig,
    title: &str,
    reported_label: &str,
    reported: FmConfig,
    ours_label: &str,
    ours: FmConfig,
) -> Table {
    let instances: Vec<Hypergraph> = (1..=3).map(|i| instance(cfg, i)).collect();
    let mut table = Table::new(["Tolerance", "Algorithm", "ibm01s", "ibm02s", "ibm03s"])
        .with_title(format!(
            "{title} (min/avg over {} single-start trials, scale {})",
            cfg.trials, cfg.scale
        ));
    for (tol_name, tol_fraction) in [("02%", 0.02), ("10%", 0.10)] {
        for (label, config) in [(reported_label, reported), (ours_label, ours)] {
            let heuristic = FlatFmHeuristic::new(label, config);
            let mut cells = Vec::with_capacity(3);
            for h in &instances {
                let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), tol_fraction);
                let set = run_trials(&heuristic, h, &c, cfg.trials, cfg.seed);
                cells.push(set.min_avg_cell());
            }
            table.add_row([
                tol_name.to_string(),
                label.to_string(),
                cells[0].clone(),
                cells[1].clone(),
                cells[2].clone(),
            ]);
        }
    }
    table
}

/// **Table 2**: our LIFO FM vs a "Reported"-style weak LIFO FM, at 2 % and
/// 10 % tolerance with actual areas.
pub fn table2(cfg: &ExperimentConfig) -> Table {
    ours_vs_reported(
        cfg,
        "Table 2: LIFO FM vs weak `Reported' LIFO FM",
        "Reported LIFO",
        FmConfig::reported_lifo(),
        "Our LIFO",
        FmConfig::lifo(),
    )
}

/// **Table 3**: our CLIP FM (with the anti-corking overweight exclusion)
/// vs a "Reported"-style CLIP FM fully exposed to corking.
pub fn table3(cfg: &ExperimentConfig) -> Table {
    ours_vs_reported(
        cfg,
        "Table 3: CLIP FM vs weak `Reported' CLIP FM",
        "Reported CLIP",
        FmConfig::reported_clip(),
        "Our CLIP",
        FmConfig::clip(),
    )
}

/// IBM indices used by the paper for Tables 4–5.
pub const TABLE45_INSTANCES: [usize; 9] = [1, 2, 3, 4, 5, 6, 10, 14, 18];

/// Number-of-starts per configuration column, as in the paper.
pub const TABLE45_STARTS: [usize; 6] = [1, 2, 4, 8, 16, 100];

/// **Tables 4–5**: hMetis-1.5-style evaluation — average best cut and
/// average CPU seconds per multi-start configuration (1, 2, 4, 8, 16, 100
/// starts, V-cycling the best), at the given balance `fraction`
/// (0.02 → Table 4, 0.10 → Table 5).
///
/// `max_instances` truncates the instance list (large ibm14/ibm18 replicas
/// are expensive at high scales); `repetitions` is the number of times
/// each configuration is re-run (50 in the paper).
pub fn table45(
    cfg: &ExperimentConfig,
    fraction: f64,
    max_instances: usize,
    repetitions: usize,
) -> Table {
    let mut headers = vec!["Circuit".to_string()];
    headers.extend(
        TABLE45_STARTS
            .iter()
            .enumerate()
            .map(|(i, s)| format!("cfg{} ({}s)", i + 1, s)),
    );
    let mut table = Table::new(headers).with_title(format!(
        "Tables 4/5 style: avg cut / avg CPU sec, {}% window, {} reps, scale {}",
        (fraction * 100.0) as u32,
        repetitions,
        cfg.scale
    ));
    for &idx in TABLE45_INSTANCES.iter().take(max_instances) {
        let h = instance(cfg, idx);
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), fraction);
        let mut row = vec![h.name().to_string()];
        for &starts in &TABLE45_STARTS {
            let heuristic =
                MultiStartHeuristic::new(format!("hML x{starts}"), MlConfig::default(), starts, 4);
            let set = run_trials(&heuristic, &h, &c, repetitions, cfg.seed);
            row.push(format!("{:.1}/{:.2}", set.avg_cut(), set.avg_seconds()));
        }
        table.add_row(row);
    }
    table
}

/// **BSF methodology figure**: best-so-far curves (expected best cut vs
/// CPU budget) for the flat and multilevel engines on one instance,
/// rendered as CSV series plus an ASCII plot.
pub fn bsf_experiment(cfg: &ExperimentConfig) -> String {
    let h = instance(cfg, 1);
    let c = tol2(&h);
    let heuristics: Vec<Box<dyn Heuristic>> = vec![
        flat(FmConfig::lifo(), "Flat LIFO"),
        flat(FmConfig::clip(), "Flat CLIP"),
        ml(FmConfig::lifo(), "ML LIFO"),
        ml(FmConfig::clip(), "ML CLIP"),
        Box::new(hypart_baselines::SpectralPartitioner::default()),
        Box::new(hypart_baselines::AnnealingPartitioner::default()),
    ];
    let mut out = String::new();
    out.push_str("heuristic,starts,budget_seconds,expected_best_cut\n");
    let mut plots = String::new();
    for heuristic in &heuristics {
        let set = run_trials(heuristic.as_ref(), &h, &c, cfg.trials, cfg.seed);
        let curve = BsfCurve::from_trials(&set, 100);
        for p in &curve.points {
            out.push_str(&format!(
                "{},{},{:.6},{:.3}\n",
                curve.heuristic, p.starts, p.seconds, p.expected_best_cut
            ));
        }
        plots.push_str(&curve.ascii_plot(64, 10));
        plots.push('\n');
    }
    format!("{out}\n{plots}")
}

/// **Pareto methodology figure**: the non-dominated frontier of
/// (average cut, average seconds) across engine configurations on one
/// instance.
pub fn pareto_experiment(cfg: &ExperimentConfig) -> String {
    let h = instance(cfg, 1);
    let c = tol2(&h);
    let mut points = Vec::new();
    let configs: Vec<(String, Box<dyn Heuristic>)> = vec![
        ("Flat LIFO".into(), flat(FmConfig::lifo(), "Flat LIFO")),
        ("Flat CLIP".into(), flat(FmConfig::clip(), "Flat CLIP")),
        ("ML LIFO".into(), ml(FmConfig::lifo(), "ML LIFO")),
        ("ML CLIP".into(), ml(FmConfig::clip(), "ML CLIP")),
        (
            "hML x4+V".into(),
            Box::new(MultiStartHeuristic::new(
                "hML x4+V",
                MlConfig::default(),
                4,
                4,
            )),
        ),
        (
            "Spectral".into(),
            Box::new(hypart_baselines::SpectralPartitioner::default()),
        ),
        (
            "Annealing".into(),
            Box::new(hypart_baselines::AnnealingPartitioner::default()),
        ),
    ];
    for (label, heuristic) in &configs {
        let set = run_trials(heuristic.as_ref(), &h, &c, cfg.trials, cfg.seed);
        points.push(PerfPoint::new(
            label.clone(),
            set.avg_cut(),
            set.avg_seconds(),
        ));
    }
    let frontier = pareto_frontier(&points);
    let mut out = frontier_report(&points);
    out.push_str(&format!(
        "\nfrontier size: {} of {} configurations\n",
        frontier.len(),
        points.len()
    ));
    out
}

/// **Ranking methodology figure**: (instance size × CPU budget) dominance
/// grid for flat vs multilevel engines across three instance sizes.
pub fn ranking_experiment(cfg: &ExperimentConfig) -> String {
    let mut rows = Vec::new();
    let mut min_budget = f64::INFINITY;
    let mut max_budget: f64 = 0.0;
    for idx in [1usize, 2, 3] {
        let h = instance(cfg, idx);
        let c = tol2(&h);
        let mut curves = Vec::new();
        for (label, heuristic) in [
            ("Flat LIFO", flat(FmConfig::lifo(), "Flat LIFO")),
            ("ML LIFO", ml(FmConfig::lifo(), "ML LIFO")),
        ] {
            let set = run_trials(heuristic.as_ref(), &h, &c, cfg.trials, cfg.seed);
            let curve = BsfCurve::from_trials(&set, 100);
            min_budget = min_budget.min(curve.min_budget());
            max_budget = max_budget.max(curve.points.last().expect("points").seconds);
            let _ = label;
            curves.push(curve);
        }
        rows.push(RankingRow {
            instance: h.name().to_string(),
            size: h.num_vertices(),
            curves,
        });
    }
    // Geometric budget spacing from the cheapest single start up to the
    // full multistart budget, so the cheap-regime / rich-regime crossover
    // (where a fast weak heuristic beats a slow strong one) is visible.
    let ratio = (max_budget / min_budget).max(1.0 + 1e-9);
    let budgets: Vec<f64> = (0..6)
        .map(|i| min_budget * ratio.powf(i as f64 / 5.0))
        .collect();
    RankingDiagram::new(rows, budgets).render()
}

/// **Corking trace** (§2.3): frequency of corked CLIP passes and average
/// cuts with and without the overweight-cell exclusion, on actual-area
/// instances versus a unit-area MCNC-like control (where the paper says
/// corking is masked), plus a Wilcoxon significance check of the cut
/// difference.
pub fn corking_experiment(cfg: &ExperimentConfig) -> Table {
    let mut table = Table::new([
        "instance",
        "areas",
        "engine",
        "corked passes",
        "min/avg cut",
        "p vs fixed",
    ])
    .with_title(format!(
        "CLIP corking trace, 2% tolerance, {} runs, scale {}",
        cfg.trials, cfg.scale
    ));
    let mut instances: Vec<(Hypergraph, &str)> =
        (1..=2).map(|i| (instance(cfg, i), "actual")).collect();
    instances.push((
        mcnc_like((2000.0 * cfg.scale * 10.0) as usize + 100, cfg.seed),
        "unit",
    ));

    for (h, areas) in &instances {
        let c = tol2(h);
        let corked = corked_stats(h, &c, FmConfig::reported_clip(), cfg);
        let fixed = corked_stats(
            h,
            &c,
            FmConfig::reported_clip().with_exclude_overweight(true),
            cfg,
        );
        let p = wilcoxon_rank_sum(&corked.2.cuts(), &fixed.2.cuts())
            .map(|w| format!("{:.4}", w.p_value))
            .unwrap_or_else(|| "-".into());
        table.add_row([
            h.name().to_string(),
            areas.to_string(),
            "CLIP (corkable)".to_string(),
            format!("{}/{}", corked.0, corked.1),
            corked.2.min_avg_cell(),
            p,
        ]);
        table.add_row([
            h.name().to_string(),
            areas.to_string(),
            "CLIP + exclusion".to_string(),
            format!("{}/{}", fixed.0, fixed.1),
            fixed.2.min_avg_cell(),
            "-".to_string(),
        ]);
    }
    table
}

/// Runs CLIP trials collecting (corked passes, total passes, trial set).
///
/// Corking is counted from the uniform [`RunEvent`] stream — the same
/// `corked`-flagged `PassEnd` events the CLI's `--trace` writes — rather
/// than from engine-private statistics, so this experiment exercises the
/// observability path it reports on.
fn corked_stats(
    h: &Hypergraph,
    c: &BalanceConstraint,
    fm: FmConfig,
    cfg: &ExperimentConfig,
) -> (usize, usize, TrialSet) {
    use hypart_core::FmPartitioner;
    use hypart_trace::{MemorySink, RunEvent};
    let engine = FmPartitioner::new(fm);
    let mut corked = 0usize;
    let mut total = 0usize;
    let mut trials = Vec::with_capacity(cfg.trials);
    for i in 0..cfg.trials {
        let seed = cfg.seed.wrapping_add(i as u64);
        let sink = MemorySink::new();
        let t = std::time::Instant::now();
        let out = engine.run_traced(h, c, seed, &sink);
        for event in sink.take() {
            if let RunEvent::PassEnd { corked: true, .. } = event {
                corked += 1;
            }
        }
        total += out.stats.num_passes();
        trials.push(hypart_eval::runner::Trial {
            seed,
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            elapsed: t.elapsed(),
        });
    }
    (
        corked,
        total,
        TrialSet {
            heuristic: "CLIP".into(),
            instance: h.name().to_string(),
            trials,
            failed_trials: 0,
        },
    )
}

/// **Ablation study** over the design choices DESIGN.md calls out beyond
/// the paper's main grid: gain-bucket insertion policy (LIFO / FIFO /
/// random — the \[HHK-95\] result), in-bucket lookahead past illegal heads
/// (the paper judges it "too time-consuming … harmful"), and the
/// multilevel coarsening scheme (FirstChoice vs heavy-edge matching).
/// Reports min/avg cut and average seconds per run.
pub fn ablation_experiment(cfg: &ExperimentConfig) -> Table {
    use hypart_core::InsertionPolicy;
    use hypart_ml::coarsen::{CoarsenConfig, CoarsenScheme};

    let h = instance(cfg, 1);
    let c = tol2(&h);
    let mut table =
        Table::new(["dimension", "setting", "min/avg cut", "avg sec"]).with_title(format!(
            "Ablations on {} (2% tolerance, {} runs)",
            h.name(),
            cfg.trials
        ));

    let run_flat = |dimension: &str, setting: &str, fm: FmConfig, table: &mut Table| {
        let set = run_trials(
            &FlatFmHeuristic::new(setting, fm),
            &h,
            &c,
            cfg.trials,
            cfg.seed,
        );
        table.add_row([
            dimension.to_string(),
            setting.to_string(),
            set.min_avg_cell(),
            format!("{:.4}", set.avg_seconds()),
        ]);
    };

    for (setting, insertion) in [
        ("LIFO", InsertionPolicy::Lifo),
        ("FIFO", InsertionPolicy::Fifo),
        ("Random", InsertionPolicy::Random),
    ] {
        run_flat(
            "insertion",
            setting,
            FmConfig::lifo().with_insertion(insertion),
            &mut table,
        );
    }
    for lookahead in [1usize, 4, 16] {
        run_flat(
            "lookahead",
            &format!("k={lookahead}"),
            FmConfig::clip().with_lookahead(lookahead),
            &mut table,
        );
    }
    for (setting, scheme) in [
        ("FirstChoice", CoarsenScheme::FirstChoice),
        ("HeavyEdge", CoarsenScheme::HeavyEdge),
    ] {
        let ml_cfg = MlConfig {
            coarsen: CoarsenConfig {
                scheme,
                ..CoarsenConfig::default()
            },
            ..MlConfig::default()
        };
        let set = run_trials(
            &MlHeuristic::new(setting, ml_cfg),
            &h,
            &c,
            cfg.trials,
            cfg.seed,
        );
        table.add_row([
            "coarsening".to_string(),
            setting.to_string(),
            set.min_avg_cell(),
            format!("{:.4}", set.avg_seconds()),
        ]);
    }
    table
}

/// **Fixed-terminals experiment** (§2.1): the paper argues that the many
/// fixed vertices real top-down placement instances carry "fundamentally
/// change the nature of the partitioning problem" versus the unfixed
/// benchmarks the literature studies. Partition the same instance with
/// increasing fractions of terminals fixed and report how the cut
/// distribution moves (mean up — the boundary is pinned — and relative
/// spread down — the problem gets "easier"/more determined).
pub fn fixed_terminals_experiment(cfg: &ExperimentConfig) -> Table {
    use hypart_benchgen::with_pad_ring;
    use hypart_eval::stats::Summary;

    let base = instance(cfg, 1);
    let mut table = Table::new([
        "fixed fraction",
        "fixed cells",
        "min/avg cut",
        "std dev",
        "rel spread",
    ])
    .with_title(format!(
        "Fixed-terminal effect on {} (ML LIFO, 10% tolerance, {} runs)",
        base.name(),
        cfg.trials
    ));
    for fraction in [0.0, 0.05, 0.20, 0.50] {
        let count = (base.num_vertices() as f64 * fraction) as usize;
        let h = if count == 0 {
            base.clone()
        } else {
            with_pad_ring(&base, count, cfg.seed)
        };
        let c = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
        let set = run_trials(
            &MlHeuristic::new("ML LIFO", MlConfig::ml_lifo()),
            &h,
            &c,
            cfg.trials,
            cfg.seed,
        );
        let summary = Summary::of(&set.cuts()).expect("trials exist");
        table.add_row([
            format!("{:.0}%", fraction * 100.0),
            count.to_string(),
            set.min_avg_cell(),
            format!("{:.1}", summary.std_dev),
            format!("{:.3}", summary.std_dev / summary.mean.max(1.0)),
        ]);
    }
    table
}

/// Writes `content` to `results/<name>` relative to the workspace root
/// (falling back to the current directory when run elsewhere) and returns
/// the path written.
pub fn write_result(name: &str, content: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            scale: 0.01,
            trials: 3,
            seed: 5,
        }
    }

    #[test]
    fn config_from_args() {
        let args: Vec<String> = ["--scale", "0.3", "--trials", "7", "--seed", "12", "--junk"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cfg = ExperimentConfig::from_args(&args);
        assert_eq!(cfg.scale, 0.3);
        assert_eq!(cfg.trials, 7);
        assert_eq!(cfg.seed, 12);
    }

    #[test]
    fn table1_has_24_rows() {
        let t = table1(&tiny_cfg());
        assert_eq!(t.num_rows(), 24); // 4 engines × 2 updates × 3 biases
    }

    #[test]
    fn table2_and_3_have_4_rows() {
        assert_eq!(table2(&tiny_cfg()).num_rows(), 4);
        assert_eq!(table3(&tiny_cfg()).num_rows(), 4);
    }

    #[test]
    fn table45_row_per_instance() {
        let t = table45(&tiny_cfg(), 0.02, 2, 1);
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn corking_table_renders() {
        let t = corking_experiment(&tiny_cfg());
        assert_eq!(t.num_rows(), 6); // 3 instances × 2 engines
        assert!(t.render().contains("CLIP"));
    }

    #[test]
    fn ablation_table_has_all_dimensions() {
        let t = ablation_experiment(&tiny_cfg());
        assert_eq!(t.num_rows(), 8); // 3 insertion + 3 lookahead + 2 coarsening
        let text = t.render();
        assert!(text.contains("FIFO"));
        assert!(text.contains("HeavyEdge"));
    }

    #[test]
    fn fixed_terminals_table_has_four_rows() {
        let t = fixed_terminals_experiment(&tiny_cfg());
        assert_eq!(t.num_rows(), 4);
        assert!(t.render().contains("50%"));
    }

    #[test]
    fn figures_render() {
        let cfg = tiny_cfg();
        assert!(bsf_experiment(&cfg).contains("expected_best_cut"));
        assert!(pareto_experiment(&cfg).contains("frontier"));
        assert!(ranking_experiment(&cfg).contains("ibm01"));
    }
}
