//! Regenerates the paper's Table 3: our CLIP FM (anti-corking exclusion)
//! vs a weak "Reported" CLIP FM at 2% and 10% tolerance.
//!
//! Usage: `cargo run --release -p hypart-bench --bin table3 -- [--scale S] [--trials N]`

use hypart_bench::{table3, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = table3(&cfg);
    println!("{}", table.render());
    match write_result("table3.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
