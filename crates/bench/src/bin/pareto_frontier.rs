//! Regenerates the non-dominated-frontier methodology figure of §3.2:
//! (average cut, average seconds) across engine configurations.
//!
//! Usage: `cargo run --release -p hypart-bench --bin pareto_frontier -- [--scale S] [--trials N]`

use hypart_bench::{pareto_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let report = pareto_experiment(&cfg);
    println!("{report}");
    match write_result("pareto_frontier.txt", &report) {
        Ok(path) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("could not write: {e}"),
    }
}
