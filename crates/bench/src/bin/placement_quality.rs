//! The application-level payoff experiment: how much does partitioner
//! quality matter *in the driving application's own metric* (HPWL of a
//! top-down min-cut placement)? §2.1 argues heuristics must be evaluated
//! "in light of the driving application"; this harness does exactly that
//! by swapping engines inside the same placer.
//!
//! Usage: `cargo run --release -p hypart-bench --bin placement_quality -- [--scale S] [--trials N]`

use hypart_bench::{instance, write_result, ExperimentConfig};
use hypart_core::FmConfig;
use hypart_eval::stats::Summary;
use hypart_eval::table::Table;
use hypart_ml::MlConfig;
use hypart_place::{hpwl, PlacerConfig, Rect, TopDownPlacer};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let h = instance(&cfg, 1);
    let die = Rect::new(0.0, 0.0, 2000.0, 2000.0);

    let mut table = Table::new([
        "engine in placer",
        "term-prop",
        "HPWL min",
        "HPWL mean",
        "std",
    ])
    .with_title(format!(
        "Placement quality vs partitioner strength on {} ({} cells, {} seeds)",
        h.name(),
        h.num_vertices(),
        cfg.trials
    ));

    let engines: [(&str, MlConfig); 3] = [
        ("ML + Our LIFO", MlConfig::ml_lifo()),
        ("ML + Our CLIP", MlConfig::ml_clip()),
        (
            "ML + Reported LIFO",
            MlConfig::default().with_refine(FmConfig::reported_lifo()),
        ),
    ];
    for (label, ml) in engines {
        for term_prop in [true, false] {
            let placer = TopDownPlacer::new(PlacerConfig {
                ml: ml.clone(),
                terminal_propagation: term_prop,
                ..PlacerConfig::default()
            });
            let samples: Vec<f64> = (0..cfg.trials as u64)
                .map(|seed| hpwl(&h, &placer.run(&h, die, cfg.seed.wrapping_add(seed))))
                .collect();
            let s = Summary::of(&samples).expect("trials exist");
            table.add_row([
                label.to_string(),
                term_prop.to_string(),
                format!("{:.0}", s.min),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.std_dev),
            ]);
        }
    }
    println!("{}", table.render());
    match write_result("placement_quality.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
