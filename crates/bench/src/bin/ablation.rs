//! Ablation study over design choices beyond the paper's main grid:
//! insertion policy, CLIP lookahead, coarsening scheme.
//!
//! Usage: `cargo run --release -p hypart-bench --bin ablation -- [--scale S] [--trials N]`

use hypart_bench::{ablation_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = ablation_experiment(&cfg);
    println!("{}", table.render());
    match write_result("ablation.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
