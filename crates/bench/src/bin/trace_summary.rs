//! Summarizes a JSONL run-event trace produced by `hypart partition
//! --trace FILE.jsonl` (or any [`JsonlSink`] consumer): per-kind event
//! counts, corking rate, move/rollback totals, and the final cut — the
//! same counters the CLI prints live, recovered offline from the file.
//!
//! Usage: `cargo run --release -p hypart-bench --bin trace_summary -- FILE.jsonl [FILE2.jsonl ...]`
//!
//! [`JsonlSink`]: hypart_trace::JsonlSink

use hypart_trace::json::JsonValue;
use hypart_trace::{CounterSink, RunEvent, TraceSink};

fn summarize(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let counters = CounterSink::new();
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = JsonValue::parse(line).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        let event = RunEvent::from_json(&value).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        counters.emit(event);
        lines += 1;
    }
    // Events carry no timestamps (determinism), so the histogram times the
    // replay itself; the counts are the faithful part of the summary.
    Ok(format!(
        "{path}: {lines} events\n{}\n  (pass durations reflect replay wall-clock, not the original run)",
        counters.summary()
    ))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: trace_summary FILE.jsonl [FILE2.jsonl ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match summarize(path) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
