//! Regenerates the paper's Table 2: our LIFO FM vs a weak "Reported" LIFO
//! FM at 2% and 10% tolerance.
//!
//! Usage: `cargo run --release -p hypart-bench --bin table2 -- [--scale S] [--trials N]`

use hypart_bench::{table2, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = table2(&cfg);
    println!("{}", table.render());
    match write_result("table2.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
