//! Regenerates the paper's Tables 4 and 5: hMetis-1.5-style multi-start
//! quality/runtime sweep (configs = 1, 2, 4, 8, 16, 100 starts + V-cycle).
//!
//! Usage: `cargo run --release -p hypart-bench --bin table45 -- \
//!   [--tol 0.02|0.10] [--scale S] [--reps R] [--instances M] [--seed K]`

use hypart_bench::{table45, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let mut tol = 0.02f64;
    let mut reps = 5usize;
    let mut max_instances = 9usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                i += 1;
                tol = args[i].parse().expect("--tol takes a float");
            }
            "--reps" => {
                i += 1;
                reps = args[i].parse().expect("--reps takes an integer");
            }
            "--instances" => {
                i += 1;
                max_instances = args[i].parse().expect("--instances takes an integer");
            }
            _ => {}
        }
        i += 1;
    }
    let table = table45(&cfg, tol, max_instances, reps);
    println!("{}", table.render());
    let which = if tol <= 0.05 { "table4" } else { "table5" };
    match write_result(&format!("{which}.csv"), &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
