//! Regenerates the BSF-curve methodology figure of §3.2: expected best cut
//! versus CPU budget for the flat and multilevel engines.
//!
//! Usage: `cargo run --release -p hypart-bench --bin bsf_curve -- [--scale S] [--trials N]`

use hypart_bench::{bsf_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let report = bsf_experiment(&cfg);
    println!("{report}");
    match write_result("bsf_curves.csv", &report) {
        Ok(path) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("could not write: {e}"),
    }
}
