//! The fixed-terminals experiment of §2.1: how pinning terminals changes
//! the cut distribution of the same instance.
//!
//! Usage: `cargo run --release -p hypart-bench --bin fixed_terminals -- [--scale S] [--trials N]`

use hypart_bench::{fixed_terminals_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = fixed_terminals_experiment(&cfg);
    println!("{}", table.render());
    match write_result("fixed_terminals.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
