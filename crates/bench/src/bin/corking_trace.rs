//! Regenerates the §2.3 corking evidence: frequency of corked CLIP passes
//! with and without the overweight-cell exclusion, on actual-area vs
//! unit-area instances.
//!
//! Usage: `cargo run --release -p hypart-bench --bin corking_trace -- [--scale S] [--trials N]`

use hypart_bench::{corking_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = corking_experiment(&cfg);
    println!("{}", table.render());
    match write_result("corking_trace.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
