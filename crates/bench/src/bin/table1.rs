//! Regenerates the paper's Table 1: implicit-decision grid over the four
//! engines on ibm01s-ibm03s, actual areas, 2% tolerance.
//!
//! Usage: `cargo run --release -p hypart-bench --bin table1 -- [--scale S] [--trials N] [--seed K]`

use hypart_bench::{table1, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let table = table1(&cfg);
    println!("{}", table.render());
    match write_result("table1.csv", &table.to_csv()) {
        Ok(path) => println!("(csv written to {})", path.display()),
        Err(e) => eprintln!("could not write csv: {e}"),
    }
}
