//! Regenerates the Schreiber-Martin ranking-diagram methodology figure of
//! §3.2: dominance regions over (instance size, CPU budget).
//!
//! Usage: `cargo run --release -p hypart-bench --bin ranking_diagram -- [--scale S] [--trials N]`

use hypart_bench::{ranking_experiment, write_result, ExperimentConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let report = ranking_experiment(&cfg);
    println!("{report}");
    match write_result("ranking_diagram.txt", &report) {
        Ok(path) => println!("(written to {})", path.display()),
        Err(e) => eprintln!("could not write: {e}"),
    }
}
