//! Criterion bench behind Tables 4-5: multi-start multilevel runs at
//! increasing start counts (the quality/runtime tradeoff subject).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, tol2, ExperimentConfig};
use hypart_ml::{multi_start, MlConfig, MlPartitioner};

fn bench_multi_start(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 1,
        seed: 4,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let ml = MlPartitioner::new(MlConfig::default());
    let mut group = c.benchmark_group("table45_multistart");
    for nruns in [1usize, 2, 4] {
        let mut seed = 0u64;
        group.bench_function(format!("starts_{nruns}"), |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| multi_start(&ml, &h, &constraint, nruns, s, 1),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_start
}
criterion_main!(benches);
