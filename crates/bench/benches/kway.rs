//! Criterion bench for the k-way engines: direct k-way FM, multilevel
//! k-way, and recursive bisection at k = 4.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, ExperimentConfig};
use hypart_kway::{
    recursive_bisection, KWayBalance, KWayConfig, KWayFmPartitioner, MlKWayConfig,
    MlKWayPartitioner,
};
use hypart_ml::MlConfig;

fn bench_kway(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 1,
        seed: 6,
    };
    let h = instance(&cfg, 1);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.2);
    let mut group = c.benchmark_group("kway_k4");

    let direct = KWayFmPartitioner::new(KWayConfig::default());
    let mut seed = 0u64;
    group.bench_function("direct_kway_fm", |b| {
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| direct.run(&h, &balance, s),
            BatchSize::SmallInput,
        )
    });

    let ml_kway = MlKWayPartitioner::new(MlKWayConfig::default());
    let mut seed = 0u64;
    group.bench_function("multilevel_kway", |b| {
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| ml_kway.run(&h, &balance, s),
            BatchSize::SmallInput,
        )
    });

    let ml_config = MlConfig::default();
    let mut seed = 0u64;
    group.bench_function("recursive_bisection", |b| {
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| recursive_bisection(&h, 4, 0.2, &ml_config, s),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kway
}
criterion_main!(benches);
