//! Criterion bench behind Table 3: CLIP FM with and without the
//! anti-corking overweight exclusion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, tol2, ExperimentConfig};
use hypart_core::{FmConfig, FmPartitioner};

fn bench_clip_variants(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 3,
        seed: 3,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let mut group = c.benchmark_group("table3_clip");
    for (name, fm) in [
        ("our_clip", FmConfig::clip()),
        ("reported_clip", FmConfig::reported_clip()),
        ("clip_lookahead4", FmConfig::clip().with_lookahead(4)),
    ] {
        let engine = FmPartitioner::new(fm);
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| engine.run(&h, &constraint, s),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_clip_variants
}
criterion_main!(benches);
