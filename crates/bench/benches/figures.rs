//! Criterion bench behind the methodology figures (BSF curves, Pareto
//! frontier, ranking diagram, corking trace) at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use hypart_bench::{
    bsf_experiment, corking_experiment, pareto_experiment, ranking_experiment, ExperimentConfig,
};

fn bench_figures(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.01,
        trials: 3,
        seed: 5,
    };
    c.bench_function("figure_bsf", |b| b.iter(|| bsf_experiment(&cfg)));
    c.bench_function("figure_pareto", |b| b.iter(|| pareto_experiment(&cfg)));
    c.bench_function("figure_ranking", |b| b.iter(|| ranking_experiment(&cfg)));
    c.bench_function("figure_corking", |b| b.iter(|| corking_experiment(&cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
