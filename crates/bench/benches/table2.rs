//! Criterion bench behind Table 2: competent LIFO FM vs the weak
//! "Reported"-style LIFO FM baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, tol2, ExperimentConfig};
use hypart_core::{FmConfig, FmPartitioner};

fn bench_lifo_vs_reported(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 3,
        seed: 2,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let mut group = c.benchmark_group("table2_lifo");
    for (name, fm) in [
        ("our_lifo", FmConfig::lifo()),
        ("reported_lifo", FmConfig::reported_lifo()),
    ] {
        let engine = FmPartitioner::new(fm);
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| engine.run(&h, &constraint, s),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lifo_vs_reported
}
criterion_main!(benches);
