//! Coarsening hot-path constant factors: per-level allocation churn,
//! connectivity-table accumulation, and identical-net dedup cost.
//!
//! With the FM refinement hot path workspace-backed (see `fm_hotpath`),
//! the coarsening phase is the dominant remaining per-start cost of a
//! multilevel run: every level used to re-accumulate connectivity through
//! a `HashMap<u32, f64>`, dedup collapsed nets through a
//! `HashMap<Vec<u32>, NetId>` (hashing and cloning sorted pin vectors),
//! and rebuild the coarse CSR pair from scratch. The benches cover the
//! two consumer layers: the raw hierarchy builder (coarsening alone, free
//! and restricted), and the multilevel multi-start driver where the
//! coarsening cost recurs at every level of every start and V-cycle.
//!
//! Baseline vs. optimized numbers are recorded in
//! `BENCH_coarsen_hotpath.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use hypart_benchgen::ispd98_like;
use hypart_core::BalanceConstraint;
use hypart_hypergraph::PartId;
use hypart_ml::coarsen::{build_hierarchy, CoarsenConfig};
use hypart_ml::{multi_start, MlConfig, MlPartitioner};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fixed seed: every sample runs the identical clustering sequence.
const SEED: u64 = 11;

fn bench_hierarchy(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let cfg = CoarsenConfig::default();
    let mut group = c.benchmark_group("coarsen_hotpath");
    group.bench_function("hierarchy", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            build_hierarchy(&h, &cfg, None, &mut rng)
        })
    });
    // Restricted coarsening (the V-cycle flavor): same instance, vertices
    // may only cluster within their current side.
    let restrict: Vec<PartId> = (0..h.num_vertices())
        .map(|i| if i % 2 == 0 { PartId::P0 } else { PartId::P1 })
        .collect();
    group.bench_function("hierarchy_restricted", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(SEED);
            build_hierarchy(&h, &cfg, Some(&restrict), &mut rng)
        })
    });
    group.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let ml = MlPartitioner::new(MlConfig::ml_lifo());
    let mut group = c.benchmark_group("coarsen_hotpath_ml");
    group.bench_function("multi_start4", |b| {
        b.iter(|| multi_start(&ml, &h, &constraint, 4, SEED, 1))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hierarchy, bench_multilevel
}
criterion_main!(benches);
