//! Scaling of the shared-memory parallel multilevel engine.
//!
//! Three axes, all on the same seeded instance so every sample runs the
//! identical work:
//!
//! * `hierarchy` — the parallel coarsener ([`build_hierarchy_par_with`])
//!   at 1/2/4/8 lanes vs the serial builder, deterministic and relaxed;
//! * `full_run` — one complete `MlPartitioner` start (coarsen +
//!   portfolio + round refinement) at the same lane counts vs the
//!   serial legacy engine (`threads == 0`);
//! * `refine_rounds` — the synchronized-round refiner alone at several
//!   shard counts.
//!
//! Numbers are recorded in `BENCH_parallel.json` at the repository
//! root. Physical parallelism comes from the rayon pool
//! (`RAYON_NUM_THREADS`); on a single-core host the lane counts only
//! measure the decomposition overhead, which is the honest number this
//! container can produce.

use criterion::{criterion_group, criterion_main, Criterion};
use hypart_benchgen::ispd98_like;
use hypart_core::{
    ensure_lanes, generate_initial, refine_rounds_parallel, BalanceConstraint, Bisection,
    CoarsenWorkspace, InitialSolution, RunCtx,
};
use hypart_ml::coarsen::{build_hierarchy_with, CoarsenConfig};
use hypart_ml::{build_hierarchy_par_with, MlConfig, MlPartitioner};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fixed seed: every sample runs the identical sequence.
const SEED: u64 = 11;

/// Lane counts swept by every group.
const LANES: [usize; 4] = [1, 2, 4, 8];

fn bench_hierarchy(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let cfg = CoarsenConfig::default();
    let mut group = c.benchmark_group("parallel_hierarchy");
    {
        let mut ws = CoarsenWorkspace::new();
        group.bench_function("serial", |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(SEED);
                build_hierarchy_with(&h, &cfg, None, &mut rng, &mut ws)
            })
        });
    }
    for lanes in LANES {
        for (mode, deterministic) in [("det", true), ("relaxed", false)] {
            let mut ws = CoarsenWorkspace::new();
            let mut lane_pool = Vec::new();
            ensure_lanes(&mut lane_pool, lanes);
            group.bench_function(format!("{mode}_lanes{lanes}"), |b| {
                b.iter(|| {
                    let mut rng = SmallRng::seed_from_u64(SEED);
                    let mut probe = RunCtx::new(0).probe();
                    build_hierarchy_par_with(
                        &h,
                        &cfg,
                        None,
                        &mut rng,
                        &mut ws,
                        &mut lane_pool,
                        deterministic,
                        &mut probe,
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_full_run(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let mut group = c.benchmark_group("parallel_full_run");
    group.bench_function("serial", |b| {
        let ml = MlPartitioner::new(MlConfig::default());
        b.iter(|| ml.run(&h, &constraint, SEED))
    });
    for lanes in LANES {
        let ml = MlPartitioner::new(MlConfig::default().with_threads(lanes));
        group.bench_function(format!("det_lanes{lanes}"), |b| {
            b.iter(|| ml.run(&h, &constraint, SEED))
        });
    }
    group.finish();
}

fn bench_refine_rounds(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let mut rng = SmallRng::seed_from_u64(SEED);
    let start = generate_initial(&h, InitialSolution::RandomBalanced, &mut rng);
    let mut group = c.benchmark_group("parallel_refine_rounds");
    for shards in LANES {
        let mut lanes = Vec::new();
        ensure_lanes(&mut lanes, shards);
        group.bench_function(format!("shards{shards}"), |b| {
            b.iter(|| {
                let mut bisection = match Bisection::new(&h, start.clone()) {
                    Ok(b) => b,
                    Err(e) => unreachable!("generated start is valid: {e}"),
                };
                let ctx = RunCtx::new(SEED);
                refine_rounds_parallel(&mut bisection, &constraint, &mut lanes, &ctx)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hierarchy, bench_full_run, bench_refine_rounds
}
criterion_main!(benches);
