//! Criterion bench for the top-down placer (with/without terminal
//! propagation) and HPWL evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, ExperimentConfig};
use hypart_place::{hpwl, PlacerConfig, Rect, RowLegalizer, TopDownPlacer};

fn bench_placement(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 1,
        seed: 8,
    };
    let h = instance(&cfg, 1);
    let die = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    let mut group = c.benchmark_group("placement");

    for (name, term_prop) in [("place_with_tp", true), ("place_no_tp", false)] {
        let placer = TopDownPlacer::new(PlacerConfig {
            terminal_propagation: term_prop,
            ..PlacerConfig::default()
        });
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| placer.run(&h, die, s),
                BatchSize::SmallInput,
            )
        });
    }

    let placer = TopDownPlacer::new(PlacerConfig::default());
    let placement = placer.run(&h, die, 1);
    group.bench_function("hpwl_eval", |b| b.iter(|| hpwl(&h, &placement)));
    group.bench_function("legalize", |b| {
        b.iter(|| RowLegalizer::new(die, 20).legalize(&h, &placement))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_placement
}
criterion_main!(benches);
