//! Criterion bench behind Table 1: one run of each engine variant on a
//! small ibm01s replica, plus full-grid regeneration at tiny scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, table1, tol2, ExperimentConfig};
use hypart_core::{FmConfig, FmPartitioner, SelectionRule, ZeroDeltaPolicy};
use hypart_ml::{MlConfig, MlPartitioner};

fn bench_engines(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 3,
        seed: 1,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let mut group = c.benchmark_group("table1_engines");
    for (name, fm) in [
        ("flat_lifo", FmConfig::lifo()),
        ("flat_clip", FmConfig::clip()),
        (
            "flat_lifo_alldelta",
            FmConfig::lifo().with_zero_delta(ZeroDeltaPolicy::All),
        ),
        (
            "flat_clip_alldelta",
            FmConfig::clip().with_zero_delta(ZeroDeltaPolicy::All),
        ),
    ] {
        let engine = FmPartitioner::new(fm);
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| engine.run(&h, &constraint, s),
                BatchSize::SmallInput,
            )
        });
    }
    for (name, selection) in [
        ("ml_lifo", SelectionRule::Classic),
        ("ml_clip", SelectionRule::Clip),
    ] {
        let ml = MlPartitioner::new(
            MlConfig::default().with_refine(FmConfig::default().with_selection(selection)),
        );
        let mut seed = 0u64;
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| ml.run(&h, &constraint, s),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_full_grid(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.01,
        trials: 2,
        seed: 1,
    };
    c.bench_function("table1_full_grid_tiny", |b| b.iter(|| table1(&cfg)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines, bench_full_grid
}
criterion_main!(benches);
