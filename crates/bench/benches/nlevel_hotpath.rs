//! n-level hot-path constant factors: single-pair contraction with
//! memento undo, and the full engine against the coarse-grained backend.
//!
//! The n-level backend's cost profile is nothing like the coarse one:
//! instead of a handful of CSR rebuilds there are ~n contractions, ~n
//! constant-size undos, and ~n localized refinement invocations, all
//! against one incrementally mutated [`DynHypergraph`] view. The benches
//! isolate the three layers: the contraction schedule alone (select +
//! contract), the structural round-trip (contract everything, undo
//! everything), and the end-to-end engines on the same instance so the
//! per-backend overhead is directly comparable.

use criterion::{criterion_group, criterion_main, Criterion};
use hypart_benchgen::ispd98_like;
use hypart_core::{
    select_contractions, BalanceConstraint, ContractScratch, ContractionLimits, DynHypergraph,
    EngineKind, RunCtx, SparseScores,
};
use hypart_ml::{multi_start_with, MlConfig, MlPartitioner};

/// Fixed seed: every sample runs the identical contraction sequence.
const SEED: u64 = 11;

fn limits(h: &hypart_hypergraph::Hypergraph) -> ContractionLimits {
    ContractionLimits {
        stop_size: 30,
        max_net_size: 300,
        cluster_cap: h.total_vertex_weight(),
    }
}

fn bench_contraction(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let mut group = c.benchmark_group("nlevel_hotpath");
    // Warm arenas reused across samples, the steady-state shape the
    // workspace targets; the first sample pays the allocations.
    let mut d = DynHypergraph::new(&h);
    let mut scores = SparseScores::new();
    let mut scratch = ContractScratch::new();
    group.bench_function("contract_schedule", |b| {
        b.iter(|| {
            d.reset_from_csr(&h);
            let ctx = RunCtx::new(SEED);
            let mut probe = ctx.probe();
            select_contractions(
                &mut d,
                &limits(&h),
                None,
                SEED,
                &mut scores,
                &mut scratch,
                &mut probe,
            );
            scratch.mementos.len()
        })
    });
    group.bench_function("contract_undo_roundtrip", |b| {
        b.iter(|| {
            d.reset_from_csr(&h);
            let ctx = RunCtx::new(SEED);
            let mut probe = ctx.probe();
            select_contractions(
                &mut d,
                &limits(&h),
                None,
                SEED,
                &mut scores,
                &mut scratch,
                &mut probe,
            );
            while let Some(m) = scratch.mementos.pop() {
                d.uncontract(&m);
            }
            d.num_active()
        })
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let h = ispd98_like(2, 0.25, 7);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let mut group = c.benchmark_group("nlevel_hotpath_engine");
    let nlevel = MlPartitioner::new(MlConfig::default().with_engine(EngineKind::NLevel));
    group.bench_function("nlevel_full", |b| {
        let mut ctx = RunCtx::new(SEED);
        b.iter(|| nlevel.run_with(&h, &constraint, &mut ctx))
    });
    let coarse = MlPartitioner::new(MlConfig::ml_lifo());
    group.bench_function("ml_coarse_full", |b| {
        let mut ctx = RunCtx::new(SEED);
        b.iter(|| coarse.run_with(&h, &constraint, &mut ctx))
    });
    // The steady-state case the workspace exists for: one context reused
    // across four starts plus a V-cycle on the winner — every start after
    // the first should run on warm arenas.
    group.bench_function("nlevel_multi_start4", |b| {
        let mut ctx = RunCtx::new(SEED);
        b.iter(|| multi_start_with(&nlevel, &h, &constraint, 4, 1, &mut ctx).cut)
    });
    group.finish();
}

criterion_group!(benches, bench_contraction, bench_engines);
criterion_main!(benches);
