//! Overhead of the trace instrumentation on the flat FM inner loop.
//!
//! The acceptance bar is that `run_traced(&NullSink)` stays within ~2% of
//! the untraced `run`: every per-move emission site is gated on a cached
//! `is_enabled()` check, so a disabled sink must cost one branch, not a
//! formatting call. `MemorySink` is included to show the real price of
//! capturing the full stream, and the multilevel engine gets the same
//! three-way comparison since it threads the sink through every level.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hypart_bench::{instance, tol2, ExperimentConfig};
use hypart_core::{FmConfig, FmPartitioner};
use hypart_ml::{MlConfig, MlPartitioner};
use hypart_trace::{MemorySink, NullSink};

/// Fixed seed so every sample runs the identical move sequence: the
/// comparison isolates instrumentation cost from per-seed work variance.
const SEED: u64 = 7;

fn bench_flat(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 3,
        seed: 1,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let engine = FmPartitioner::new(FmConfig::clip());
    let mut group = c.benchmark_group("trace_overhead_flat");

    group.bench_function("untraced", |b| b.iter(|| engine.run(&h, &constraint, SEED)));
    group.bench_function("null_sink", |b| {
        b.iter(|| engine.run_traced(&h, &constraint, SEED, &NullSink))
    });
    group.bench_function("memory_sink", |b| {
        b.iter_batched(
            MemorySink::new,
            |sink| engine.run_traced(&h, &constraint, SEED, &sink),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    let cfg = ExperimentConfig {
        scale: 0.02,
        trials: 3,
        seed: 1,
    };
    let h = instance(&cfg, 1);
    let constraint = tol2(&h);
    let ml = MlPartitioner::new(MlConfig::default());
    let mut group = c.benchmark_group("trace_overhead_ml");

    group.bench_function("untraced", |b| b.iter(|| ml.run(&h, &constraint, SEED)));
    group.bench_function("null_sink", |b| {
        b.iter(|| ml.run_traced(&h, &constraint, SEED, &NullSink))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_flat, bench_multilevel
}
criterion_main!(benches);
