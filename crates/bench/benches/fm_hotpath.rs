//! FM hot-path constant factors: gain-container reset and per-refinement
//! allocation cost.
//!
//! The regime that exposes the O(bucket-range) container clear is a
//! *macro-heavy* instance: one clock-tree-like net of very large weight
//! makes `max_gain_bound` (and therefore the bucket range) enormous while
//! passes stay short — so zeroing the bucket arrays, not moving vertices,
//! dominates each refinement. The benches cover the three engine layers
//! that own gain containers: flat FM/CLIP, the multilevel multi-start
//! driver (one refinement per level per start per V-cycle), and direct
//! k-way FM (a k·(k−1) container grid per refinement).
//!
//! Baseline vs. optimized numbers are recorded in `BENCH_fm_hotpath.json`
//! at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use hypart_core::{BalanceConstraint, FmConfig, FmPartitioner};
use hypart_hypergraph::{Hypergraph, HypergraphBuilder};
use hypart_kway::{KWayBalance, KWayConfig, KWayFmPartitioner};
use hypart_ml::{multi_start, MlConfig, MlPartitioner};

/// Fixed seed: every sample runs the identical move sequence.
const SEED: u64 = 11;

/// A chain of `n` unit cells plus one net of weight `heavy` spanning four
/// spread-out cells. `max_gain_bound` is ≈ `heavy` (the weighted degree of
/// the hub), so the gain containers span ~`4 * heavy` buckets while a pass
/// moves at most `n` vertices — the short-pass / huge-bucket-range corner.
fn macro_heavy(n: usize, heavy: u32) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    let v: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
    for i in 0..n - 1 {
        b.add_net([v[i], v[i + 1]], 1).unwrap();
    }
    b.add_net([v[0], v[n / 4], v[n / 2], v[3 * n / 4]], heavy)
        .unwrap();
    b.build().unwrap()
}

fn bench_flat(c: &mut Criterion) {
    let h = macro_heavy(256, 50_000);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let mut group = c.benchmark_group("fm_hotpath_flat");
    for (name, cfg) in [("classic", FmConfig::lifo()), ("clip", FmConfig::clip())] {
        let engine = FmPartitioner::new(cfg);
        group.bench_function(name, |b| b.iter(|| engine.run(&h, &constraint, SEED)));
    }
    group.finish();
}

fn bench_multilevel(c: &mut Criterion) {
    let h = macro_heavy(512, 50_000);
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), 0.10);
    let ml = MlPartitioner::new(MlConfig::ml_lifo());
    let mut group = c.benchmark_group("fm_hotpath_ml");
    group.bench_function("multi_start4", |b| {
        b.iter(|| multi_start(&ml, &h, &constraint, 4, SEED, 1))
    });
    group.finish();
}

fn bench_kway(c: &mut Criterion) {
    let h = macro_heavy(256, 20_000);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), 4, 0.15);
    let engine = KWayFmPartitioner::new(KWayConfig::default());
    let mut group = c.benchmark_group("fm_hotpath_kway");
    group.bench_function("k4", |b| b.iter(|| engine.run(&h, &balance, SEED)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flat, bench_multilevel, bench_kway
}
criterion_main!(benches);
