//! A blocking client for the partitioning daemon.
//!
//! One connection carries any number of concurrent jobs; the daemon
//! interleaves their `event`/`result` frames freely, so the client
//! demultiplexes by job id: frames for jobs other than the one being
//! waited on are buffered and handed out when their turn comes.
//!
//! # Self-healing
//!
//! A client built with [`Client::connect_with_retry`] carries a
//! [`RetryPolicy`] and survives transport faults: any I/O, framing, or
//! disconnect error triggers a bounded reconnect with deterministic
//! seeded exponential backoff, after which every journaled job request
//! that has not yet reached a terminal outcome is resubmitted in job-id
//! order. Stamp those requests with a `request_token` and resubmission
//! becomes idempotent — the daemon re-attaches to the in-flight job or
//! replays the cached outcome instead of recomputing (the
//! `dedup_hits` counter and replayed results are the observable
//! evidence). Without a policy ([`Client::connect`]) behavior is
//! unchanged: the first transport error is final.

use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hypart_core::derive_seed;
use hypart_trace::RunEvent;

use crate::protocol::{
    read_frame, write_frame, FrameError, Health, JobResult, Request, Response, StatsSnapshot,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Default client-side read timeout: long enough for any queued job in
/// the test suite, short enough that a hung daemon fails tests instead
/// of wedging them.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Bounded reconnect-and-resubmit behavior for a self-healing client.
///
/// Backoff before attempt `n` is `base_backoff * 2^n` capped at
/// `max_backoff`, half fixed and half seeded jitter — deterministic for
/// a given `(jitter_seed, n)`, so chaos soaks replay their timing
/// decisions exactly.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Reconnect attempts per healing cycle, and the bound on
    /// consecutive healing cycles that make no progress (no frame
    /// absorbed) before the error is surfaced.
    pub max_attempts: u32,
    /// First-attempt backoff (doubles each attempt).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
    /// Read timeout installed on (re)connected sockets. Under chaos a
    /// stalled or desynchronized connection is only abandoned when a
    /// read exceeds this, so shorter values heal faster.
    pub read_timeout: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
            read_timeout: READ_TIMEOUT,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before reconnect attempt `attempt`
    /// (0-based): half the capped exponential step plus seeded jitter
    /// over the other half.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let base = u64::try_from(self.base_backoff.as_millis()).unwrap_or(u64::MAX);
        let cap = u64::try_from(self.max_backoff.as_millis()).unwrap_or(u64::MAX);
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            derive_seed(self.jitter_seed, u64::from(attempt)) % (half + 1)
        };
        Duration::from_millis(half + jitter)
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Framing or JSON decoding failure.
    Frame(FrameError),
    /// The daemon sent something the protocol does not allow here
    /// (including connection-scoped error frames carrying no job id).
    Protocol(String),
    /// The connection closed while a reply was still owed.
    Disconnected {
        /// The job being waited on when the connection died, when known.
        job: Option<u64>,
        /// Response bytes read over the connection's lifetime before it
        /// died.
        bytes_read: u64,
        /// `true` when the close landed mid-frame (bytes of a frame were
        /// lost), `false` when it happened cleanly between frames.
        mid_frame: bool,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Disconnected {
                job,
                bytes_read,
                mid_frame,
            } => {
                write!(f, "daemon closed the connection")?;
                if let Some(id) = job {
                    write!(f, " while job {id} was pending")?;
                }
                write!(
                    f,
                    " ({} after {bytes_read} response bytes)",
                    if *mid_frame {
                        "mid-frame"
                    } else {
                        "at a frame boundary"
                    }
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// How one job ended, as seen from the client.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job ran and reported a result; `events` holds the streamed
    /// trace (empty unless the request set `trace: true`).
    Finished {
        /// The result payload.
        result: JobResult,
        /// Streamed trace events, in engine order.
        events: Vec<RunEvent>,
    },
    /// Overload shedding: the job never ran.
    Rejected {
        /// Queue depth the daemon observed when shedding.
        queue_depth: usize,
        /// The shedding threshold.
        queue_capacity: usize,
    },
    /// A typed job-scoped error (`unknown_instance`, `parse`,
    /// `watchdog_cancelled`, `stream_poisoned`, …).
    Failed {
        /// Machine-readable error code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

#[derive(Default)]
struct PendingJob {
    events: Vec<RunEvent>,
    terminal: Option<JobOutcome>,
}

/// A `TcpStream` read half that counts consumed bytes, so disconnect
/// errors can report how far the response stream got.
struct CountingReader {
    stream: TcpStream,
    bytes: u64,
}

impl Read for CountingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.stream.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

/// A blocking connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: CountingReader,
    max_frame_bytes: usize,
    pending: HashMap<u64, PendingJob>,
    /// Reconnect target; `None` on clients built without a policy.
    addr: Option<String>,
    retry: Option<RetryPolicy>,
    /// Job requests not yet terminal, resubmitted in id order after a
    /// reconnect (`BTreeMap` so resubmission order is deterministic).
    journal: BTreeMap<u64, Request>,
    retries: u64,
}

impl Client {
    /// Connects to a running daemon without a retry policy: the first
    /// transport error is final.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = writer.try_clone()?;
        reader.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Client {
            writer,
            reader: CountingReader {
                stream: reader,
                bytes: 0,
            },
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending: HashMap::new(),
            addr: None,
            retry: None,
            journal: BTreeMap::new(),
            retries: 0,
        })
    }

    /// Connects with a retry policy: the initial connection and every
    /// later transport fault get up to `policy.max_attempts` backed-off
    /// reconnects, and journaled jobs are resubmitted after each heal.
    ///
    /// # Errors
    ///
    /// Connection/setup failure persisting through all attempts.
    pub fn connect_with_retry(addr: &str, policy: RetryPolicy) -> Result<Client, ClientError> {
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..policy.max_attempts.max(1) {
            if attempt > 0 || last.is_some() {
                std::thread::sleep(policy.backoff(attempt));
            }
            match Self::open(addr, policy.read_timeout) {
                Ok((writer, reader)) => {
                    return Ok(Client {
                        writer,
                        reader: CountingReader {
                            stream: reader,
                            bytes: 0,
                        },
                        max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
                        pending: HashMap::new(),
                        addr: Some(addr.to_string()),
                        retry: Some(policy),
                        journal: BTreeMap::new(),
                        retries: 0,
                    })
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            std::io::Error::other("no connection attempts were made")
        })))
    }

    fn open(addr: &str, read_timeout: Duration) -> std::io::Result<(TcpStream, TcpStream)> {
        let writer = TcpStream::connect(addr)?;
        let reader = writer.try_clone()?;
        reader.set_read_timeout(Some(read_timeout))?;
        Ok((writer, reader))
    }

    /// How many times this client has healed (reconnected) so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Sends one request frame without waiting for anything. Job
    /// requests (`partition`/`eval`) are journaled for resubmission
    /// until their outcome is observed; on a write failure the client
    /// heals (when it has a policy), which already resubmits the
    /// journal — including this request.
    ///
    /// # Errors
    ///
    /// The write failure, when unhealable or healing is exhausted.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        match request {
            Request::Partition(req) => {
                self.journal.insert(req.id, request.clone());
            }
            Request::Eval(req) => {
                self.journal.insert(req.id, request.clone());
            }
            _ => {}
        }
        match write_frame(&mut self.writer, &request.to_json()) {
            Ok(()) => Ok(()),
            Err(e) => {
                let journaled = matches!(request, Request::Partition(_) | Request::Eval(_));
                let err = ClientError::Io(e);
                if self.healable() {
                    // `heal` resubmits the journal; a non-job request
                    // must be re-sent explicitly.
                    self.heal(err)?;
                    if !journaled {
                        write_frame(&mut self.writer, &request.to_json())
                            .map_err(ClientError::Io)?;
                    }
                    Ok(())
                } else {
                    Err(err)
                }
            }
        }
    }

    /// Reads the next response frame raw, bypassing the demultiplexer.
    ///
    /// # Errors
    ///
    /// I/O, framing, or a close ([`ClientError::Disconnected`], with
    /// `mid_frame` telling a torn frame from a clean boundary).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame = match read_frame(&mut self.reader, self.max_frame_bytes) {
            Ok(Some(frame)) => frame,
            Ok(None) => {
                return Err(ClientError::Disconnected {
                    job: None,
                    bytes_read: self.reader.bytes,
                    mid_frame: false,
                })
            }
            Err(FrameError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                return Err(ClientError::Disconnected {
                    job: None,
                    bytes_read: self.reader.bytes,
                    mid_frame: true,
                })
            }
            Err(FrameError::Io(e)) => return Err(ClientError::Io(e)),
            Err(e) => return Err(ClientError::Frame(e)),
        };
        Response::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Blocks until job `id` reaches a terminal state, buffering frames
    /// of other jobs along the way. With a retry policy, transport
    /// faults along the way trigger reconnect-and-resubmit; the wait
    /// only fails after `max_attempts` consecutive healing cycles make
    /// no progress.
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations; job-level failures are
    /// data ([`JobOutcome::Failed`] / [`JobOutcome::Rejected`]), not
    /// errors.
    pub fn wait_outcome(&mut self, id: u64) -> Result<JobOutcome, ClientError> {
        let mut stale_heals = 0u32;
        loop {
            if let Some(slot) = self.pending.get_mut(&id) {
                if let Some(terminal) = slot.terminal.take() {
                    let outcome = match terminal {
                        JobOutcome::Finished { result, .. } => JobOutcome::Finished {
                            result,
                            events: std::mem::take(&mut slot.events),
                        },
                        other => other,
                    };
                    self.pending.remove(&id);
                    self.journal.remove(&id);
                    return Ok(outcome);
                }
            }
            let absorbed = self
                .read_response()
                .and_then(|response| self.absorb(response));
            match absorbed {
                Ok(()) => stale_heals = 0,
                Err(e) => {
                    let e = stamp_job(e, id);
                    if !self.healable() || stale_heals >= self.max_heals() {
                        return Err(e);
                    }
                    stale_heals += 1;
                    self.heal(e)?;
                }
            }
        }
    }

    /// Requests a counter snapshot and blocks for the reply (healing
    /// transport faults when a policy is set).
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.roundtrip(&Request::Stats, |response| match response {
            Response::Stats(snapshot) => Ok(snapshot),
            other => Err(other),
        })
    }

    /// Sends a `ping` and blocks for the health snapshot — the
    /// readiness probe (healing transport faults when a policy is set).
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn ping(&mut self) -> Result<Health, ClientError> {
        self.roundtrip(&Request::Ping, |response| match response {
            Response::Pong(health) => Ok(health),
            other => Err(other),
        })
    }

    /// Cancels job `id`. Returns `true` when the daemon acknowledged
    /// the cancellation, `false` when it no longer knew the job (already
    /// finished, or never admitted).
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations (never healed: after a
    /// reconnect the job's fate is already decided, so a retried cancel
    /// would race it).
    pub fn cancel(&mut self, id: u64) -> Result<bool, ClientError> {
        write_frame(&mut self.writer, &Request::Cancel { id }.to_json())
            .map_err(ClientError::Io)?;
        loop {
            match self.read_response()? {
                Response::Ok { id: acked } if acked == id => return Ok(true),
                Response::Error {
                    id: Some(error_id),
                    code,
                    ..
                } if error_id == id && code == "unknown_job" => return Ok(false),
                other => self.absorb(other)?,
            }
        }
    }

    /// Asks the daemon to shut down and blocks for the farewell (never
    /// healed: reconnecting to a daemon told to exit is self-defeating).
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Request::Shutdown.to_json()).map_err(ClientError::Io)?;
        loop {
            match self.read_response()? {
                Response::Bye => return Ok(()),
                other => self.absorb(other)?,
            }
        }
    }

    /// Send-then-match with healing: the request is re-sent after every
    /// heal, and the loop only fails after `max_attempts` consecutive
    /// healing cycles without progress. Frames the matcher declines go
    /// through the demultiplexer.
    fn roundtrip<T>(
        &mut self,
        request: &Request,
        matcher: impl Fn(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        let mut stale_heals = 0u32;
        'attempt: loop {
            if let Err(e) = write_frame(&mut self.writer, &request.to_json()) {
                let err = ClientError::Io(e);
                if !self.healable() || stale_heals >= self.max_heals() {
                    return Err(err);
                }
                stale_heals += 1;
                self.heal(err)?;
                continue 'attempt;
            }
            loop {
                let step = self
                    .read_response()
                    .and_then(|response| match matcher(response) {
                        Ok(value) => Ok(Some(value)),
                        Err(other) => self.absorb(other).map(|()| None),
                    });
                match step {
                    Ok(Some(value)) => return Ok(value),
                    Ok(None) => stale_heals = 0,
                    Err(e) => {
                        if !self.healable() || stale_heals >= self.max_heals() {
                            return Err(e);
                        }
                        stale_heals += 1;
                        self.heal(e)?;
                        continue 'attempt;
                    }
                }
            }
        }
    }

    fn healable(&self) -> bool {
        self.retry.is_some() && self.addr.is_some()
    }

    fn max_heals(&self) -> u32 {
        self.retry.as_ref().map_or(0, |p| p.max_attempts)
    }

    /// One healing cycle: backed-off reconnect attempts, then journal
    /// resubmission. Returns the original error when every attempt
    /// fails.
    fn heal(&mut self, original: ClientError) -> Result<(), ClientError> {
        let (Some(policy), Some(addr)) = (self.retry.clone(), self.addr.clone()) else {
            return Err(original);
        };
        for attempt in 0..policy.max_attempts.max(1) {
            std::thread::sleep(policy.backoff(attempt));
            let Ok((writer, reader)) = Self::open(&addr, policy.read_timeout) else {
                continue;
            };
            self.writer = writer;
            self.reader = CountingReader {
                stream: reader,
                bytes: 0,
            };
            self.retries += 1;
            // Partially streamed traces of unfinished jobs died with the
            // old connection; resubmission re-streams from the start.
            for slot in self.pending.values_mut() {
                if slot.terminal.is_none() {
                    slot.events.clear();
                }
            }
            let resubmit: Vec<Request> = self
                .journal
                .values()
                .filter(|request| {
                    let id = match request {
                        Request::Partition(req) => req.id,
                        Request::Eval(req) => req.id,
                        _ => return false,
                    };
                    self.pending
                        .get(&id)
                        .is_none_or(|slot| slot.terminal.is_none())
                })
                .cloned()
                .collect();
            let mut resent_all = true;
            for request in &resubmit {
                if write_frame(&mut self.writer, &request.to_json()).is_err() {
                    resent_all = false;
                    break;
                }
            }
            if resent_all {
                return Ok(());
            }
        }
        Err(original)
    }

    /// Files a response into the per-job buffers.
    fn absorb(&mut self, response: Response) -> Result<(), ClientError> {
        match response {
            // Admission acks carry no payload the client needs; results
            // can even overtake them when a worker is faster than the
            // reader thread's next write slot. A stray pong (a probe
            // abandoned by a heal) is equally ignorable.
            Response::Accepted { .. } | Response::Pong(_) => Ok(()),
            Response::Event { id, event } => {
                self.pending.entry(id).or_default().events.push(event);
                Ok(())
            }
            Response::Result { id, result } => {
                let slot = self.pending.entry(id).or_default();
                slot.terminal = Some(JobOutcome::Finished {
                    result,
                    events: Vec::new(),
                });
                Ok(())
            }
            Response::Rejected {
                id,
                queue_depth,
                queue_capacity,
            } => {
                self.pending.entry(id).or_default().terminal = Some(JobOutcome::Rejected {
                    queue_depth,
                    queue_capacity,
                });
                Ok(())
            }
            Response::Error {
                id: Some(id),
                code,
                detail,
            } => {
                self.pending.entry(id).or_default().terminal =
                    Some(JobOutcome::Failed { code, detail });
                Ok(())
            }
            Response::Error {
                id: None,
                code,
                detail,
            } => Err(ClientError::Protocol(format!(
                "connection-scoped error {code}: {detail}"
            ))),
            Response::Ok { .. } => Ok(()),
            Response::Stats(_) | Response::Bye => Err(ClientError::Protocol(
                "unsolicited stats/bye frame".to_string(),
            )),
        }
    }
}

/// Attributes a job-agnostic disconnect to the job being waited on.
fn stamp_job(e: ClientError, id: u64) -> ClientError {
    match e {
        ClientError::Disconnected {
            job: None,
            bytes_read,
            mid_frame,
        } => ClientError::Disconnected {
            job: Some(id),
            bytes_read,
            mid_frame,
        },
        other => other,
    }
}
