//! A blocking client for the partitioning daemon.
//!
//! One connection carries any number of concurrent jobs; the daemon
//! interleaves their `event`/`result` frames freely, so the client
//! demultiplexes by job id: frames for jobs other than the one being
//! waited on are buffered and handed out when their turn comes.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hypart_trace::RunEvent;

use crate::protocol::{
    read_frame, write_frame, FrameError, JobResult, Request, Response, StatsSnapshot,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Default client-side read timeout: long enough for any queued job in
/// the test suite, short enough that a hung daemon fails tests instead
/// of wedging them.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Framing or JSON decoding failure.
    Frame(FrameError),
    /// The daemon sent something the protocol does not allow here
    /// (including connection-scoped error frames carrying no job id).
    Protocol(String),
    /// The connection closed while a reply was still owed.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client framing error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Disconnected => write!(f, "daemon closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// How one job ended, as seen from the client.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job ran and reported a result; `events` holds the streamed
    /// trace (empty unless the request set `trace: true`).
    Finished {
        /// The result payload.
        result: JobResult,
        /// Streamed trace events, in engine order.
        events: Vec<RunEvent>,
    },
    /// Overload shedding: the job never ran.
    Rejected {
        /// Queue depth the daemon observed when shedding.
        queue_depth: usize,
        /// The shedding threshold.
        queue_capacity: usize,
    },
    /// A typed job-scoped error (`unknown_instance`, `parse`,
    /// `stream_poisoned`, …).
    Failed {
        /// Machine-readable error code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
}

#[derive(Default)]
struct PendingJob {
    events: Vec<RunEvent>,
    terminal: Option<JobOutcome>,
}

/// A blocking connection to the daemon.
pub struct Client {
    writer: TcpStream,
    reader: TcpStream,
    max_frame_bytes: usize,
    pending: HashMap<u64, PendingJob>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection/setup failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = writer.try_clone()?;
        reader.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(Client {
            writer,
            reader,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            pending: HashMap::new(),
        })
    }

    /// Sends one request frame without waiting for anything.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        Ok(())
    }

    /// Reads the next response frame raw, bypassing the demultiplexer.
    ///
    /// # Errors
    ///
    /// I/O, framing, or a clean close ([`ClientError::Disconnected`]).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let frame =
            read_frame(&mut self.reader, self.max_frame_bytes)?.ok_or(ClientError::Disconnected)?;
        Response::from_json(&frame).map_err(ClientError::Protocol)
    }

    /// Blocks until job `id` reaches a terminal state, buffering frames
    /// of other jobs along the way.
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations; job-level failures are
    /// data ([`JobOutcome::Failed`] / [`JobOutcome::Rejected`]), not
    /// errors.
    pub fn wait_outcome(&mut self, id: u64) -> Result<JobOutcome, ClientError> {
        loop {
            if let Some(slot) = self.pending.get_mut(&id) {
                if let Some(terminal) = slot.terminal.take() {
                    let outcome = match terminal {
                        JobOutcome::Finished { result, .. } => JobOutcome::Finished {
                            result,
                            events: std::mem::take(&mut slot.events),
                        },
                        other => other,
                    };
                    self.pending.remove(&id);
                    return Ok(outcome);
                }
            }
            let response = self.read_response()?;
            self.absorb(response)?;
        }
    }

    /// Requests a counter snapshot and blocks for the reply.
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        self.send(&Request::Stats)?;
        loop {
            match self.read_response()? {
                Response::Stats(snapshot) => return Ok(snapshot),
                other => self.absorb(other)?,
            }
        }
    }

    /// Cancels job `id`. Returns `true` when the daemon acknowledged
    /// the cancellation, `false` when it no longer knew the job (already
    /// finished, or never admitted).
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn cancel(&mut self, id: u64) -> Result<bool, ClientError> {
        self.send(&Request::Cancel { id })?;
        loop {
            match self.read_response()? {
                Response::Ok { id: acked } if acked == id => return Ok(true),
                Response::Error {
                    id: Some(error_id),
                    code,
                    ..
                } if error_id == id && code == "unknown_job" => return Ok(false),
                other => self.absorb(other)?,
            }
        }
    }

    /// Asks the daemon to shut down and blocks for the farewell.
    ///
    /// # Errors
    ///
    /// Transport failures or protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Shutdown)?;
        loop {
            match self.read_response()? {
                Response::Bye => return Ok(()),
                other => self.absorb(other)?,
            }
        }
    }

    /// Files a response into the per-job buffers.
    fn absorb(&mut self, response: Response) -> Result<(), ClientError> {
        match response {
            // Admission acks carry no payload the client needs; results
            // can even overtake them when a worker is faster than the
            // reader thread's next write slot.
            Response::Accepted { .. } => Ok(()),
            Response::Event { id, event } => {
                self.pending.entry(id).or_default().events.push(event);
                Ok(())
            }
            Response::Result { id, result } => {
                let slot = self.pending.entry(id).or_default();
                slot.terminal = Some(JobOutcome::Finished {
                    result,
                    events: Vec::new(),
                });
                Ok(())
            }
            Response::Rejected {
                id,
                queue_depth,
                queue_capacity,
            } => {
                self.pending.entry(id).or_default().terminal = Some(JobOutcome::Rejected {
                    queue_depth,
                    queue_capacity,
                });
                Ok(())
            }
            Response::Error {
                id: Some(id),
                code,
                detail,
            } => {
                self.pending.entry(id).or_default().terminal =
                    Some(JobOutcome::Failed { code, detail });
                Ok(())
            }
            Response::Error {
                id: None,
                code,
                detail,
            } => Err(ClientError::Protocol(format!(
                "connection-scoped error {code}: {detail}"
            ))),
            Response::Ok { .. } => Ok(()),
            Response::Stats(_) | Response::Bye => Err(ClientError::Protocol(
                "unsolicited stats/bye frame".to_string(),
            )),
        }
    }
}
