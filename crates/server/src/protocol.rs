//! Wire protocol of the partitioning service.
//!
//! Frames are length-prefixed JSON: a big-endian `u32` byte length
//! followed by exactly that many bytes of UTF-8 JSON (one value per
//! frame — "JSONL over a socket", with the length prefix standing in for
//! the newline so payloads may contain any text). Requests carry an
//! `"op"` discriminator, responses a `"reply"` discriminator; job-scoped
//! messages echo the client-chosen `"id"` so responses of concurrent
//! jobs can interleave on one connection and be demultiplexed by the
//! client.
//!
//! All numbers travel as JSON numbers (f64), which round-trip integers
//! up to 2^53; the 128-bit instance digest therefore travels as a
//! 32-digit lowercase hex *string*.

use std::io::{Read, Write};

use hypart_core::EngineKind;
use hypart_trace::json::JsonValue;
use hypart_trace::{RunEvent, StopReason};

/// Default cap on a single frame's payload size (64 MiB — inline `.hgr`
/// instances of millions of pins fit; a corrupt length prefix does not
/// allocate unboundedly).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

/// A framing or decoding failure while reading one frame.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket read failed (including timeouts).
    Io(std::io::Error),
    /// The length prefix exceeds the configured cap.
    TooLarge {
        /// Declared payload length.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
    /// The payload was not valid JSON.
    BadJson(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            FrameError::BadJson(e) => write!(f, "frame payload is not valid JSON: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// `true` if the error is a read timeout (idle poll tick), not a real
/// failure. Both kinds appear depending on platform.
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Writes one frame: big-endian `u32` length, then the serialized JSON.
///
/// # Errors
///
/// Propagates the underlying write failure; a value serializing to more
/// than `u32::MAX` bytes is rejected without writing.
pub fn write_frame<W: Write>(writer: &mut W, value: &JsonValue) -> std::io::Result<()> {
    let text = value.to_string();
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len())
        .map_err(|_| std::io::Error::other("frame payload exceeds u32 length prefix"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean end-of-stream at a frame
/// boundary (the peer closed the connection between frames).
///
/// A read timeout *before the first byte of a frame* surfaces as
/// `FrameError::Io` with a timeout kind (see [`is_timeout`]) so idle
/// pollers can keep waiting; once a frame has started, reads are retried
/// across timeouts so a slow writer cannot desynchronize the stream.
///
/// # Errors
///
/// I/O failures, an oversized length prefix, or an unparsable payload.
pub fn read_frame<R: Read>(
    reader: &mut R,
    max_bytes: usize,
) -> Result<Option<JsonValue>, FrameError> {
    let mut len_buf = [0u8; 4];
    // First byte: the only place where EOF is clean and timeouts surface.
    let mut first = [0u8; 1];
    loop {
        match reader.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    len_buf[0] = first[0];
    read_exact_retry(reader, &mut len_buf[1..])?;
    let declared = u32::from_be_bytes(len_buf) as usize;
    if declared > max_bytes {
        return Err(FrameError::TooLarge {
            declared,
            max: max_bytes,
        });
    }
    let mut payload = vec![0u8; declared];
    read_exact_retry(reader, &mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| FrameError::BadJson(format!("payload is not UTF-8: {e}")))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(FrameError::BadJson)
}

/// `read_exact` that rides out read timeouts mid-frame (the reader loop
/// uses short timeouts only to poll the shutdown flag between frames).
fn read_exact_retry<R: Read>(reader: &mut R, mut buf: &mut [u8]) -> Result<(), FrameError> {
    while !buf.is_empty() {
        match reader.read(buf) {
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Renders a 128-bit instance digest as the wire format (32 lowercase
/// hex digits).
pub fn digest_to_hex(digest: u128) -> String {
    format!("{digest:032x}")
}

/// Parses the wire digest format back.
///
/// # Errors
///
/// Anything but 1–32 hex digits.
pub fn digest_from_hex(s: &str) -> Result<u128, String> {
    if s.is_empty() || s.len() > 32 {
        return Err(format!("digest must be 1-32 hex digits, got {:?}", s.len()));
    }
    u128::from_str_radix(s, 16).map_err(|e| format!("bad digest {s:?}: {e}"))
}

/// How a job names its hypergraph instance.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceRef {
    /// The full instance inline, as `.hgr` text. The server parses it,
    /// registers the CSR in the instance cache under its content digest,
    /// and returns the digest with the result.
    Inline(String),
    /// A content digest of an instance some earlier request already
    /// uploaded. Skips parsing entirely; unknown digests are rejected
    /// with a typed `unknown_instance` error.
    Digest(u128),
}

/// A partition job request.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionRequest {
    /// Client-chosen job id, echoed on every response for this job.
    pub id: u64,
    /// The instance to partition.
    pub instance: InstanceRef,
    /// Number of parts (2, or a larger power of two via recursive
    /// bisection).
    pub k: usize,
    /// Balance tolerance fraction (e.g. `0.1` = each side within ±10 %).
    pub fraction: f64,
    /// Seed; jobs are deterministic functions of
    /// `(instance, k, fraction, seed, budget?)` modulo wall-clock start
    /// counts under a budget.
    pub seed: u64,
    /// Wall-clock budget in milliseconds, mapped to the `RunCtx`
    /// deadline; `None` runs a single unbudgeted start.
    pub budget_ms: Option<u64>,
    /// Stream `RunEvent` frames for this job back to the client.
    pub trace: bool,
    /// Reuse (and populate) the coarsening-hierarchy cache keyed by
    /// `(digest, coarsening config, seed)`. Only 2-way jobs consult it.
    pub use_hierarchy_cache: bool,
    /// Which multilevel backend runs the job. `MlCoarse` (the wire
    /// default — omitted from frames, so pre-engine clients and golden
    /// frames are unchanged) is the coarse-grained hierarchy engine;
    /// `NLevel` contracts one pair at a time and bypasses the
    /// hierarchy cache (there is no reusable CSR hierarchy).
    pub engine: EngineKind,
    /// Include the full assignment vector in the result frame.
    pub include_assignment: bool,
    /// Idempotency token. A retried submission carrying the same token
    /// re-attaches to the in-flight job or replays the cached outcome
    /// instead of recomputing; `None` (the wire default — omitted from
    /// frames, so pre-token clients and golden frames are unchanged)
    /// disables deduplication for this job.
    pub request_token: Option<u64>,
}

impl PartitionRequest {
    /// A 2-way request with the common defaults (no budget, no trace,
    /// hierarchy cache on, no assignment payload).
    pub fn new(id: u64, instance: InstanceRef, seed: u64) -> Self {
        PartitionRequest {
            id,
            instance,
            k: 2,
            fraction: 0.1,
            seed,
            budget_ms: None,
            trace: false,
            use_hierarchy_cache: true,
            engine: EngineKind::MlCoarse,
            include_assignment: false,
            request_token: None,
        }
    }

    /// Serializes to the wire object (`"op": "partition"`).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("op", JsonValue::string("partition")),
            ("id", (self.id).into()),
            ("k", (self.k).into()),
            ("fraction", self.fraction.into()),
            ("seed", (self.seed).into()),
            ("trace", self.trace.into()),
            ("use_hierarchy_cache", self.use_hierarchy_cache.into()),
            ("include_assignment", self.include_assignment.into()),
        ];
        match &self.instance {
            InstanceRef::Inline(text) => pairs.push(("hgr", JsonValue::string(text.clone()))),
            InstanceRef::Digest(d) => pairs.push(("digest", JsonValue::string(digest_to_hex(*d)))),
        }
        if let Some(ms) = self.budget_ms {
            pairs.push(("budget_ms", ms.into()));
        }
        if self.engine != EngineKind::MlCoarse {
            pairs.push(("engine", JsonValue::string(self.engine.name())));
        }
        if let Some(token) = self.request_token {
            pairs.push(("token", token.into()));
        }
        JsonValue::object(pairs)
    }
}

/// An eval job request: score an existing assignment on an instance
/// (cut, balance, per-part weights) without running any engine.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalRequest {
    /// Client-chosen job id.
    pub id: u64,
    /// The instance to evaluate on.
    pub instance: InstanceRef,
    /// Part index per vertex.
    pub assignment: Vec<u16>,
    /// Number of parts the assignment uses.
    pub k: usize,
    /// Balance tolerance fraction.
    pub fraction: f64,
    /// Idempotency token; same semantics as
    /// [`PartitionRequest::request_token`].
    pub request_token: Option<u64>,
}

impl EvalRequest {
    /// Serializes to the wire object (`"op": "eval"`).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("op", JsonValue::string("eval")),
            ("id", (self.id).into()),
            ("k", (self.k).into()),
            ("fraction", self.fraction.into()),
            (
                "assignment",
                JsonValue::array(self.assignment.iter().map(|&p| usize::from(p).into())),
            ),
        ];
        match &self.instance {
            InstanceRef::Inline(text) => pairs.push(("hgr", JsonValue::string(text.clone()))),
            InstanceRef::Digest(d) => pairs.push(("digest", JsonValue::string(digest_to_hex(*d)))),
        }
        if let Some(token) = self.request_token {
            pairs.push(("token", token.into()));
        }
        JsonValue::object(pairs)
    }
}

/// Any request the daemon accepts.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Partition an instance.
    Partition(PartitionRequest),
    /// Evaluate an assignment.
    Eval(EvalRequest),
    /// Cancel a job previously submitted *on this connection*.
    Cancel {
        /// Job id to cancel.
        id: u64,
    },
    /// Snapshot the server's counters.
    Stats,
    /// Liveness/readiness probe: answered inline by the reader thread
    /// (never queued), so a `pong` proves the daemon is accepting and
    /// parsing frames even when every worker is busy.
    Ping,
    /// Gracefully shut the daemon down.
    Shutdown,
}

impl Request {
    /// Serializes to the wire object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Partition(r) => r.to_json(),
            Request::Eval(r) => r.to_json(),
            Request::Cancel { id } => {
                JsonValue::object([("op", JsonValue::string("cancel")), ("id", (*id).into())])
            }
            Request::Stats => JsonValue::object([("op", JsonValue::string("stats"))]),
            Request::Ping => JsonValue::object([("op", JsonValue::string("ping"))]),
            Request::Shutdown => JsonValue::object([("op", JsonValue::string("shutdown"))]),
        }
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `op`")?;
        let id = |required: bool| -> Result<u64, String> {
            match v.get("id").and_then(JsonValue::as_u64) {
                Some(id) => Ok(id),
                None if required => Err(format!("{op}: missing u64 field `id`")),
                None => Ok(0),
            }
        };
        let instance = || -> Result<InstanceRef, String> {
            match (
                v.get("hgr").and_then(JsonValue::as_str),
                v.get("digest").and_then(JsonValue::as_str),
            ) {
                (Some(text), None) => Ok(InstanceRef::Inline(text.to_string())),
                (None, Some(hex)) => Ok(InstanceRef::Digest(digest_from_hex(hex)?)),
                (Some(_), Some(_)) => Err(format!("{op}: give `hgr` or `digest`, not both")),
                (None, None) => Err(format!("{op}: missing `hgr` or `digest`")),
            }
        };
        let fraction = || -> Result<f64, String> {
            match v.get("fraction") {
                None => Ok(0.1),
                Some(x) => x
                    .as_f64()
                    .filter(|f| f.is_finite() && (0.0..=1.0).contains(f))
                    .ok_or_else(|| format!("{op}: `fraction` must be a number in [0, 1]")),
            }
        };
        let k = || -> Result<usize, String> {
            match v.get("k") {
                None => Ok(2),
                Some(x) => x
                    .as_u64()
                    .map(|k| k as usize)
                    .filter(|&k| k >= 2 && k.is_power_of_two() && k <= 1 << 12)
                    .ok_or_else(|| format!("{op}: `k` must be a power of two in [2, 4096]")),
            }
        };
        match op {
            "partition" => Ok(Request::Partition(PartitionRequest {
                id: id(true)?,
                instance: instance()?,
                k: k()?,
                fraction: fraction()?,
                seed: v.get("seed").and_then(JsonValue::as_u64).unwrap_or(0),
                budget_ms: match v.get("budget_ms") {
                    None => None,
                    Some(x) => Some(
                        x.as_u64()
                            .ok_or("partition: `budget_ms` must be a u64".to_string())?,
                    ),
                },
                trace: v.get("trace").and_then(JsonValue::as_bool).unwrap_or(false),
                use_hierarchy_cache: v
                    .get("use_hierarchy_cache")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(true),
                engine: match v.get("engine") {
                    None => EngineKind::MlCoarse,
                    Some(x) => {
                        let name = x
                            .as_str()
                            .ok_or("partition: `engine` must be a string".to_string())?;
                        EngineKind::parse(name).map_err(|e| format!("partition: {e}"))?
                    }
                },
                include_assignment: v
                    .get("include_assignment")
                    .and_then(JsonValue::as_bool)
                    .unwrap_or(false),
                request_token: v.get("token").and_then(JsonValue::as_u64),
            })),
            "eval" => {
                let assignment = match v.get("assignment") {
                    Some(JsonValue::Array(items)) => items
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .filter(|&p| p <= u64::from(u16::MAX))
                                .map(|p| p as u16)
                                .ok_or("eval: `assignment` entries must be u16".to_string())
                        })
                        .collect::<Result<Vec<u16>, String>>()?,
                    _ => return Err("eval: missing array field `assignment`".to_string()),
                };
                Ok(Request::Eval(EvalRequest {
                    id: id(true)?,
                    instance: instance()?,
                    assignment,
                    k: k()?,
                    fraction: fraction()?,
                    request_token: v.get("token").and_then(JsonValue::as_u64),
                }))
            }
            "cancel" => Ok(Request::Cancel { id: id(true)? }),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// The result payload of a finished job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Weighted cut of the reported solution.
    pub cut: u64,
    /// Whether the solution satisfies the balance constraint.
    pub balanced: bool,
    /// Why the job ended (`completed`, `deadline`, `cancelled`).
    pub stopped: StopReason,
    /// `true` when the run's audit checkpoints found no invariant
    /// violation (jobs always run with auditing enabled).
    pub audit_clean: bool,
    /// `true` when the job reused a cached coarsening hierarchy (also
    /// observable as a leading `hierarchy_reused` trace event).
    pub hierarchy_reused: bool,
    /// Number of coarsening levels used (0 for eval jobs).
    pub levels: usize,
    /// Number of starts launched (budgeted sweeps launch several; plain
    /// jobs launch 1; eval jobs 0).
    pub starts: usize,
    /// Content digest of the instance, so follow-up requests can submit
    /// by digest instead of re-uploading.
    pub digest: u128,
    /// The assignment, when the request asked for it.
    pub assignment: Option<Vec<u16>>,
}

impl JobResult {
    fn to_json(&self, id: u64) -> JsonValue {
        let mut pairs = vec![
            ("reply", JsonValue::string("result")),
            ("id", id.into()),
            ("cut", self.cut.into()),
            ("balanced", self.balanced.into()),
            ("stopped", JsonValue::string(self.stopped.name())),
            ("audit_clean", self.audit_clean.into()),
            ("hierarchy_reused", self.hierarchy_reused.into()),
            ("levels", self.levels.into()),
            ("starts", self.starts.into()),
            ("digest", JsonValue::string(digest_to_hex(self.digest))),
        ];
        if let Some(assignment) = &self.assignment {
            pairs.push((
                "assignment",
                JsonValue::array(assignment.iter().map(|&p| usize::from(p).into())),
            ));
        }
        JsonValue::object(pairs)
    }

    fn from_json(v: &JsonValue) -> Result<JobResult, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("result: missing u64 `{key}`"))
        };
        let b = |key: &str| -> Result<bool, String> {
            v.get(key)
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("result: missing bool `{key}`"))
        };
        Ok(JobResult {
            cut: u("cut")?,
            balanced: b("balanced")?,
            stopped: StopReason::parse(
                v.get("stopped")
                    .and_then(JsonValue::as_str)
                    .ok_or("result: missing string `stopped`")?,
            )?,
            audit_clean: b("audit_clean")?,
            hierarchy_reused: b("hierarchy_reused")?,
            levels: u("levels")? as usize,
            starts: u("starts")? as usize,
            digest: digest_from_hex(
                v.get("digest")
                    .and_then(JsonValue::as_str)
                    .ok_or("result: missing string `digest`")?,
            )?,
            assignment: match v.get("assignment") {
                None => None,
                Some(JsonValue::Array(items)) => Some(
                    items
                        .iter()
                        .map(|x| {
                            x.as_u64()
                                .filter(|&p| p <= u64::from(u16::MAX))
                                .map(|p| p as u16)
                                .ok_or("result: `assignment` entries must be u16".to_string())
                        })
                        .collect::<Result<Vec<u16>, String>>()?,
                ),
                Some(_) => return Err("result: `assignment` must be an array".to_string()),
            },
        })
    }
}

/// A snapshot of the daemon's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted onto the queue.
    pub submitted: u64,
    /// Jobs that finished and reported a result.
    pub completed: u64,
    /// Submissions shed with an `overloaded` rejection.
    pub rejected_overload: u64,
    /// Jobs whose trace/result stream failed mid-run (poisoned
    /// connection writer); the job was cancelled and counted here
    /// instead of streaming a silently truncated trace.
    pub stream_aborted: u64,
    /// Parse/validation errors answered with typed error frames.
    pub errors: u64,
    /// Jobs force-cancelled by the watchdog after overshooting their
    /// declared budget by the configured factor.
    pub watchdog_cancelled: u64,
    /// Inline instances rejected by declared-size admission control
    /// before parsing.
    pub rejected_too_large: u64,
    /// Retried submissions served by the idempotency layer (re-attached
    /// to an in-flight job or replayed from the completed-token cache)
    /// instead of recomputing.
    pub dedup_hits: u64,
    /// Connection-setup or socket-option failures (e.g. a read/write
    /// deadline that could not be installed); each one closes the
    /// affected connection instead of being silently dropped.
    pub io_failures: u64,
    /// Instance-cache hits (CSR reuse).
    pub instance_hits: u64,
    /// Instance-cache misses (fresh parse registered).
    pub instance_misses: u64,
    /// Hierarchy-cache hits (coarsening skipped).
    pub hierarchy_hits: u64,
    /// Hierarchy-cache misses (hierarchy built and registered).
    pub hierarchy_misses: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Queue capacity (shedding threshold).
    pub queue_capacity: usize,
}

impl StatsSnapshot {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("reply", JsonValue::string("stats")),
            ("submitted", self.submitted.into()),
            ("completed", self.completed.into()),
            ("rejected_overload", self.rejected_overload.into()),
            ("stream_aborted", self.stream_aborted.into()),
            ("errors", self.errors.into()),
            ("watchdog_cancelled", self.watchdog_cancelled.into()),
            ("rejected_too_large", self.rejected_too_large.into()),
            ("dedup_hits", self.dedup_hits.into()),
            ("io_failures", self.io_failures.into()),
            ("instance_hits", self.instance_hits.into()),
            ("instance_misses", self.instance_misses.into()),
            ("hierarchy_hits", self.hierarchy_hits.into()),
            ("hierarchy_misses", self.hierarchy_misses.into()),
            ("queue_depth", self.queue_depth.into()),
            ("queue_capacity", self.queue_capacity.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<StatsSnapshot, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("stats: missing u64 `{key}`"))
        };
        Ok(StatsSnapshot {
            submitted: u("submitted")?,
            completed: u("completed")?,
            rejected_overload: u("rejected_overload")?,
            stream_aborted: u("stream_aborted")?,
            errors: u("errors")?,
            watchdog_cancelled: u("watchdog_cancelled")?,
            rejected_too_large: u("rejected_too_large")?,
            dedup_hits: u("dedup_hits")?,
            io_failures: u("io_failures")?,
            instance_hits: u("instance_hits")?,
            instance_misses: u("instance_misses")?,
            hierarchy_hits: u("hierarchy_hits")?,
            hierarchy_misses: u("hierarchy_misses")?,
            queue_depth: u("queue_depth")? as usize,
            queue_capacity: u("queue_capacity")? as usize,
        })
    }
}

/// The payload of a `pong` reply: a cheap health/readiness snapshot
/// answered inline by the connection's reader thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Health {
    /// Milliseconds since the daemon started listening.
    pub uptime_ms: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// Queue capacity (shedding threshold).
    pub queue_capacity: usize,
    /// Instances currently retained in the digest cache.
    pub instances_cached: usize,
    /// Coarsening hierarchies currently retained.
    pub hierarchies_cached: usize,
    /// Completed idempotency tokens currently retained for replay.
    pub tokens_cached: usize,
}

impl Health {
    fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("reply", JsonValue::string("pong")),
            ("uptime_ms", self.uptime_ms.into()),
            ("queue_depth", self.queue_depth.into()),
            ("queue_capacity", self.queue_capacity.into()),
            ("instances_cached", self.instances_cached.into()),
            ("hierarchies_cached", self.hierarchies_cached.into()),
            ("tokens_cached", self.tokens_cached.into()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Health, String> {
        let u = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("pong: missing u64 `{key}`"))
        };
        Ok(Health {
            uptime_ms: u("uptime_ms")?,
            queue_depth: u("queue_depth")? as usize,
            queue_capacity: u("queue_capacity")? as usize,
            instances_cached: u("instances_cached")? as usize,
            hierarchies_cached: u("hierarchies_cached")? as usize,
            tokens_cached: u("tokens_cached")? as usize,
        })
    }
}

/// Any response frame the daemon emits.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted to the work queue.
    Accepted {
        /// Echoed job id.
        id: u64,
    },
    /// Overload shedding: the bounded queue is full, the job was NOT
    /// admitted — the 429 of this protocol, carrying the observed depth
    /// so clients can back off proportionally.
    Rejected {
        /// Echoed job id.
        id: u64,
        /// Queue depth at rejection time.
        queue_depth: usize,
        /// Queue capacity (depth == capacity when shedding).
        queue_capacity: usize,
    },
    /// One streamed trace event of a running job (only with
    /// `trace: true`).
    Event {
        /// Echoed job id.
        id: u64,
        /// The engine event.
        event: RunEvent,
    },
    /// The job finished.
    Result {
        /// Echoed job id.
        id: u64,
        /// Result payload.
        result: JobResult,
    },
    /// A typed failure: request parse errors, unknown digests, unknown
    /// cancel targets, instance parse failures.
    Error {
        /// Echoed job id, when the failing frame carried one.
        id: Option<u64>,
        /// Stable machine-readable code (`bad_request`, `parse`,
        /// `unknown_instance`, `unknown_job`, `overloaded`,
        /// `stream_poisoned`, `watchdog_cancelled`,
        /// `rejected_too_large`).
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Acknowledgement of a non-job op (cancel).
    Ok {
        /// Echoed job id.
        id: u64,
    },
    /// Counter snapshot.
    Stats(StatsSnapshot),
    /// Health snapshot answering a `ping`.
    Pong(Health),
    /// Farewell to a `shutdown` request; the daemon stops accepting
    /// work after sending it.
    Bye,
}

impl Response {
    /// Serializes to the wire object.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Response::Accepted { id } => JsonValue::object([
                ("reply", JsonValue::string("accepted")),
                ("id", (*id).into()),
            ]),
            Response::Rejected {
                id,
                queue_depth,
                queue_capacity,
            } => JsonValue::object([
                ("reply", JsonValue::string("rejected")),
                ("id", (*id).into()),
                ("code", JsonValue::string("overloaded")),
                ("queue_depth", (*queue_depth).into()),
                ("queue_capacity", (*queue_capacity).into()),
            ]),
            Response::Event { id, event } => JsonValue::object([
                ("reply", JsonValue::string("event")),
                ("id", (*id).into()),
                ("event", event.to_json()),
            ]),
            Response::Result { id, result } => result.to_json(*id),
            Response::Error { id, code, detail } => {
                let mut pairs = vec![
                    ("reply", JsonValue::string("error")),
                    ("code", JsonValue::string(code.clone())),
                    ("detail", JsonValue::string(detail.clone())),
                ];
                if let Some(id) = id {
                    pairs.push(("id", (*id).into()));
                }
                JsonValue::object(pairs)
            }
            Response::Ok { id } => {
                JsonValue::object([("reply", JsonValue::string("ok")), ("id", (*id).into())])
            }
            Response::Stats(s) => s.to_json(),
            Response::Pong(h) => h.to_json(),
            Response::Bye => JsonValue::object([("reply", JsonValue::string("bye"))]),
        }
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the missing or ill-typed field.
    pub fn from_json(v: &JsonValue) -> Result<Response, String> {
        let reply = v
            .get("reply")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field `reply`")?;
        let id = || -> Result<u64, String> {
            v.get("id")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{reply}: missing u64 field `id`"))
        };
        match reply {
            "accepted" => Ok(Response::Accepted { id: id()? }),
            "rejected" => Ok(Response::Rejected {
                id: id()?,
                queue_depth: v
                    .get("queue_depth")
                    .and_then(JsonValue::as_u64)
                    .ok_or("rejected: missing u64 `queue_depth`")?
                    as usize,
                queue_capacity: v
                    .get("queue_capacity")
                    .and_then(JsonValue::as_u64)
                    .ok_or("rejected: missing u64 `queue_capacity`")?
                    as usize,
            }),
            "event" => Ok(Response::Event {
                id: id()?,
                event: RunEvent::from_json(v.get("event").ok_or("event: missing object `event`")?)?,
            }),
            "result" => Ok(Response::Result {
                id: id()?,
                result: JobResult::from_json(v)?,
            }),
            "error" => Ok(Response::Error {
                id: v.get("id").and_then(JsonValue::as_u64),
                code: v
                    .get("code")
                    .and_then(JsonValue::as_str)
                    .ok_or("error: missing string `code`")?
                    .to_string(),
                detail: v
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .ok_or("error: missing string `detail`")?
                    .to_string(),
            }),
            "ok" => Ok(Response::Ok { id: id()? }),
            "stats" => Ok(Response::Stats(StatsSnapshot::from_json(v)?)),
            "pong" => Ok(Response::Pong(Health::from_json(v)?)),
            "bye" => Ok(Response::Bye),
            other => Err(format!("unknown reply {other:?}")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let value = JsonValue::object([("x", 7u64.into()), ("s", JsonValue::string("héllo"))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .unwrap();
        assert_eq!(back, value);
        // Clean EOF after the frame.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, 1024) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_clean_eof() {
        let value = JsonValue::object([("x", 7u64.into())]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn digest_hex_roundtrip() {
        for d in [0u128, 1, u128::MAX, 0xdead_beef_cafe] {
            assert_eq!(digest_from_hex(&digest_to_hex(d)).unwrap(), d);
        }
        assert!(digest_from_hex("").is_err());
        assert!(digest_from_hex("xyz").is_err());
        assert!(digest_from_hex(&"f".repeat(33)).is_err());
    }

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Partition(PartitionRequest {
                id: 9,
                instance: InstanceRef::Digest(0xabc),
                k: 4,
                fraction: 0.25,
                seed: 17,
                budget_ms: Some(50),
                trace: true,
                use_hierarchy_cache: false,
                engine: EngineKind::NLevel,
                include_assignment: true,
                request_token: Some(0xFACE),
            }),
            Request::Partition(PartitionRequest::new(
                1,
                InstanceRef::Inline("2 3\n1 2\n2 3\n".to_string()),
                42,
            )),
            Request::Eval(EvalRequest {
                id: 3,
                instance: InstanceRef::Digest(5),
                assignment: vec![0, 1, 1],
                k: 2,
                fraction: 0.5,
                request_token: Some(7),
            }),
            Request::Cancel { id: 12 },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn tokenless_frames_are_bitwise_unchanged() {
        // The idempotency token is strictly additive: requests without
        // one must serialize exactly as they did before the field
        // existed (no `token` key, golden frames stable).
        let part = PartitionRequest::new(1, InstanceRef::Digest(0xabc), 42);
        assert!(!part.to_json().to_string().contains("token"));
        let eval = EvalRequest {
            id: 2,
            instance: InstanceRef::Digest(0xabc),
            assignment: vec![0, 1],
            k: 2,
            fraction: 0.1,
            request_token: None,
        };
        assert!(!eval.to_json().to_string().contains("token"));
    }

    #[test]
    fn request_validation_rejects_bad_fields() {
        for text in [
            r#"{"op":"partition","id":1,"hgr":"x","k":3}"#,
            r#"{"op":"partition","id":1,"hgr":"x","fraction":1.5}"#,
            r#"{"op":"partition","id":1}"#,
            r#"{"op":"partition","hgr":"x"}"#,
            r#"{"op":"eval","id":1,"hgr":"x"}"#,
            r#"{"op":"nope"}"#,
            r#"{"id":1}"#,
        ] {
            let v = JsonValue::parse(text).unwrap();
            assert!(Request::from_json(&v).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Accepted { id: 1 },
            Response::Rejected {
                id: 2,
                queue_depth: 8,
                queue_capacity: 8,
            },
            Response::Event {
                id: 3,
                event: RunEvent::HierarchyReused { levels: 4 },
            },
            Response::Result {
                id: 4,
                result: JobResult {
                    cut: 11,
                    balanced: true,
                    stopped: StopReason::Deadline,
                    audit_clean: true,
                    hierarchy_reused: true,
                    levels: 3,
                    starts: 5,
                    digest: 0xfeed,
                    assignment: Some(vec![0, 1, 0]),
                },
            },
            Response::Error {
                id: Some(5),
                code: "unknown_instance".to_string(),
                detail: "no such digest".to_string(),
            },
            Response::Error {
                id: None,
                code: "bad_request".to_string(),
                detail: "missing op".to_string(),
            },
            Response::Ok { id: 6 },
            Response::Stats(StatsSnapshot {
                submitted: 10,
                completed: 9,
                rejected_overload: 1,
                queue_capacity: 8,
                watchdog_cancelled: 2,
                rejected_too_large: 1,
                dedup_hits: 3,
                io_failures: 1,
                ..StatsSnapshot::default()
            }),
            Response::Pong(Health {
                uptime_ms: 1234,
                queue_depth: 1,
                queue_capacity: 64,
                instances_cached: 2,
                hierarchies_cached: 3,
                tokens_cached: 4,
            }),
            Response::Bye,
        ];
        for resp in resps {
            let back = Response::from_json(&resp.to_json()).unwrap();
            assert_eq!(back, resp);
        }
    }
}
