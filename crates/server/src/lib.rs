//! Partitioning as a service.
//!
//! The DAC-99 methodology this repo reproduces frames heuristic
//! evaluation as *many runs under explicit budgets*: cost-at-time-τ
//! distributions, multi-start sweeps, same-instance re-queries under
//! different balance tolerances. That traffic shape — heavy query volume
//! over few netlists — is exactly what a long-running daemon amortizes:
//! parse once, coarsen once, answer many.
//!
//! This crate provides that daemon and its client:
//!
//! * [`protocol`] — length-prefixed JSON frames over TCP; requests carry
//!   an `"op"`, responses a `"reply"`, and job-scoped frames echo the
//!   client-chosen id so concurrent jobs multiplex on one connection;
//! * [`queue`] — a bounded MPMC work queue that sheds overload instead
//!   of buffering it (typed `rejected` responses carrying queue depth);
//! * [`cache`] — the digest-keyed instance cache and the
//!   `(digest, coarsening config, seed)`-keyed hierarchy cache;
//! * [`Server`] / [`ServerHandle`] — the daemon itself: an accept loop,
//!   one reader thread per connection, and a fixed worker pool that
//!   reuses engine workspaces across jobs;
//! * [`Client`] — a blocking client that demultiplexes interleaved
//!   responses per job id, with optional self-healing: a
//!   [`RetryPolicy`] adds bounded reconnect-and-resubmit with
//!   deterministic seeded backoff, and idempotency tokens let the
//!   daemon deduplicate retried jobs instead of recomputing them;
//! * [`chaos`] — a deterministic TCP chaos proxy: every network fault
//!   (mid-frame disconnects, byte-level rechunking, delays, stalls,
//!   corruption) is scripted from a seed and replayable bit for bit.
//!
//! # Determinism contract
//!
//! Each job is a deterministic function of
//! `(instance content, k, fraction, seed)` — *not* of which worker runs
//! it, how busy the daemon is, or whether any cache hit. A hierarchy
//! cache hit replays bitwise the same trace a cold run would produce,
//! prefixed with one `hierarchy_reused` event (the hierarchy is a pure
//! function of the cache key; see
//! [`MlPartitioner::coarsen_hierarchy_with`](hypart_ml::MlPartitioner::coarsen_hierarchy_with)).
//! Budgeted jobs stop deterministically in *shape* (bracketed
//! `start_begin`/`start_end` pairs, `budget_exhausted` terminator) while
//! the number of starts naturally varies with wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod cache;
pub mod chaos;
mod client;
pub mod protocol;
pub mod queue;
mod server;

pub use chaos::{ChaosPlan, ChaosProxy};
pub use client::{Client, ClientError, JobOutcome, RetryPolicy};
pub use server::{Server, ServerConfig, ServerHandle};
