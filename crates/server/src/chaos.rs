//! Deterministic TCP chaos proxy.
//!
//! Sits between a client and the daemon and injects *scripted* network
//! faults: mid-frame disconnects, splitting/coalescing of frames into
//! arbitrary byte chunks, fixed forwarding delays, slowloris stalls,
//! and single-byte corruption of the length prefix or payload. Every
//! fault is a pure function of `(ChaosPlan, connection index,
//! direction)` — the same SplitMix64 idiom as [`derive_seed`]
//! everywhere else in this repo — so any failure the proxy produces is
//! replayable bit for bit by re-running the same plan.
//!
//! The proxy owns all of its threads (one accept loop, two pump
//! threads per connection) and joins every one of them on
//! [`ChaosProxy::shutdown`], so chaos soaks can assert zero leaked OS
//! threads exactly like the daemon soak does.
//!
//! # Fault taxonomy
//!
//! | fault | knob | wire effect |
//! |---|---|---|
//! | chunking | `max_chunk` | frames split/coalesced at arbitrary byte boundaries |
//! | disconnect | `disconnect_every` | both directions torn down after a scripted byte count (usually mid-frame) |
//! | corruption | `corrupt_every` | scripted bytes XOR-flipped, recurring along the stream (length prefix or payload, wherever they land) |
//! | delay | `delay_every`, `delay_ms` | fixed pause before every Nth forwarded chunk |
//! | stall | `stall_every`, `stall_ms` | long slowloris pauses at scripted byte offsets |
//!
//! Faults are positioned by *byte count*, not wall clock, so a
//! connection's fault script is independent of scheduling: the
//! `*_every` knobs scale how much traffic flows between faults, and
//! `0` disables a fault class entirely. Because positions recur along
//! the stream, even a single long-lived connection keeps seeing chaos.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hypart_core::derive_seed;

/// A deterministic fault schedule for the proxy. All knobs follow the
/// `*_every` convention: `0` disables the fault class, larger values
/// space the faults further apart along the byte stream — every
/// position is a pure function of `(seed, connection index,
/// direction)`, not a coin flip.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Base seed; every per-connection script derives from it.
    pub seed: u64,
    /// Upper bound on forwarded chunk sizes in bytes (≥ 1). Small
    /// values shred frames into many partial reads; large values
    /// coalesce several frames into one segment.
    pub max_chunk: usize,
    /// Tear every connection down after a scripted byte count drawn
    /// from `2 KiB .. 2 KiB + N * 8 KiB` (0 = never): larger values
    /// mean longer-lived connections.
    pub disconnect_every: u64,
    /// XOR-corrupt one scripted byte roughly every `N * 2 KiB` of
    /// stream (0 = never).
    pub corrupt_every: u64,
    /// Delay every Nth forwarded chunk (0 = never).
    pub delay_every: u64,
    /// The fixed delay applied to delayed chunks.
    pub delay_ms: u64,
    /// Insert a long stall roughly every `N * 8 KiB` of stream
    /// (0 = never).
    pub stall_every: u64,
    /// The slowloris stall duration.
    pub stall_ms: u64,
}

impl ChaosPlan {
    /// A moderately hostile plan: heavy chunking, connections torn
    /// down after at most ~26 KiB, corruption roughly every 8 KiB, a
    /// short delay on every 5th chunk, and a stall roughly every
    /// 56 KiB.
    pub fn hostile(seed: u64) -> Self {
        ChaosPlan {
            seed,
            max_chunk: 23,
            disconnect_every: 3,
            corrupt_every: 4,
            delay_every: 5,
            delay_ms: 2,
            stall_every: 7,
            stall_ms: 40,
        }
    }

    /// A plan that only reshapes byte boundaries (chunking), injecting
    /// no faults: traffic is delivered intact, just maximally shredded.
    pub fn shred(seed: u64) -> Self {
        ChaosPlan {
            seed,
            max_chunk: 7,
            disconnect_every: 0,
            corrupt_every: 0,
            delay_every: 0,
            delay_ms: 0,
            stall_every: 0,
            stall_ms: 0,
        }
    }
}

/// A tiny SplitMix64 stream: the per-connection script generator.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The fault script of one pump direction, fully decided before the
/// first byte flows. Corruption and stalls recur along the stream
/// (next position = previous + step); disconnects end the connection,
/// so they fire at most once.
#[derive(Debug, PartialEq, Eq)]
struct Script {
    /// Chunk-size stream state.
    rng_state: u64,
    /// Tear the connection down once this many bytes have flowed.
    disconnect_after: Option<u64>,
    /// Absolute offset of the next byte to XOR-corrupt.
    corrupt_next: Option<u64>,
    /// Distance between recurring corruption points.
    corrupt_step: u64,
    /// The (nonzero) XOR mask applied at corruption points.
    corrupt_mask: u8,
    /// Fixed delay applied to every `delay_every`-th chunk.
    delay: Option<Duration>,
    /// Chunk period of the delay fault.
    delay_every: u64,
    /// Count of chunks forwarded so far (drives `delay_every`).
    chunk_index: u64,
    /// Absolute offset of the next slowloris stall.
    stall_next: Option<u64>,
    /// Distance between recurring stall points.
    stall_step: u64,
    /// The slowloris stall duration.
    stall: Duration,
}

impl Script {
    /// Builds the deterministic script for `(plan, conn, direction)`.
    /// `direction` is 0 for client→server, 1 for server→client.
    fn derive(plan: &ChaosPlan, conn: u64, direction: u64) -> Script {
        let mut rng = SplitMix64(derive_seed(plan.seed, conn * 2 + direction));
        let disconnect_draw = rng.next();
        let corrupt_draw = rng.next();
        let corrupt_mask = (rng.next() % 255 + 1) as u8;
        let stall_draw = rng.next();
        // Steps scale with the `*_every` knobs: larger knob, more quiet
        // bytes between faults. The first position is drawn inside one
        // step so the fault reliably triggers on busy connections.
        let corrupt_step = plan.corrupt_every.max(1) * 2048;
        let stall_step = plan.stall_every.max(1) * 8192;
        Script {
            rng_state: rng.next(),
            disconnect_after: (plan.disconnect_every > 0)
                .then(|| 2048 + disconnect_draw % (plan.disconnect_every * 8192)),
            corrupt_next: (plan.corrupt_every > 0).then(|| 64 + corrupt_draw % corrupt_step),
            corrupt_step,
            corrupt_mask,
            delay: (plan.delay_every > 0 && plan.delay_ms > 0)
                .then(|| Duration::from_millis(plan.delay_ms)),
            delay_every: plan.delay_every.max(1),
            chunk_index: 0,
            stall_next: (plan.stall_every > 0 && plan.stall_ms > 0)
                .then(|| 128 + stall_draw % stall_step),
            stall_step,
            stall: Duration::from_millis(plan.stall_ms),
        }
    }

    fn next_chunk_len(&mut self, max_chunk: usize) -> usize {
        let mut rng = SplitMix64(self.rng_state);
        let len = (rng.next() as usize) % max_chunk.max(1) + 1;
        self.rng_state = rng.0;
        len
    }
}

/// A running chaos proxy. Dropping it shuts it down and joins every
/// thread it spawned.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept: Option<JoinHandle<()>>,
}

struct ProxyShared {
    shutdown: AtomicBool,
    /// Clones of every live socket (client side and upstream side), so
    /// shutdown can unblock pump threads parked in `read`.
    sockets: Mutex<Vec<TcpStream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and forwards every accepted
    /// connection to `upstream` through the plan's fault script.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(plan: ChaosPlan, upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            shutdown: AtomicBool::new(false),
            sockets: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("chaos-accept".to_string())
                .spawn(move || accept_loop(&listener, upstream, &plan, &shared))?
        };
        Ok(ChaosProxy {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Tears the proxy down: stops accepting, severs every proxied
    /// connection, and joins all pump threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Unblock the accept loop, then sever every proxied socket so
        // pump threads parked in `read` wake with an error/EOF.
        drop(TcpStream::connect(self.local_addr));
        for socket in self
            .shared
            .sockets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            drop(socket.shutdown(Shutdown::Both));
        }
        if let Some(accept) = self.accept.take() {
            if accept.join().is_err() {
                eprintln!("chaos proxy: accept thread panicked");
            }
        }
        let pumps =
            std::mem::take(&mut *self.shared.pumps.lock().unwrap_or_else(|e| e.into_inner()));
        for pump in pumps {
            if pump.join().is_err() {
                eprintln!("chaos proxy: pump thread panicked");
            }
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.finish();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &ChaosPlan,
    shared: &Arc<ProxyShared>,
) {
    let mut conn_index = 0u64;
    loop {
        let Ok((client, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let Ok(server) = TcpStream::connect(upstream) else {
            // Upstream refused: drop the client, keep serving. The
            // client observes a clean close and retries.
            continue;
        };
        let conn = conn_index;
        conn_index += 1;
        spawn_pumps(client, server, plan, conn, shared);
    }
}

/// Spawns the two pump threads of one proxied connection and registers
/// the sockets for shutdown.
fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: &ChaosPlan,
    conn: u64,
    shared: &Arc<ProxyShared>,
) {
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    {
        let mut sockets = shared.sockets.lock().unwrap_or_else(|e| e.into_inner());
        match (client.try_clone(), server.try_clone()) {
            (Ok(c), Ok(s)) => {
                sockets.push(c);
                sockets.push(s);
            }
            _ => return,
        }
    }
    let c2s = Script::derive(plan, conn, 0);
    let s2c = Script::derive(plan, conn, 1);
    let max_chunk = plan.max_chunk;
    let mut pumps = shared.pumps.lock().unwrap_or_else(|e| e.into_inner());
    if let Ok(handle) = std::thread::Builder::new()
        .name(format!("chaos-c2s-{conn}"))
        .spawn(move || pump(client, server, c2s, max_chunk))
    {
        pumps.push(handle);
    }
    if let Ok(handle) = std::thread::Builder::new()
        .name(format!("chaos-s2c-{conn}"))
        .spawn(move || pump(server2, client2, s2c, max_chunk))
    {
        pumps.push(handle);
    }
}

/// Forwards bytes `from` → `to`, applying the direction's script.
fn pump(mut from: TcpStream, mut to: TcpStream, mut script: Script, max_chunk: usize) {
    let mut buf = [0u8; 8192];
    let mut sent: u64 = 0;
    let sever = |a: &TcpStream, b: &TcpStream| {
        drop(a.shutdown(Shutdown::Both));
        drop(b.shutdown(Shutdown::Both));
    };
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                sever(&from, &to);
                return;
            }
        };
        let mut off = 0usize;
        while off < n {
            let mut len = script.next_chunk_len(max_chunk).min(n - off);
            // Truncate the chunk at the scripted disconnect point so the
            // teardown lands exactly there (usually mid-frame).
            if let Some(cut) = script.disconnect_after {
                let remaining = cut.saturating_sub(sent);
                if remaining == 0 {
                    sever(&from, &to);
                    return;
                }
                len = len.min(remaining as usize);
            }
            script.chunk_index += 1;
            if let Some(delay) = script.delay {
                if script.chunk_index.is_multiple_of(script.delay_every) {
                    std::thread::sleep(delay);
                }
            }
            if let Some(pos) = script.stall_next {
                if sent <= pos && pos < sent + len as u64 {
                    std::thread::sleep(script.stall);
                    script.stall_next = Some(pos + script.stall_step);
                }
            }
            // Corruption points recur every `corrupt_step` bytes; a
            // large coalesced chunk can straddle several of them.
            while let Some(pos) = script.corrupt_next {
                if sent <= pos && pos < sent + len as u64 {
                    buf[off + (pos - sent) as usize] ^= script.corrupt_mask;
                    script.corrupt_next = Some(pos + script.corrupt_step);
                } else {
                    break;
                }
            }
            if to.write_all(&buf[off..off + len]).is_err() || to.flush().is_err() {
                sever(&from, &to);
                return;
            }
            off += len;
            sent += len as u64;
        }
    }
    // Clean EOF from the source: half-close the destination so the peer
    // sees the same boundary, and leave the reverse pump running.
    drop(to.shutdown(Shutdown::Write));
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_pure_functions_of_seed_conn_direction() {
        let plan = ChaosPlan::hostile(42);
        let a = Script::derive(&plan, 3, 0);
        let b = Script::derive(&plan, 3, 0);
        assert_eq!(a, b, "same (seed, conn, direction) must script identically");
        assert_ne!(
            Script::derive(&plan, 3, 0),
            Script::derive(&plan, 3, 1),
            "directions script independently"
        );
        assert_ne!(
            Script::derive(&plan, 3, 0),
            Script::derive(&plan, 4, 0),
            "connections script independently"
        );
        let other = ChaosPlan::hostile(43);
        assert_ne!(Script::derive(&plan, 3, 0), Script::derive(&other, 3, 0));
    }

    #[test]
    fn hostile_plan_arms_every_fault_class_on_every_connection() {
        let plan = ChaosPlan::hostile(7);
        for conn in 0..64 {
            for dir in 0..2 {
                let s = Script::derive(&plan, conn, dir);
                assert!(
                    s.disconnect_after.is_some(),
                    "conn {conn} dir {dir}: every connection must eventually tear"
                );
                assert!(s.corrupt_next.is_some());
                assert!(s.delay.is_some());
                assert!(s.stall_next.is_some());
                // Positions must sit within one step of the stream start
                // so busy connections reliably reach them.
                let cut = s.disconnect_after.unwrap();
                assert!((2048..2048 + plan.disconnect_every * 8192).contains(&cut));
                assert!(s.corrupt_next.unwrap() < 64 + s.corrupt_step);
                assert!(s.stall_next.unwrap() < 128 + s.stall_step);
            }
        }
    }

    #[test]
    fn shred_plan_scripts_no_faults() {
        let plan = ChaosPlan::shred(1);
        for conn in 0..32 {
            for dir in 0..2 {
                let s = Script::derive(&plan, conn, dir);
                assert!(s.disconnect_after.is_none());
                assert!(s.corrupt_next.is_none());
                assert!(s.delay.is_none());
                assert!(s.stall_next.is_none());
            }
        }
    }

    #[test]
    fn chunk_stream_is_deterministic_and_bounded() {
        let plan = ChaosPlan::shred(9);
        let mut a = Script::derive(&plan, 0, 0);
        let mut b = Script::derive(&plan, 0, 0);
        for _ in 0..100 {
            let (x, y) = (a.next_chunk_len(7), b.next_chunk_len(7));
            assert_eq!(x, y);
            assert!((1..=7).contains(&x));
        }
    }

    /// End-to-end passthrough: a shred-only proxy in front of a trivial
    /// echo server delivers every byte intact despite rechunking.
    #[test]
    fn shred_proxy_is_transparent_to_content() {
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = upstream.accept().unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 256];
            loop {
                match conn.read(&mut chunk) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => {
                        buf.extend_from_slice(&chunk[..n]);
                        if buf.len() >= 1000 {
                            break;
                        }
                    }
                }
            }
            conn.write_all(&buf).unwrap();
            drop(conn.shutdown(Shutdown::Write));
        });

        let proxy = ChaosProxy::start(ChaosPlan::shred(5), upstream_addr).unwrap();
        let mut client = TcpStream::connect(proxy.local_addr()).unwrap();
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        client.write_all(&payload).unwrap();
        client.flush().unwrap();
        let mut back = Vec::new();
        let mut chunk = [0u8; 256];
        while back.len() < payload.len() {
            match client.read(&mut chunk) {
                Ok(0) | Err(_) => break,
                Ok(n) => back.extend_from_slice(&chunk[..n]),
            }
        }
        assert_eq!(back, payload, "shredding must not alter content");
        echo.join().unwrap();
        proxy.shutdown();
    }
}
