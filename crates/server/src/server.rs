//! The daemon: accept loop, per-connection reader threads, and a fixed
//! worker pool over the bounded job queue.
//!
//! # Thread layout and shutdown
//!
//! * **1 accept thread**, blocked in `TcpListener::accept`. Shutdown
//!   unblocks it with a throwaway self-connection.
//! * **1 reader thread per live connection**, blocked in `read_frame`
//!   with a 100 ms read timeout so it can poll the shutdown flag between
//!   frames (mid-frame timeouts are ridden out, so a slow writer cannot
//!   desynchronize the stream).
//! * **N worker threads**, blocked in [`BoundedQueue::pop`]. The queue's
//!   close-then-drain semantics mean admitted jobs still finish during a
//!   graceful shutdown; `pop` returning `None` is the workers' exit
//!   signal.
//!
//! [`ServerHandle::shutdown`] (or a remote `shutdown` op) flips one
//! flag, closes the queue, cancels in-flight job tokens, pokes the
//! accept loop, and joins *every* thread — the daemon owns all of its
//! threads, so a clean shutdown leaks none (the soak test asserts this
//! against `/proc/self/status`).
//!
//! # Stream poisoning
//!
//! Results and trace events go through one [`ConnWriter`] per
//! connection. The first failed write poisons the writer (mirroring
//! [`JsonlSink::is_poisoned`](hypart_trace::JsonlSink::is_poisoned));
//! the sink of any job streaming to it then cancels that job's token so
//! the engine stops early, and the worker reports the job as
//! `stream_aborted` instead of pretending a silently truncated trace
//! was delivered.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hypart_core::{AuditLevel, BalanceConstraint, CancelToken, EngineKind, RunCtx};
use hypart_hypergraph::{io::hgr, Hypergraph, PartId};
use hypart_kway::{recursive_bisection_with, KWayBalance};
use hypart_ml::{
    multi_start_budgeted_from_hierarchy_with, multi_start_budgeted_with, MlConfig, MlPartitioner,
};
use hypart_trace::{RunEvent, StopReason, TraceSink};

use crate::cache::{HierarchyCache, HierarchyKey, InstanceCache};
use crate::protocol::{
    is_timeout, read_frame, write_frame, EvalRequest, FrameError, InstanceRef, JobResult,
    PartitionRequest, Request, Response, StatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
use crate::queue::BoundedQueue;

/// How often idle reader threads wake to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Daemon configuration. `Default` binds an ephemeral localhost port
/// with a small worker pool, suitable for tests and the CLI alike.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port; read the
    /// actual one from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed with a
    /// typed `rejected` response.
    pub queue_capacity: usize,
    /// Per-frame payload cap.
    pub max_frame_bytes: usize,
    /// Instances retained in the digest-keyed cache (FIFO).
    pub instance_cache_capacity: usize,
    /// Coarsening hierarchies retained (FIFO).
    pub hierarchy_cache_capacity: usize,
    /// Engine configuration shared by all partition jobs. Part of the
    /// hierarchy-cache key, so reconfiguring the daemon never serves a
    /// stale hierarchy.
    pub ml: MlConfig,
    /// Artificial per-job delay before execution, for deterministically
    /// filling the queue in overload tests.
    #[doc(hidden)]
    pub worker_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            instance_cache_capacity: 16,
            hierarchy_cache_capacity: 32,
            ml: MlConfig::default(),
            worker_delay_ms: 0,
        }
    }
}

/// Monotonic daemon counters (the `stats` op snapshot, minus the cache
/// counters which live on the caches themselves).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    stream_aborted: AtomicU64,
    errors: AtomicU64,
}

/// One admitted unit of work.
struct Job {
    conn_id: u64,
    id: u64,
    writer: Arc<ConnWriter>,
    token: CancelToken,
    kind: JobKind,
}

enum JobKind {
    Partition(PartitionRequest, Arc<Hypergraph>, u128),
    Eval(EvalRequest, Arc<Hypergraph>, u128),
}

/// The serialized write half of one connection, shared by its reader
/// thread and every worker streaming that connection's jobs. The first
/// failed write poisons it; later sends are dropped without blocking.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    poisoned: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Sends one response frame; `false` once the writer is poisoned.
    fn send(&self, response: &Response) -> bool {
        if self.poisoned.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        match write_frame(&mut *stream, &response.to_json()) {
            Ok(()) => true,
            Err(_) => {
                self.poisoned.store(true, Ordering::Relaxed);
                false
            }
        }
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// The trace sink of one running job: forwards engine events as `event`
/// frames. A poisoned writer cancels the job's token, so the engine
/// stops at its next budget check instead of computing for a client
/// that can no longer hear the answer.
struct StreamSink {
    writer: Arc<ConnWriter>,
    id: u64,
    token: CancelToken,
    enabled: bool,
}

impl TraceSink for StreamSink {
    fn emit(&self, event: RunEvent) {
        if !self.enabled {
            return;
        }
        if !self.writer.send(&Response::Event { id: self.id, event }) {
            self.token.cancel();
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled
    }
}

struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<Job>,
    instances: InstanceCache,
    hierarchies: HierarchyCache,
    stats: Stats,
    shutdown: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Cancellation tokens of admitted-but-unfinished jobs, keyed by
    /// `(connection, job id)` so `cancel` cannot reach across
    /// connections.
    cancels: Mutex<HashMap<(u64, u64), CancelToken>>,
    /// Reader threads of connections seen so far (joined at shutdown;
    /// finished readers are cheap no-op joins).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            rejected_overload: self.stats.rejected_overload.load(Ordering::Relaxed),
            stream_aborted: self.stats.stream_aborted.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            instance_hits: self.instances.hits(),
            instance_misses: self.instances.misses(),
            hierarchy_hits: self.hierarchies.hits(),
            hierarchy_misses: self.hierarchies.misses(),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
        }
    }

    /// Flips the shutdown flag, stops admissions, cancels in-flight
    /// jobs, and wakes everyone who might be blocked. Idempotent.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
        let cancels = self.cancels.lock().unwrap_or_else(|e| e.into_inner());
        for token in cancels.values() {
            token.cancel();
        }
        drop(cancels);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        self.done_cv.notify_all();
    }
}

/// Constructor namespace for the daemon.
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns a
    /// handle controlling the daemon's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            instances: InstanceCache::new(config.instance_cache_capacity),
            hierarchies: HierarchyCache::new(config.hierarchy_cache_capacity),
            config,
            stats: Stats::default(),
            shutdown: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            cancels: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hypart-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut worker_threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("hypart-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            local_addr,
            shared,
            accept: Some(accept),
            workers: worker_threads,
        })
    }
}

/// Control handle of a running daemon. Dropping it shuts the daemon
/// down and joins every thread.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the daemon counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Gracefully shuts down: stops admitting, cancels in-flight jobs
    /// (they finish with `stopped: cancelled` results), drains the
    /// queue, and joins every thread the daemon spawned.
    pub fn shutdown(mut self) {
        self.finish();
    }

    /// Blocks until a remote `shutdown` op arrives, then joins all
    /// threads and returns the final counter snapshot. The
    /// `hypart serve` foreground mode.
    pub fn wait(mut self) -> StatsSnapshot {
        let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        self.finish();
        self.shared.snapshot()
    }

    fn finish(&mut self) {
        self.shared.begin_shutdown();
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag right after `accept` returns.
        drop(TcpStream::connect(self.local_addr));
        if let Some(accept) = self.accept.take() {
            drop(accept.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
        let readers = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for reader in readers {
            drop(reader.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.finish();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn_id = 0u64;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            // Transient accept failure (e.g. fd pressure): back off
            // briefly instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let shared_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("hypart-conn-{conn_id}"))
            .spawn(move || reader_loop(stream, conn_id, &shared_conn));
        if let Ok(handle) = spawned {
            shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
    }
}

/// Reads frames from one connection until EOF, error, or shutdown.
fn reader_loop(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    drop(stream.set_read_timeout(Some(READ_POLL)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::new(w)),
        Err(_) => return,
    };
    let mut reader = stream;
    let mut client_gone = true;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            // Daemon-initiated exit: the client may still be reading
            // results of in-flight jobs, so leave its tokens alone
            // (begin_shutdown already cancelled them).
            client_gone = false;
            break;
        }
        match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(Some(frame)) => handle_frame(&frame, conn_id, &writer, shared),
            Ok(None) => break,
            Err(FrameError::Io(e)) if is_timeout(&e) => continue,
            Err(FrameError::BadJson(detail)) => {
                // The frame was fully consumed; the stream is still in
                // sync, so answer and keep serving.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: None,
                    code: "parse".to_string(),
                    detail,
                });
            }
            Err(FrameError::TooLarge { declared, max }) => {
                // The payload was not consumed; the stream is
                // desynchronized beyond repair. Answer and hang up.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: None,
                    code: "bad_request".to_string(),
                    detail: format!("frame of {declared} bytes exceeds cap of {max}"),
                });
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    if client_gone {
        // Nobody is listening any more: cancel this connection's
        // in-flight jobs so workers stop computing for a dead peer.
        let mut cancels = shared.cancels.lock().unwrap_or_else(|e| e.into_inner());
        cancels.retain(|&(conn, _), token| {
            if conn == conn_id {
                token.cancel();
                false
            } else {
                true
            }
        });
    }
}

fn handle_frame(
    frame: &hypart_trace::json::JsonValue,
    conn_id: u64,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) {
    let request = match Request::from_json(frame) {
        Ok(request) => request,
        Err(detail) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Error {
                id: frame.get("id").and_then(|v| v.as_u64()),
                code: "bad_request".to_string(),
                detail,
            });
            return;
        }
    };
    match request {
        Request::Stats => {
            writer.send(&Response::Stats(shared.snapshot()));
        }
        Request::Shutdown => {
            writer.send(&Response::Bye);
            shared.begin_shutdown();
        }
        Request::Cancel { id } => {
            let cancels = shared.cancels.lock().unwrap_or_else(|e| e.into_inner());
            match cancels.get(&(conn_id, id)) {
                Some(token) => {
                    token.cancel();
                    drop(cancels);
                    writer.send(&Response::Ok { id });
                }
                None => {
                    drop(cancels);
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    writer.send(&Response::Error {
                        id: Some(id),
                        code: "unknown_job".to_string(),
                        detail: "no in-flight job with this id on this connection".to_string(),
                    });
                }
            }
        }
        Request::Partition(req) => {
            let Some((h, digest)) = resolve_instance(&req.instance, req.id, writer, shared) else {
                return;
            };
            let id = req.id;
            submit(
                Job {
                    conn_id,
                    id,
                    writer: Arc::clone(writer),
                    token: CancelToken::new(),
                    kind: JobKind::Partition(req, h, digest),
                },
                shared,
            );
        }
        Request::Eval(req) => {
            let Some((h, digest)) = resolve_instance(&req.instance, req.id, writer, shared) else {
                return;
            };
            if req.assignment.len() != h.num_vertices() {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(req.id),
                    code: "bad_request".to_string(),
                    detail: format!(
                        "assignment has {} entries, instance has {} vertices",
                        req.assignment.len(),
                        h.num_vertices()
                    ),
                });
                return;
            }
            if let Some(&p) = req.assignment.iter().find(|&&p| usize::from(p) >= req.k) {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(req.id),
                    code: "bad_request".to_string(),
                    detail: format!("assignment uses part {p} but k = {}", req.k),
                });
                return;
            }
            let id = req.id;
            submit(
                Job {
                    conn_id,
                    id,
                    writer: Arc::clone(writer),
                    token: CancelToken::new(),
                    kind: JobKind::Eval(req, h, digest),
                },
                shared,
            );
        }
    }
}

/// Turns an [`InstanceRef`] into a shared CSR + digest, answering the
/// client with a typed error on failure.
fn resolve_instance(
    instance: &InstanceRef,
    id: u64,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) -> Option<(Arc<Hypergraph>, u128)> {
    match instance {
        InstanceRef::Digest(digest) => match shared.instances.get(*digest) {
            Some(h) => Some((h, *digest)),
            None => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(id),
                    code: "unknown_instance".to_string(),
                    detail: "no cached instance with this digest; resend it inline".to_string(),
                });
                None
            }
        },
        InstanceRef::Inline(text) => match hgr::read(text.as_bytes()) {
            Ok(h) => {
                let digest = h.content_digest();
                let h = Arc::new(h);
                shared.instances.insert(digest, Arc::clone(&h));
                Some((h, digest))
            }
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(id),
                    code: "parse".to_string(),
                    detail: format!("instance is not valid .hgr: {e}"),
                });
                None
            }
        },
    }
}

/// Registers the job's cancellation token and admits it to the queue,
/// shedding with a typed `rejected` response when the queue is full.
fn submit(job: Job, shared: &Arc<Shared>) {
    let key = (job.conn_id, job.id);
    let writer = Arc::clone(&job.writer);
    let id = job.id;
    shared
        .cancels
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, job.token.clone());
    match shared.queue.try_push(job) {
        Ok(_) => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Accepted { id });
        }
        Err(full) => {
            shared
                .cancels
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            shared
                .stats
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            let depth = if full.depth == usize::MAX {
                // Closed-queue sentinel: the daemon is shutting down.
                shared.queue.capacity()
            } else {
                full.depth
            };
            writer.send(&Response::Rejected {
                id,
                queue_depth: depth,
                queue_capacity: shared.queue.capacity(),
            });
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // Workspaces live for the worker's lifetime: arenas grown by one job
    // are reused by the next, the same amortization the multi-start
    // drivers get within a single run.
    let mut ctx_template = RunCtx::new(0);
    while let Some(job) = shared.queue.pop() {
        if shared.config.worker_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.worker_delay_ms));
        }
        let key = (job.conn_id, job.id);
        let delivered = execute_job(&job, shared, &mut ctx_template);
        shared
            .cancels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        if delivered {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            // The connection writer poisoned mid-job (satellite of
            // `JsonlSink::is_poisoned`): the trace the client saw is
            // truncated, so the job is reported as aborted — the typed
            // error below is best-effort (the writer usually being the
            // very thing that failed).
            shared.stats.stream_aborted.fetch_add(1, Ordering::Relaxed);
            job.writer.send(&Response::Error {
                id: Some(job.id),
                code: "stream_poisoned".to_string(),
                detail: "response stream failed mid-job; job aborted".to_string(),
            });
        }
    }
}

/// Runs one job and streams its result. Returns `false` when the
/// connection writer poisoned and the result could not be delivered.
fn execute_job(job: &Job, shared: &Arc<Shared>, ctx_template: &mut RunCtx<'static>) -> bool {
    let (result, id) = match &job.kind {
        JobKind::Eval(req, h, digest) => (eval_job(req, h, *digest), req.id),
        JobKind::Partition(req, h, digest) => (
            partition_job(req, h, *digest, job, shared, ctx_template),
            req.id,
        ),
    };
    if job.writer.is_poisoned() {
        return false;
    }
    job.writer.send(&Response::Result { id, result })
}

fn eval_job(req: &EvalRequest, h: &Hypergraph, digest: u128) -> JobResult {
    let mut cut = 0u64;
    for e in h.nets() {
        let pins = h.net_pins(e);
        if let Some((&first, rest)) = pins.split_first() {
            let p0 = req.assignment[first.index()];
            if rest.iter().any(|&v| req.assignment[v.index()] != p0) {
                cut += u64::from(h.net_weight(e));
            }
        }
    }
    let mut part_weights = vec![0u64; req.k];
    for (v, &p) in req.assignment.iter().enumerate() {
        part_weights[usize::from(p)] += h.vertex_weight(hypart_hypergraph::VertexId::new(v as u32));
    }
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), req.k, req.fraction);
    JobResult {
        cut,
        balanced: part_weights.iter().all(|&w| balance.contains(w)),
        stopped: StopReason::Completed,
        audit_clean: true,
        hierarchy_reused: false,
        levels: 0,
        starts: 0,
        digest,
        assignment: None,
    }
}

fn partition_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    job: &Job,
    shared: &Arc<Shared>,
    ctx_template: &mut RunCtx<'static>,
) -> JobResult {
    let sink = StreamSink {
        writer: Arc::clone(&job.writer),
        id: req.id,
        token: job.token.clone(),
        enabled: req.trace,
    };
    // Move the worker's long-lived workspaces into this job's context
    // and reclaim them afterwards.
    let workspace = std::mem::take(&mut ctx_template.workspace);
    let coarsen_ws = std::mem::take(&mut ctx_template.coarsen);
    let mut ctx = RunCtx::new(req.seed)
        .with_sink(&sink)
        .with_cancel_token(job.token.clone())
        .with_audit(AuditLevel::Checkpoints)
        .with_workspace(workspace)
        .with_coarsen_workspace(coarsen_ws);
    if let Some(ms) = req.budget_ms {
        ctx = ctx.with_budget(Duration::from_millis(ms));
    }

    let result = if req.k == 2 {
        bisection_job(req, h, digest, shared, &mut ctx)
    } else {
        kway_job(req, h, digest, &shared.config.ml, &mut ctx)
    };
    ctx_template.workspace = std::mem::take(&mut ctx.workspace);
    ctx_template.coarsen = std::mem::take(&mut ctx.coarsen);
    result
}

/// 2-way jobs run the split pipeline so the hierarchy cache applies:
/// build (or reuse) the coarsening hierarchy, then partition from it.
/// A cache hit is announced with one `hierarchy_reused` trace event and
/// then replays bitwise the trace of a cold split-pipeline run — the
/// determinism contract of
/// [`MlPartitioner::run_from_hierarchy_with`].
fn bisection_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    shared: &Arc<Shared>,
    ctx: &mut RunCtx<'_>,
) -> JobResult {
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), req.fraction);
    if req.engine == EngineKind::NLevel {
        // The n-level backend never builds a CSR hierarchy, so the
        // hierarchy cache does not apply: run the engine directly.
        let partitioner =
            MlPartitioner::new(shared.config.ml.clone().with_engine(EngineKind::NLevel));
        return if req.budget_ms.is_some() {
            let out = multi_start_budgeted_with(&partitioner, h, &constraint, ctx);
            JobResult {
                cut: out.cut,
                balanced: out.balanced,
                stopped: out.stopped,
                audit_clean: out.audit_failure.is_none(),
                hierarchy_reused: false,
                levels: 0,
                starts: out.stats.outcomes.len(),
                digest,
                assignment: req
                    .include_assignment
                    .then(|| part_assignment(&out.assignment)),
            }
        } else {
            let out = partitioner.run_with(h, &constraint, ctx);
            JobResult {
                cut: out.cut,
                balanced: out.balanced,
                stopped: out.stopped,
                audit_clean: out.audit_failure.is_none(),
                hierarchy_reused: false,
                levels: out.levels,
                starts: 1,
                digest,
                assignment: req
                    .include_assignment
                    .then(|| part_assignment(&out.assignment)),
            }
        };
    }
    let partitioner = MlPartitioner::new(shared.config.ml.clone());
    let (hierarchy, reused) = if req.use_hierarchy_cache {
        let key = HierarchyKey::new(digest, &shared.config.ml.coarsen, req.seed);
        match shared.hierarchies.get(&key) {
            Some(hierarchy) => (hierarchy, true),
            None => {
                let hierarchy = partitioner.coarsen_hierarchy_with(h, ctx).into_shared();
                shared.hierarchies.insert(key, Arc::clone(&hierarchy));
                (hierarchy, false)
            }
        }
    } else {
        (
            partitioner.coarsen_hierarchy_with(h, ctx).into_shared(),
            false,
        )
    };
    if reused {
        ctx.sink.emit(RunEvent::HierarchyReused {
            levels: hierarchy.len(),
        });
    }
    let levels = hierarchy.len();
    if req.budget_ms.is_some() {
        let out =
            multi_start_budgeted_from_hierarchy_with(&partitioner, h, &hierarchy, &constraint, ctx);
        JobResult {
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            audit_clean: out.audit_failure.is_none(),
            hierarchy_reused: reused,
            levels,
            starts: out.stats.outcomes.len(),
            digest,
            assignment: req
                .include_assignment
                .then(|| part_assignment(&out.assignment)),
        }
    } else {
        let out = partitioner.run_from_hierarchy_with(h, &hierarchy, &constraint, ctx);
        JobResult {
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            audit_clean: out.audit_failure.is_none(),
            hierarchy_reused: reused,
            levels,
            starts: 1,
            digest,
            assignment: req
                .include_assignment
                .then(|| part_assignment(&out.assignment)),
        }
    }
}

/// `k > 2` jobs go through recursive bisection; hierarchies differ per
/// induced subregion, so only the instance cache applies.
fn kway_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    ml: &MlConfig,
    ctx: &mut RunCtx<'_>,
) -> JobResult {
    // Recursive bisection runs the 2-way engine per split, so the
    // request's backend choice threads through via the config.
    let ml = ml.clone().with_engine(req.engine);
    let out = recursive_bisection_with(h, req.k, req.fraction, &ml, ctx);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), req.k, req.fraction);
    JobResult {
        cut: out.cut,
        balanced: out.is_balanced(&balance),
        stopped: out.stopped,
        audit_clean: out.audit_failure.is_none(),
        hierarchy_reused: false,
        levels: 0,
        starts: 1,
        digest,
        assignment: req.include_assignment.then(|| out.assignment.clone()),
    }
}

fn part_assignment(assignment: &[PartId]) -> Vec<u16> {
    assignment
        .iter()
        .map(|&p| match p {
            PartId::P0 => 0,
            PartId::P1 => 1,
        })
        .collect()
}
