//! The daemon: accept loop, per-connection reader threads, and a fixed
//! worker pool over the bounded job queue.
//!
//! # Thread layout and shutdown
//!
//! * **1 accept thread**, blocked in `TcpListener::accept`. Shutdown
//!   unblocks it with a throwaway self-connection.
//! * **1 reader thread per live connection**, blocked in `read_frame`
//!   with a 100 ms read timeout so it can poll the shutdown flag between
//!   frames (mid-frame timeouts are ridden out, so a slow writer cannot
//!   desynchronize the stream).
//! * **N worker threads**, blocked in [`BoundedQueue::pop`]. The queue's
//!   close-then-drain semantics mean admitted jobs still finish during a
//!   graceful shutdown; `pop` returning `None` is the workers' exit
//!   signal.
//!
//! [`ServerHandle::shutdown`] (or a remote `shutdown` op) flips one
//! flag, closes the queue, cancels in-flight job tokens, pokes the
//! accept loop, and joins *every* thread — the daemon owns all of its
//! threads, so a clean shutdown leaks none (the soak test asserts this
//! against `/proc/self/status`).
//!
//! # Stream poisoning
//!
//! Results and trace events go through one [`ConnWriter`] per
//! connection. The first failed write poisons the writer (mirroring
//! [`JsonlSink::is_poisoned`](hypart_trace::JsonlSink::is_poisoned));
//! the sink of any job streaming to it then cancels that job's token so
//! the engine stops early, and the worker reports the job as
//! `stream_aborted` instead of pretending a silently truncated trace
//! was delivered.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hypart_core::{AuditLevel, BalanceConstraint, CancelToken, EngineKind, RunCtx};
use hypart_hypergraph::{io::hgr, Hypergraph, PartId};
use hypart_kway::{recursive_bisection_with, KWayBalance};
use hypart_ml::{
    multi_start_budgeted_from_hierarchy_with, multi_start_budgeted_with, MlConfig, MlPartitioner,
};
use hypart_trace::{RunEvent, StopReason, TraceSink};

use crate::cache::{HierarchyCache, HierarchyKey, InstanceCache};
use crate::protocol::{
    is_timeout, read_frame, write_frame, EvalRequest, FrameError, Health, InstanceRef, JobResult,
    PartitionRequest, Request, Response, StatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
};
use crate::queue::BoundedQueue;

/// How often idle reader threads wake to poll the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// Daemon configuration. `Default` binds an ephemeral localhost port
/// with a small worker pool, suitable for tests and the CLI alike.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port; read the
    /// actual one from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing jobs (clamped to at least 1).
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are shed with a
    /// typed `rejected` response.
    pub queue_capacity: usize,
    /// Per-frame payload cap.
    pub max_frame_bytes: usize,
    /// Instances retained in the digest-keyed cache (FIFO).
    pub instance_cache_capacity: usize,
    /// Coarsening hierarchies retained (FIFO).
    pub hierarchy_cache_capacity: usize,
    /// Engine configuration shared by all partition jobs. Part of the
    /// hierarchy-cache key, so reconfiguring the daemon never serves a
    /// stale hierarchy.
    pub ml: MlConfig,
    /// Admission control: reject inline instances whose *declared*
    /// header counts (nets or vertices) exceed this, with a typed
    /// `rejected_too_large` error *before* parsing. `0` disables the
    /// check.
    pub max_cells: usize,
    /// Watchdog overshoot factor: a budgeted job still running past
    /// `budget_ms * watchdog_factor` is force-cancelled via its
    /// [`CancelToken`] and answered with a typed `watchdog_cancelled`
    /// error. `0.0` disables the watchdog (no thread is spawned).
    pub watchdog_factor: f64,
    /// How often the watchdog scans running jobs.
    pub watchdog_poll_ms: u64,
    /// Write deadline per response frame: a consumer that stalls reads
    /// longer than this poisons its connection writer, feeding the
    /// existing `stream_aborted` accounting. `0` disables the deadline.
    pub write_deadline_ms: u64,
    /// Recently-completed idempotency tokens retained for replay (FIFO).
    pub token_cache_capacity: usize,
    /// Artificial per-job delay before execution, for deterministically
    /// filling the queue in overload tests (and, because the watchdog
    /// registers a budgeted job *before* this stall, for simulating a
    /// hung job in watchdog tests).
    #[doc(hidden)]
    pub worker_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            instance_cache_capacity: 16,
            hierarchy_cache_capacity: 32,
            ml: MlConfig::default(),
            max_cells: 0,
            watchdog_factor: 0.0,
            watchdog_poll_ms: 10,
            write_deadline_ms: 30_000,
            token_cache_capacity: 256,
            worker_delay_ms: 0,
        }
    }
}

/// Monotonic daemon counters (the `stats` op snapshot, minus the cache
/// counters which live on the caches themselves).
#[derive(Debug, Default)]
struct Stats {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_overload: AtomicU64,
    stream_aborted: AtomicU64,
    errors: AtomicU64,
    watchdog_cancelled: AtomicU64,
    rejected_too_large: AtomicU64,
    dedup_hits: AtomicU64,
    io_failures: AtomicU64,
}

/// One admitted unit of work.
struct Job {
    conn_id: u64,
    id: u64,
    writer: Arc<ConnWriter>,
    token: CancelToken,
    /// Idempotency token, when the client stamped one.
    request_token: Option<u64>,
    kind: JobKind,
}

enum JobKind {
    Partition(PartitionRequest, Arc<Hypergraph>, u128),
    Eval(EvalRequest, Arc<Hypergraph>, u128),
}

/// The serialized write half of one connection, shared by its reader
/// thread and every worker streaming that connection's jobs. The first
/// failed write poisons it; later sends are dropped without blocking.
struct ConnWriter {
    stream: Mutex<TcpStream>,
    poisoned: AtomicBool,
}

impl ConnWriter {
    fn new(stream: TcpStream) -> Self {
        ConnWriter {
            stream: Mutex::new(stream),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Sends one response frame; `false` once the writer is poisoned.
    fn send(&self, response: &Response) -> bool {
        if self.poisoned.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        match write_frame(&mut *stream, &response.to_json()) {
            Ok(()) => true,
            Err(_) => {
                self.poisoned.store(true, Ordering::Relaxed);
                false
            }
        }
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }
}

/// A job's terminal outcome, as cached for idempotent replay: exactly
/// what the original submission was (or will be) answered with.
#[derive(Clone)]
enum CachedOutcome {
    /// The job produced a result (including cancelled/deadline results).
    Result(JobResult),
    /// The job ended in a typed error (e.g. `watchdog_cancelled`).
    Failed { code: String, detail: String },
}

/// A retried submission waiting on an in-flight job with the same
/// token: gets the outcome delivered under its own job id when the
/// original completes.
struct Waiter {
    writer: Arc<ConnWriter>,
    id: u64,
}

/// What the token registry decided about a submission.
enum Admission {
    /// First sighting: run the job.
    Fresh,
    /// Same token is in flight: the caller was registered as a waiter.
    Attached,
    /// Same token recently completed: replay the cached outcome.
    Replay(CachedOutcome),
}

struct TokenMaps {
    in_flight: HashMap<u64, Vec<Waiter>>,
    completed: HashMap<u64, CachedOutcome>,
    order: VecDeque<u64>,
}

/// Idempotency-token dedup: in-flight tokens re-attach, recently
/// completed tokens replay. One lock guards both maps so a completion
/// draining waiters cannot race an admission checking `in_flight`.
struct TokenRegistry {
    inner: Mutex<TokenMaps>,
    capacity: usize,
}

impl TokenRegistry {
    fn new(capacity: usize) -> Self {
        TokenRegistry {
            inner: Mutex::new(TokenMaps {
                in_flight: HashMap::new(),
                completed: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Classifies a token-stamped submission. `Fresh` registers the
    /// token as in flight; the caller must later `complete` or
    /// `abandon` it.
    fn admit(&self, token: u64, writer: &Arc<ConnWriter>, id: u64) -> Admission {
        let mut maps = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(outcome) = maps.completed.get(&token) {
            return Admission::Replay(outcome.clone());
        }
        if let Some(waiters) = maps.in_flight.get_mut(&token) {
            waiters.push(Waiter {
                writer: Arc::clone(writer),
                id,
            });
            return Admission::Attached;
        }
        maps.in_flight.insert(token, Vec::new());
        Admission::Fresh
    }

    /// Forgets a `Fresh` token whose job never ran (queue rejection or
    /// resolution failure), releasing any waiters that attached in the
    /// window — they are answered by the caller with the same typed
    /// error the primary got.
    fn abandon(&self, token: u64) -> Vec<Waiter> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .in_flight
            .remove(&token)
            .unwrap_or_default()
    }

    /// Records the job's outcome for replay (FIFO-bounded) and returns
    /// the waiters to notify.
    fn complete(&self, token: u64, outcome: CachedOutcome) -> Vec<Waiter> {
        let mut maps = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let waiters = maps.in_flight.remove(&token).unwrap_or_default();
        if maps.completed.insert(token, outcome).is_none() {
            maps.order.push_back(token);
            while maps.order.len() > self.capacity {
                if let Some(evicted) = maps.order.pop_front() {
                    maps.completed.remove(&evicted);
                }
            }
        }
        waiters
    }

    /// Number of completed outcomes retained (for the health snapshot).
    fn completed_len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .completed
            .len()
    }
}

/// Delivers a cached outcome under the given job id. Returns whether
/// the frame went out (writer not poisoned).
fn send_outcome(writer: &ConnWriter, id: u64, outcome: &CachedOutcome) -> bool {
    match outcome {
        CachedOutcome::Result(result) => writer.send(&Response::Result {
            id,
            result: result.clone(),
        }),
        CachedOutcome::Failed { code, detail } => writer.send(&Response::Error {
            id: Some(id),
            code: code.clone(),
            detail: detail.clone(),
        }),
    }
}

/// A budgeted job under watchdog supervision.
struct RunningJob {
    /// Force-cancel once past this (`start + budget_ms * factor`).
    overshoot_deadline: Instant,
    token: CancelToken,
    /// Set by the watchdog when it cancels, so the worker can tell a
    /// watchdog kill apart from a client cancel or shutdown.
    fired: Arc<AtomicBool>,
}

/// The trace sink of one running job: forwards engine events as `event`
/// frames. A poisoned writer cancels the job's token, so the engine
/// stops at its next budget check instead of computing for a client
/// that can no longer hear the answer.
struct StreamSink {
    writer: Arc<ConnWriter>,
    id: u64,
    token: CancelToken,
    enabled: bool,
    /// Token-stamped jobs keep computing through a poisoned writer:
    /// their outcome is still wanted (a healed client will re-attach by
    /// request token), so the sink only stops streaming instead of
    /// cancelling.
    durable: bool,
}

impl TraceSink for StreamSink {
    fn emit(&self, event: RunEvent) {
        if !self.enabled {
            return;
        }
        if !self.writer.send(&Response::Event { id: self.id, event }) && !self.durable {
            self.token.cancel();
        }
    }

    fn is_enabled(&self) -> bool {
        self.enabled
    }
}

struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<Job>,
    instances: InstanceCache,
    hierarchies: HierarchyCache,
    tokens: TokenRegistry,
    stats: Stats,
    started: Instant,
    shutdown: AtomicBool,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Budgeted jobs currently executing, scanned by the watchdog.
    running: Mutex<HashMap<(u64, u64), RunningJob>>,
    /// Cancellation tokens of admitted-but-unfinished jobs, keyed by
    /// `(connection, job id)` so `cancel` cannot reach across
    /// connections. The flag marks durable (token-stamped) jobs, which
    /// survive the death of the connection that submitted them: a
    /// healed client is about to re-attach to them by request token.
    cancels: Mutex<HashMap<(u64, u64), (CancelToken, bool)>>,
    /// Reader threads of connections seen so far (joined at shutdown;
    /// finished readers are cheap no-op joins).
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            rejected_overload: self.stats.rejected_overload.load(Ordering::Relaxed),
            stream_aborted: self.stats.stream_aborted.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            instance_hits: self.instances.hits(),
            instance_misses: self.instances.misses(),
            hierarchy_hits: self.hierarchies.hits(),
            hierarchy_misses: self.hierarchies.misses(),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            watchdog_cancelled: self.stats.watchdog_cancelled.load(Ordering::Relaxed),
            rejected_too_large: self.stats.rejected_too_large.load(Ordering::Relaxed),
            dedup_hits: self.stats.dedup_hits.load(Ordering::Relaxed),
            io_failures: self.stats.io_failures.load(Ordering::Relaxed),
        }
    }

    fn health(&self) -> Health {
        Health {
            uptime_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            queue_depth: self.queue.depth(),
            queue_capacity: self.queue.capacity(),
            instances_cached: self.instances.len(),
            hierarchies_cached: self.hierarchies.len(),
            tokens_cached: self.tokens.completed_len(),
        }
    }

    /// Flips the shutdown flag, stops admissions, cancels in-flight
    /// jobs, and wakes everyone who might be blocked. Idempotent.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
        let cancels = self.cancels.lock().unwrap_or_else(|e| e.into_inner());
        for (token, _) in cancels.values() {
            token.cancel();
        }
        drop(cancels);
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        self.done_cv.notify_all();
    }
}

/// Constructor namespace for the daemon.
pub struct Server;

impl Server {
    /// Binds, spawns the accept loop and worker pool, and returns a
    /// handle controlling the daemon's lifetime.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            instances: InstanceCache::new(config.instance_cache_capacity),
            hierarchies: HierarchyCache::new(config.hierarchy_cache_capacity),
            tokens: TokenRegistry::new(config.token_cache_capacity),
            config,
            stats: Stats::default(),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            running: Mutex::new(HashMap::new()),
            cancels: Mutex::new(HashMap::new()),
            conn_threads: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hypart-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        let mut worker_threads = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            worker_threads.push(
                std::thread::Builder::new()
                    .name(format!("hypart-worker-{w}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let watchdog = if shared.config.watchdog_factor > 0.0 {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("hypart-watchdog".to_string())
                    .spawn(move || watchdog_loop(&shared))?,
            )
        } else {
            None
        };
        Ok(ServerHandle {
            local_addr,
            shared,
            accept: Some(accept),
            workers: worker_threads,
            watchdog,
        })
    }
}

/// Control handle of a running daemon. Dropping it shuts the daemon
/// down and joins every thread.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A point-in-time snapshot of the daemon counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.snapshot()
    }

    /// Gracefully shuts down: stops admitting, cancels in-flight jobs
    /// (they finish with `stopped: cancelled` results), drains the
    /// queue, and joins every thread the daemon spawned.
    pub fn shutdown(mut self) {
        self.finish();
    }

    /// Blocks until a remote `shutdown` op arrives, then joins all
    /// threads and returns the final counter snapshot. The
    /// `hypart serve` foreground mode.
    pub fn wait(mut self) -> StatsSnapshot {
        let mut done = self.shared.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            done = self
                .shared
                .done_cv
                .wait(done)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(done);
        self.finish();
        self.shared.snapshot()
    }

    fn finish(&mut self) {
        self.shared.begin_shutdown();
        // Unblock the accept loop with a throwaway connection (the
        // connect result is irrelevant — the poke is the point); it
        // checks the flag right after `accept` returns.
        drop(TcpStream::connect(self.local_addr));
        // Joins only fail when the joined thread panicked; make that
        // visible instead of silently discarding it.
        if let Some(accept) = self.accept.take() {
            join_noting_panic(accept, "accept");
        }
        for worker in self.workers.drain(..) {
            join_noting_panic(worker, "worker");
        }
        if let Some(watchdog) = self.watchdog.take() {
            join_noting_panic(watchdog, "watchdog");
        }
        let readers = std::mem::take(
            &mut *self
                .shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for reader in readers {
            join_noting_panic(reader, "reader");
        }
    }
}

fn join_noting_panic(handle: JoinHandle<()>, role: &str) {
    if handle.join().is_err() {
        eprintln!("hypart-server: {role} thread panicked");
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.finish();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn_id = 0u64;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            // Transient accept failure (e.g. fd pressure): back off
            // briefly instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let shared_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("hypart-conn-{conn_id}"))
            .spawn(move || reader_loop(stream, conn_id, &shared_conn));
        if let Ok(handle) = spawned {
            shared
                .conn_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
    }
}

/// Reads frames from one connection until EOF, error, or shutdown.
fn reader_loop(stream: TcpStream, conn_id: u64, shared: &Arc<Shared>) {
    // A connection whose read timeout cannot be installed would block
    // its reader thread indefinitely (it could never poll the shutdown
    // flag); count the failure and refuse the connection instead of
    // silently entering the un-pollable state.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        shared.stats.io_failures.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let writer = match stream.try_clone() {
        Ok(w) => {
            // Slow-consumer defense: a peer that stops reading makes
            // response writes block; the deadline turns that into a
            // write error, which poisons the writer and feeds the
            // existing `stream_aborted` accounting.
            if shared.config.write_deadline_ms > 0
                && w.set_write_timeout(Some(Duration::from_millis(shared.config.write_deadline_ms)))
                    .is_err()
            {
                shared.stats.io_failures.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Arc::new(ConnWriter::new(w))
        }
        Err(_) => {
            shared.stats.io_failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let mut reader = stream;
    let mut client_gone = true;
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            // Daemon-initiated exit: the client may still be reading
            // results of in-flight jobs, so leave its tokens alone
            // (begin_shutdown already cancelled them).
            client_gone = false;
            break;
        }
        match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Ok(Some(frame)) => handle_frame(&frame, conn_id, &writer, shared),
            Ok(None) => break,
            Err(FrameError::Io(e)) if is_timeout(&e) => continue,
            Err(FrameError::BadJson(detail)) => {
                // The frame was fully consumed; the stream is still in
                // sync, so answer and keep serving.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: None,
                    code: "parse".to_string(),
                    detail,
                });
            }
            Err(FrameError::TooLarge { declared, max }) => {
                // The payload was not consumed; the stream is
                // desynchronized beyond repair. Answer and hang up.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: None,
                    code: "bad_request".to_string(),
                    detail: format!("frame of {declared} bytes exceeds cap of {max}"),
                });
                break;
            }
            Err(FrameError::Io(_)) => break,
        }
    }
    if client_gone {
        // Nobody is listening any more: cancel this connection's
        // in-flight jobs so workers stop computing for a dead peer —
        // except durable (token-stamped) jobs, whose outcome is still
        // wanted: the client advertised its intent to retry, and a
        // resubmission on a fresh connection will attach by token or
        // replay the cached outcome.
        let mut cancels = shared.cancels.lock().unwrap_or_else(|e| e.into_inner());
        cancels.retain(|&(conn, _), (token, durable)| {
            if conn == conn_id && !*durable {
                token.cancel();
                false
            } else {
                true
            }
        });
    }
}

fn handle_frame(
    frame: &hypart_trace::json::JsonValue,
    conn_id: u64,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) {
    let request = match Request::from_json(frame) {
        Ok(request) => request,
        Err(detail) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Error {
                id: frame.get("id").and_then(|v| v.as_u64()),
                code: "bad_request".to_string(),
                detail,
            });
            return;
        }
    };
    match request {
        Request::Stats => {
            writer.send(&Response::Stats(shared.snapshot()));
        }
        Request::Ping => {
            writer.send(&Response::Pong(shared.health()));
        }
        Request::Shutdown => {
            writer.send(&Response::Bye);
            shared.begin_shutdown();
        }
        Request::Cancel { id } => {
            let cancels = shared.cancels.lock().unwrap_or_else(|e| e.into_inner());
            match cancels.get(&(conn_id, id)) {
                Some((token, _)) => {
                    token.cancel();
                    drop(cancels);
                    writer.send(&Response::Ok { id });
                }
                None => {
                    drop(cancels);
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    writer.send(&Response::Error {
                        id: Some(id),
                        code: "unknown_job".to_string(),
                        detail: "no in-flight job with this id on this connection".to_string(),
                    });
                }
            }
        }
        Request::Partition(req) => {
            let request_token = req.request_token;
            if !admit_token(request_token, req.id, writer, shared) {
                return;
            }
            let Some((h, digest)) = resolve_instance(&req.instance, req.id, writer, shared) else {
                abandon_token(request_token, shared);
                return;
            };
            let id = req.id;
            submit(
                Job {
                    conn_id,
                    id,
                    writer: Arc::clone(writer),
                    token: CancelToken::new(),
                    request_token,
                    kind: JobKind::Partition(req, h, digest),
                },
                shared,
            );
        }
        Request::Eval(req) => {
            let request_token = req.request_token;
            if !admit_token(request_token, req.id, writer, shared) {
                return;
            }
            let Some((h, digest)) = resolve_instance(&req.instance, req.id, writer, shared) else {
                abandon_token(request_token, shared);
                return;
            };
            if req.assignment.len() != h.num_vertices() {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(req.id),
                    code: "bad_request".to_string(),
                    detail: format!(
                        "assignment has {} entries, instance has {} vertices",
                        req.assignment.len(),
                        h.num_vertices()
                    ),
                });
                abandon_token(request_token, shared);
                return;
            }
            if let Some(&p) = req.assignment.iter().find(|&&p| usize::from(p) >= req.k) {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(req.id),
                    code: "bad_request".to_string(),
                    detail: format!("assignment uses part {p} but k = {}", req.k),
                });
                abandon_token(request_token, shared);
                return;
            }
            let id = req.id;
            submit(
                Job {
                    conn_id,
                    id,
                    writer: Arc::clone(writer),
                    token: CancelToken::new(),
                    request_token,
                    kind: JobKind::Eval(req, h, digest),
                },
                shared,
            );
        }
    }
}

/// Runs the idempotency check for a token-stamped submission. Returns
/// `true` when the job should proceed (fresh token, or no token at
/// all); `false` when it was deduplicated — the caller already got an
/// `Accepted` plus, for a completed token, the replayed outcome.
fn admit_token(
    request_token: Option<u64>,
    id: u64,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) -> bool {
    let Some(token) = request_token else {
        return true;
    };
    match shared.tokens.admit(token, writer, id) {
        Admission::Fresh => true,
        Admission::Attached => {
            shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Accepted { id });
            false
        }
        Admission::Replay(outcome) => {
            shared.stats.dedup_hits.fetch_add(1, Ordering::Relaxed);
            writer.send(&Response::Accepted { id });
            send_outcome(writer, id, &outcome);
            false
        }
    }
}

/// Releases a freshly admitted token whose job never made it into the
/// queue, answering any waiters that attached in the window so their
/// retries do not hang.
fn abandon_token(request_token: Option<u64>, shared: &Arc<Shared>) {
    if let Some(token) = request_token {
        for waiter in shared.tokens.abandon(token) {
            waiter.writer.send(&Response::Error {
                id: Some(waiter.id),
                code: "bad_request".to_string(),
                detail: "original submission with this token failed before running".to_string(),
            });
        }
    }
}

/// Turns an [`InstanceRef`] into a shared CSR + digest, answering the
/// client with a typed error on failure.
fn resolve_instance(
    instance: &InstanceRef,
    id: u64,
    writer: &Arc<ConnWriter>,
    shared: &Arc<Shared>,
) -> Option<(Arc<Hypergraph>, u128)> {
    match instance {
        InstanceRef::Digest(digest) => match shared.instances.get(*digest) {
            Some(h) => Some((h, *digest)),
            None => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                writer.send(&Response::Error {
                    id: Some(id),
                    code: "unknown_instance".to_string(),
                    detail: "no cached instance with this digest; resend it inline".to_string(),
                });
                None
            }
        },
        InstanceRef::Inline(text) => {
            // Admission control: reject on the *declared* header counts
            // before paying for a parse of the full instance text. An
            // unparseable header falls through to the real parser's
            // error reporting.
            if shared.config.max_cells > 0 {
                if let Some((nets, vertices)) = declared_counts(text) {
                    let max = shared.config.max_cells as u64;
                    if nets > max || vertices > max {
                        shared
                            .stats
                            .rejected_too_large
                            .fetch_add(1, Ordering::Relaxed);
                        writer.send(&Response::Error {
                            id: Some(id),
                            code: "rejected_too_large".to_string(),
                            detail: format!(
                                "declared {nets} nets x {vertices} vertices exceeds \
                                 the admission limit of {max} cells"
                            ),
                        });
                        return None;
                    }
                }
            }
            match hgr::read(text.as_bytes()) {
                Ok(h) => {
                    let digest = h.content_digest();
                    let h = Arc::new(h);
                    shared.instances.insert(digest, Arc::clone(&h));
                    Some((h, digest))
                }
                Err(e) => {
                    shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                    writer.send(&Response::Error {
                        id: Some(id),
                        code: "parse".to_string(),
                        detail: format!("instance is not valid .hgr: {e}"),
                    });
                    None
                }
            }
        }
    }
}

/// Extracts the `(num_nets, num_vertices)` pair an `.hgr` header
/// declares, skipping `%` comment lines. `None` when the header is
/// absent or malformed (the real parser then produces the error).
fn declared_counts(text: &str) -> Option<(u64, u64)> {
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let nets = fields.next()?.parse().ok()?;
        let vertices = fields.next()?.parse().ok()?;
        return Some((nets, vertices));
    }
    None
}

/// Registers the job's cancellation token and admits it to the queue,
/// shedding with a typed `rejected` response when the queue is full.
fn submit(job: Job, shared: &Arc<Shared>) {
    let key = (job.conn_id, job.id);
    let writer = Arc::clone(&job.writer);
    let id = job.id;
    let request_token = job.request_token;
    shared
        .cancels
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, (job.token.clone(), request_token.is_some()));
    // Acknowledge before enqueueing: a worker may finish a queued job
    // almost instantly, and the `accepted` ack must never trail the
    // result on the wire — sequential clients rely on a deterministic
    // per-connection frame order. A full queue follows up with
    // `rejected`, which supersedes the ack.
    writer.send(&Response::Accepted { id });
    match shared.queue.try_push(job) {
        Ok(_) => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        }
        Err(full) => {
            shared
                .cancels
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            abandon_token(request_token, shared);
            shared
                .stats
                .rejected_overload
                .fetch_add(1, Ordering::Relaxed);
            let depth = if full.depth == usize::MAX {
                // Closed-queue sentinel: the daemon is shutting down.
                shared.queue.capacity()
            } else {
                full.depth
            };
            writer.send(&Response::Rejected {
                id,
                queue_depth: depth,
                queue_capacity: shared.queue.capacity(),
            });
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // Workspaces live for the worker's lifetime: arenas grown by one job
    // are reused by the next, the same amortization the multi-start
    // drivers get within a single run.
    let mut ctx_template = RunCtx::new(0);
    while let Some(job) = shared.queue.pop() {
        let key = (job.conn_id, job.id);
        // Register with the watchdog *before* the test-only stall so a
        // job that hangs before (or during) execution is still caught.
        let fired = register_watchdog(&job, shared);
        if shared.config.worker_delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(shared.config.worker_delay_ms));
        }
        let result = match &job.kind {
            JobKind::Eval(req, h, digest) => eval_job(req, h, *digest),
            JobKind::Partition(req, h, digest) => {
                partition_job(req, h, *digest, &job, shared, &mut ctx_template)
            }
        };
        shared
            .running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        shared
            .cancels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        // A watchdog kill surfaces as a typed error, not a cancelled
        // result; a job that completed despite the watchdog firing (it
        // won the race) keeps its result.
        let watchdog_killed = fired
            .map(|f| f.load(Ordering::Relaxed) && result.stopped == StopReason::Cancelled)
            .unwrap_or(false);
        let outcome = if watchdog_killed {
            shared
                .stats
                .watchdog_cancelled
                .fetch_add(1, Ordering::Relaxed);
            CachedOutcome::Failed {
                code: "watchdog_cancelled".to_string(),
                detail: "job overshot its budget and was force-cancelled by the watchdog"
                    .to_string(),
            }
        } else {
            CachedOutcome::Result(result)
        };
        // Cache the outcome for idempotent replay *before* attempting
        // delivery — a retry after a poisoned primary stream is exactly
        // the case replay exists for.
        let waiters = match job.request_token {
            Some(token) => shared.tokens.complete(token, outcome.clone()),
            None => Vec::new(),
        };
        let delivered = !job.writer.is_poisoned() && send_outcome(&job.writer, job.id, &outcome);
        if delivered {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            // The connection writer poisoned mid-job (satellite of
            // `JsonlSink::is_poisoned`): the trace the client saw is
            // truncated, so the job is reported as aborted — the typed
            // error below is best-effort (the writer usually being the
            // very thing that failed).
            shared.stats.stream_aborted.fetch_add(1, Ordering::Relaxed);
            job.writer.send(&Response::Error {
                id: Some(job.id),
                code: "stream_poisoned".to_string(),
                detail: "response stream failed mid-job; job aborted".to_string(),
            });
        }
        for waiter in waiters {
            send_outcome(&waiter.writer, waiter.id, &outcome);
        }
    }
}

/// Puts a budgeted job under watchdog supervision. Returns the flag the
/// watchdog sets when it fires, or `None` when the job is not
/// supervised (no budget, or the watchdog is disabled).
fn register_watchdog(job: &Job, shared: &Arc<Shared>) -> Option<Arc<AtomicBool>> {
    if shared.config.watchdog_factor <= 0.0 {
        return None;
    }
    let JobKind::Partition(req, _, _) = &job.kind else {
        return None;
    };
    let budget_ms = req.budget_ms?;
    let overshoot_ms = (budget_ms as f64 * shared.config.watchdog_factor).ceil();
    let fired = Arc::new(AtomicBool::new(false));
    shared
        .running
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(
            (job.conn_id, job.id),
            RunningJob {
                overshoot_deadline: Instant::now() + Duration::from_millis(overshoot_ms as u64),
                token: job.token.clone(),
                fired: Arc::clone(&fired),
            },
        );
    Some(fired)
}

/// Scans running budgeted jobs and force-cancels overshooters. Wakes on
/// the shutdown condvar so it exits promptly with everyone else.
fn watchdog_loop(shared: &Arc<Shared>) {
    let poll = Duration::from_millis(shared.config.watchdog_poll_ms.max(1));
    loop {
        {
            let done = shared.done.lock().unwrap_or_else(|e| e.into_inner());
            if *done {
                return;
            }
            let (done, _) = shared
                .done_cv
                .wait_timeout(done, poll)
                .unwrap_or_else(|e| e.into_inner());
            if *done {
                return;
            }
        }
        let now = Instant::now();
        let running = shared.running.lock().unwrap_or_else(|e| e.into_inner());
        for job in running.values() {
            if now >= job.overshoot_deadline && !job.fired.swap(true, Ordering::Relaxed) {
                job.token.cancel();
            }
        }
    }
}

fn eval_job(req: &EvalRequest, h: &Hypergraph, digest: u128) -> JobResult {
    let mut cut = 0u64;
    for e in h.nets() {
        let pins = h.net_pins(e);
        if let Some((&first, rest)) = pins.split_first() {
            let p0 = req.assignment[first.index()];
            if rest.iter().any(|&v| req.assignment[v.index()] != p0) {
                cut += u64::from(h.net_weight(e));
            }
        }
    }
    let mut part_weights = vec![0u64; req.k];
    for (v, &p) in req.assignment.iter().enumerate() {
        part_weights[usize::from(p)] += h.vertex_weight(hypart_hypergraph::VertexId::new(v as u32));
    }
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), req.k, req.fraction);
    JobResult {
        cut,
        balanced: part_weights.iter().all(|&w| balance.contains(w)),
        stopped: StopReason::Completed,
        audit_clean: true,
        hierarchy_reused: false,
        levels: 0,
        starts: 0,
        digest,
        assignment: None,
    }
}

fn partition_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    job: &Job,
    shared: &Arc<Shared>,
    ctx_template: &mut RunCtx<'static>,
) -> JobResult {
    let sink = StreamSink {
        writer: Arc::clone(&job.writer),
        id: req.id,
        token: job.token.clone(),
        enabled: req.trace,
        durable: job.request_token.is_some(),
    };
    // Move the worker's long-lived workspaces into this job's context
    // and reclaim them afterwards.
    let workspace = std::mem::take(&mut ctx_template.workspace);
    let coarsen_ws = std::mem::take(&mut ctx_template.coarsen);
    let mut ctx = RunCtx::new(req.seed)
        .with_sink(&sink)
        .with_cancel_token(job.token.clone())
        .with_audit(AuditLevel::Checkpoints)
        .with_workspace(workspace)
        .with_coarsen_workspace(coarsen_ws);
    if let Some(ms) = req.budget_ms {
        ctx = ctx.with_budget(Duration::from_millis(ms));
    }

    let result = if req.k == 2 {
        bisection_job(req, h, digest, shared, &mut ctx)
    } else {
        kway_job(req, h, digest, &shared.config.ml, &mut ctx)
    };
    ctx_template.workspace = std::mem::take(&mut ctx.workspace);
    ctx_template.coarsen = std::mem::take(&mut ctx.coarsen);
    result
}

/// 2-way jobs run the split pipeline so the hierarchy cache applies:
/// build (or reuse) the coarsening hierarchy, then partition from it.
/// A cache hit is announced with one `hierarchy_reused` trace event and
/// then replays bitwise the trace of a cold split-pipeline run — the
/// determinism contract of
/// [`MlPartitioner::run_from_hierarchy_with`].
fn bisection_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    shared: &Arc<Shared>,
    ctx: &mut RunCtx<'_>,
) -> JobResult {
    let constraint = BalanceConstraint::with_fraction(h.total_vertex_weight(), req.fraction);
    if req.engine == EngineKind::NLevel {
        // The n-level backend never builds a CSR hierarchy, so the
        // hierarchy cache does not apply: run the engine directly.
        let partitioner =
            MlPartitioner::new(shared.config.ml.clone().with_engine(EngineKind::NLevel));
        return if req.budget_ms.is_some() {
            let out = multi_start_budgeted_with(&partitioner, h, &constraint, ctx);
            JobResult {
                cut: out.cut,
                balanced: out.balanced,
                stopped: out.stopped,
                audit_clean: out.audit_failure.is_none(),
                hierarchy_reused: false,
                levels: 0,
                starts: out.stats.outcomes.len(),
                digest,
                assignment: req
                    .include_assignment
                    .then(|| part_assignment(&out.assignment)),
            }
        } else {
            let out = partitioner.run_with(h, &constraint, ctx);
            JobResult {
                cut: out.cut,
                balanced: out.balanced,
                stopped: out.stopped,
                audit_clean: out.audit_failure.is_none(),
                hierarchy_reused: false,
                levels: out.levels,
                starts: 1,
                digest,
                assignment: req
                    .include_assignment
                    .then(|| part_assignment(&out.assignment)),
            }
        };
    }
    let partitioner = MlPartitioner::new(shared.config.ml.clone());
    let (hierarchy, reused) = if req.use_hierarchy_cache {
        let key = HierarchyKey::new(digest, &shared.config.ml.coarsen, req.seed);
        match shared.hierarchies.get(&key) {
            Some(hierarchy) => (hierarchy, true),
            None => {
                let hierarchy = partitioner.coarsen_hierarchy_with(h, ctx).into_shared();
                shared.hierarchies.insert(key, Arc::clone(&hierarchy));
                (hierarchy, false)
            }
        }
    } else {
        (
            partitioner.coarsen_hierarchy_with(h, ctx).into_shared(),
            false,
        )
    };
    if reused {
        ctx.sink.emit(RunEvent::HierarchyReused {
            levels: hierarchy.len(),
        });
    }
    let levels = hierarchy.len();
    if req.budget_ms.is_some() {
        let out =
            multi_start_budgeted_from_hierarchy_with(&partitioner, h, &hierarchy, &constraint, ctx);
        JobResult {
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            audit_clean: out.audit_failure.is_none(),
            hierarchy_reused: reused,
            levels,
            starts: out.stats.outcomes.len(),
            digest,
            assignment: req
                .include_assignment
                .then(|| part_assignment(&out.assignment)),
        }
    } else {
        let out = partitioner.run_from_hierarchy_with(h, &hierarchy, &constraint, ctx);
        JobResult {
            cut: out.cut,
            balanced: out.balanced,
            stopped: out.stopped,
            audit_clean: out.audit_failure.is_none(),
            hierarchy_reused: reused,
            levels,
            starts: 1,
            digest,
            assignment: req
                .include_assignment
                .then(|| part_assignment(&out.assignment)),
        }
    }
}

/// `k > 2` jobs go through recursive bisection; hierarchies differ per
/// induced subregion, so only the instance cache applies.
fn kway_job(
    req: &PartitionRequest,
    h: &Hypergraph,
    digest: u128,
    ml: &MlConfig,
    ctx: &mut RunCtx<'_>,
) -> JobResult {
    // Recursive bisection runs the 2-way engine per split, so the
    // request's backend choice threads through via the config.
    let ml = ml.clone().with_engine(req.engine);
    let out = recursive_bisection_with(h, req.k, req.fraction, &ml, ctx);
    let balance = KWayBalance::with_fraction(h.total_vertex_weight(), req.k, req.fraction);
    JobResult {
        cut: out.cut,
        balanced: out.is_balanced(&balance),
        stopped: out.stopped,
        audit_clean: out.audit_failure.is_none(),
        hierarchy_reused: false,
        levels: 0,
        starts: 1,
        digest,
        assignment: req.include_assignment.then(|| out.assignment.clone()),
    }
}

fn part_assignment(assignment: &[PartId]) -> Vec<u16> {
    assignment
        .iter()
        .map(|&p| match p {
            PartId::P0 => 0,
            PartId::P1 => 1,
        })
        .collect()
}
