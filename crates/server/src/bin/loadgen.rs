//! Load generator for the partitioning daemon.
//!
//! Drives a mixed workload — 2-way jobs (budgeted and not, traced and
//! not), k-way jobs, evals, and digest re-queries that exercise both
//! caches — from several client threads, then prints a one-screen
//! summary of outcomes and daemon counters.
//!
//! With `--chaos SEED`, all client traffic is routed through the
//! in-process [`ChaosProxy`] running the hostile plan for that seed:
//! frames are shredded, connections torn mid-frame, bytes corrupted,
//! and chunks delayed/stalled. Clients run with a retry policy and
//! idempotency tokens, so every job must still end in exactly one
//! outcome — the run exits nonzero if any job is lost.
//!
//! ```text
//! hypart-loadgen --self-host --jobs 200 --clients 4
//! hypart-loadgen --addr 127.0.0.1:7117 --jobs 1000 --cells 800
//! hypart-loadgen --self-host --chaos 0xC0FFEE --jobs 500
//! ```

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::net::ToSocketAddrs;
use std::process::ExitCode;
use std::time::Duration;

use hypart_core::derive_seed;
use hypart_server::protocol::{EvalRequest, InstanceRef, PartitionRequest, Request};
use hypart_server::{ChaosPlan, ChaosProxy, Client, JobOutcome, RetryPolicy, Server, ServerConfig};

struct Options {
    addr: Option<String>,
    self_host: bool,
    jobs: usize,
    clients: usize,
    cells: usize,
    budget_ms: u64,
    seed: u64,
    chaos: Option<u64>,
    shutdown: bool,
}

impl Options {
    fn parse() -> Result<Options, String> {
        let mut opts = Options {
            addr: None,
            self_host: false,
            jobs: 200,
            clients: 4,
            cells: 300,
            budget_ms: 20,
            seed: 1,
            chaos: None,
            shutdown: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
            match arg.as_str() {
                "--addr" => opts.addr = Some(value("--addr")?),
                "--self-host" => opts.self_host = true,
                "--jobs" => opts.jobs = parse_num(&value("--jobs")?)?,
                "--clients" => opts.clients = parse_num(&value("--clients")?)?,
                "--cells" => opts.cells = parse_num(&value("--cells")?)?,
                "--budget-ms" => opts.budget_ms = parse_num(&value("--budget-ms")?)? as u64,
                "--seed" => opts.seed = parse_num(&value("--seed")?)? as u64,
                "--chaos" => opts.chaos = Some(parse_seed(&value("--chaos")?)?),
                "--shutdown" => opts.shutdown = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        if opts.addr.is_none() && !opts.self_host {
            return Err(format!("give --addr or --self-host\n{USAGE}"));
        }
        Ok(opts)
    }
}

const USAGE: &str = "usage: hypart-loadgen (--addr HOST:PORT | --self-host) \
[--jobs N] [--clients N] [--cells N] [--budget-ms MS] [--seed S] \
[--chaos SEED] [--shutdown]

--chaos routes all traffic through a deterministic fault-injecting
proxy (seed accepts decimal or 0x hex); clients then retry with
idempotency tokens and the run fails if any job is lost.
--shutdown sends the remote shutdown op after the workload, stopping an
external daemon (a --self-host daemon is always stopped).";

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|e| format!("bad seed {s:?}: {e}"))
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

#[derive(Default)]
struct Tally {
    finished: usize,
    rejected: usize,
    failed: usize,
    cache_reuses: usize,
    total_cut: u64,
    events: usize,
    heals: u64,
}

fn main() -> ExitCode {
    let opts = match Options::parse() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Blocks until the daemon at `addr` answers a `ping` — the readiness
/// probe that replaces sleep-and-hope startup waits.
fn wait_ready(addr: &str, attempts: u32) -> Result<(), String> {
    let mut last = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(50));
        }
        match Client::connect(addr).and_then(|mut probe| probe.ping()) {
            Ok(_) => return Ok(()),
            Err(e) => last = e.to_string(),
        }
    }
    Err(format!("daemon at {addr} never became ready: {last}"))
}

fn run(opts: &Options) -> Result<(), String> {
    let hosted = if opts.self_host {
        Some(
            Server::start(ServerConfig::default())
                .map_err(|e| format!("self-host bind failed: {e}"))?,
        )
    } else {
        None
    };
    let addr = match (&hosted, &opts.addr) {
        (Some(handle), _) => handle.local_addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => return Err("no address".to_string()),
    };
    // Probe the daemon directly (never through the chaos proxy): the
    // workload must not start before the daemon can answer.
    wait_ready(&addr, 100)?;

    let proxy = match opts.chaos {
        Some(seed) => {
            let upstream = addr
                .to_socket_addrs()
                .map_err(|e| format!("resolving {addr}: {e}"))?
                .next()
                .ok_or_else(|| format!("{addr} resolved to nothing"))?;
            Some(
                ChaosProxy::start(ChaosPlan::hostile(seed), upstream)
                    .map_err(|e| format!("chaos proxy bind failed: {e}"))?,
            )
        }
        None => None,
    };
    let dial_addr = proxy
        .as_ref()
        .map_or_else(|| addr.clone(), |p| p.local_addr().to_string());

    // One instance shared by every job, serialized once: the whole point
    // of the daemon is amortizing this.
    let instance = hypart_benchgen::mcnc_like(opts.cells, opts.seed);
    let mut hgr_text = Vec::new();
    hypart_hypergraph::io::hgr::write(&instance, &mut hgr_text)
        .map_err(|e| format!("serializing instance: {e}"))?;
    let hgr_text = String::from_utf8(hgr_text).map_err(|e| format!("non-utf8 hgr: {e}"))?;

    let clients = opts.clients.max(1);
    let per_client = opts.jobs.div_ceil(clients);
    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let cfg = WorkerCfg {
            addr: dial_addr.clone(),
            hgr_text: hgr_text.clone(),
            client_index: c as u64,
            jobs: per_client,
            budget_ms: opts.budget_ms,
            base_seed: opts.seed,
            retry: opts.chaos.map(|seed| RetryPolicy {
                max_attempts: 10,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(50),
                jitter_seed: derive_seed(seed, c as u64),
                read_timeout: Duration::from_secs(5),
            }),
            // Globally unique, replayable idempotency tokens: one
            // deterministic stream per client.
            token_base: opts.chaos.map(|seed| derive_seed(seed, 1000 + c as u64)),
        };
        handles.push(std::thread::spawn(move || client_worker(&cfg)));
    }
    let mut tally = Tally::default();
    for handle in handles {
        let part = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())??;
        tally.finished += part.finished;
        tally.rejected += part.rejected;
        tally.failed += part.failed;
        tally.cache_reuses += part.cache_reuses;
        tally.total_cut += part.total_cut;
        tally.events += part.events;
        tally.heals += part.heals;
    }
    let elapsed = start.elapsed();

    let mut reporter =
        Client::connect(&addr).map_err(|e| format!("stats connection failed: {e}"))?;
    let stats = reporter
        .stats()
        .map_err(|e| format!("stats op failed: {e}"))?;

    println!(
        "jobs:        {} finished, {} rejected, {} failed",
        tally.finished, tally.rejected, tally.failed
    );
    println!("traces:      {} events streamed", tally.events);
    println!(
        "cache:       {} hierarchy reuses seen by clients",
        tally.cache_reuses
    );
    println!(
        "daemon:      submitted {} completed {} shed {} errors {}",
        stats.submitted, stats.completed, stats.rejected_overload, stats.errors
    );
    println!(
        "instances:   {} hits / {} misses; hierarchies: {} hits / {} misses",
        stats.instance_hits, stats.instance_misses, stats.hierarchy_hits, stats.hierarchy_misses
    );
    if opts.chaos.is_some() {
        println!(
            "chaos:       {} client heals; daemon dedup {} stream-aborts {} watchdog {} oversized {}",
            tally.heals,
            stats.dedup_hits,
            stats.stream_aborted,
            stats.watchdog_cancelled,
            stats.rejected_too_large
        );
    }
    println!(
        "throughput:  {:.0} jobs/s over {:.2?}",
        tally.finished as f64 / elapsed.as_secs_f64().max(1e-9),
        elapsed
    );

    // Accounting invariant: every submitted job (the per-client upload
    // plus the workload) ended in exactly one outcome. Client threads
    // fail hard on transport errors, so a shortfall here means a lost
    // job — under chaos, that is the whole point of the exercise.
    let expected = clients * (per_client + 1);
    let total = tally.finished + tally.rejected + tally.failed;
    if total != expected {
        return Err(format!(
            "lost jobs: expected {expected} outcomes, saw {total}"
        ));
    }

    if opts.shutdown {
        reporter
            .shutdown()
            .map_err(|e| format!("shutdown op failed: {e}"))?;
        println!("daemon told to shut down");
    }
    if let Some(proxy) = proxy {
        proxy.shutdown();
    }
    if let Some(handle) = hosted {
        handle.shutdown();
    }
    Ok(())
}

/// Everything one client thread needs, bundled so the spawn site stays
/// readable.
struct WorkerCfg {
    addr: String,
    hgr_text: String,
    client_index: u64,
    jobs: usize,
    budget_ms: u64,
    base_seed: u64,
    retry: Option<RetryPolicy>,
    token_base: Option<u64>,
}

fn client_worker(cfg: &WorkerCfg) -> Result<Tally, String> {
    let mut client = match &cfg.retry {
        Some(policy) => Client::connect_with_retry(&cfg.addr, policy.clone())
            .map_err(|e| format!("connect failed: {e}"))?,
        None => Client::connect(&cfg.addr).map_err(|e| format!("connect failed: {e}"))?,
    };
    let token_for = |id: u64| cfg.token_base.map(|base| derive_seed(base, id));
    let mut tally = Tally::default();

    // Upload once, then re-query by digest.
    let mut first =
        PartitionRequest::new(1, InstanceRef::Inline(cfg.hgr_text.clone()), cfg.base_seed);
    first.include_assignment = true;
    first.request_token = token_for(1);
    client
        .send(&Request::Partition(first))
        .map_err(|e| format!("send failed: {e}"))?;
    let (digest, assignment) = match client
        .wait_outcome(1)
        .map_err(|e| format!("first job failed: {e}"))?
    {
        JobOutcome::Finished { result, .. } => {
            tally.finished += 1;
            tally.total_cut += result.cut;
            (result.digest, result.assignment.unwrap_or_default())
        }
        JobOutcome::Rejected { .. } => return Err("upload job was shed".to_string()),
        JobOutcome::Failed { code, detail } => return Err(format!("upload job: {code}: {detail}")),
    };

    for i in 0..cfg.jobs as u64 {
        let id = 2 + i;
        let seed = cfg.base_seed.wrapping_add(cfg.client_index * 1000 + i);
        // Mixed workload: mostly 2-way (some budgeted, some traced, the
        // traced ones hammering the hierarchy cache by reusing one
        // seed), some 4-way, some evals.
        let request = match i % 5 {
            0 => {
                let mut r = PartitionRequest::new(id, InstanceRef::Digest(digest), seed);
                r.budget_ms = Some(cfg.budget_ms);
                r.request_token = token_for(id);
                Request::Partition(r)
            }
            1 => {
                let mut r = PartitionRequest::new(id, InstanceRef::Digest(digest), cfg.base_seed);
                r.trace = true;
                r.request_token = token_for(id);
                Request::Partition(r)
            }
            2 => {
                let mut r = PartitionRequest::new(id, InstanceRef::Digest(digest), seed);
                r.k = 4;
                r.request_token = token_for(id);
                Request::Partition(r)
            }
            3 if !assignment.is_empty() => Request::Eval(EvalRequest {
                id,
                instance: InstanceRef::Digest(digest),
                assignment: assignment.clone(),
                k: 2,
                fraction: 0.1,
                request_token: token_for(id),
            }),
            _ => {
                let mut r = PartitionRequest::new(id, InstanceRef::Digest(digest), seed);
                r.request_token = token_for(id);
                Request::Partition(r)
            }
        };
        client
            .send(&request)
            .map_err(|e| format!("send failed: {e}"))?;
        match client
            .wait_outcome(id)
            .map_err(|e| format!("job {id} failed: {e}"))?
        {
            JobOutcome::Finished { result, events } => {
                tally.finished += 1;
                tally.total_cut += result.cut;
                tally.events += events.len();
                if result.hierarchy_reused {
                    tally.cache_reuses += 1;
                }
            }
            JobOutcome::Rejected { .. } => tally.rejected += 1,
            JobOutcome::Failed { .. } => tally.failed += 1,
        }
    }
    tally.heals = client.retries();
    Ok(tally)
}
