//! A bounded MPMC work queue with explicit overload shedding.
//!
//! Submissions never block and never grow the queue past its capacity:
//! [`BoundedQueue::try_push`] either admits the job or returns it with
//! the observed depth, which the daemon turns into a typed 429-style
//! rejection. Workers block on [`BoundedQueue::pop`] and drain remaining
//! jobs after [`BoundedQueue::close`], so a graceful shutdown finishes
//! admitted work without accepting more.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Rejection payload of a full queue: the item is handed back so the
/// caller can answer the submitter.
#[derive(Debug)]
pub struct QueueFull<T> {
    /// The rejected item.
    pub item: T,
    /// Queue depth at rejection time (== capacity).
    pub depth: usize,
}

/// The bounded queue. All methods take `&self`; share via `Arc`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` queued items
    /// (capacity is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The shedding threshold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; for stats and rejection payloads).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Admits `item` unless the queue is full or closed; never blocks.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] carrying the item back, with the observed depth. A
    /// closed queue rejects with depth `usize::MAX` as a sentinel (the
    /// daemon is shutting down; the caller answers accordingly).
    pub fn try_push(&self, item: T) -> Result<usize, QueueFull<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(QueueFull {
                item,
                depth: usize::MAX,
            });
        }
        if state.items.len() >= self.capacity {
            let depth = state.items.len();
            return Err(QueueFull { item, depth });
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, returning `None` only in the latter case — pending
    /// work admitted before [`close`](BoundedQueue::close) is always
    /// delivered.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: subsequent pushes are rejected, blocked workers
    /// wake, and `pop` returns `None` once the backlog drains.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_at_capacity_and_returns_depth() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        let full = q.try_push(3).unwrap_err();
        assert_eq!(full.item, 3);
        assert_eq!(full.depth, 2);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_backlog_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.try_push(3).is_err());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cross_thread_fifo() {
        let q = Arc::new(BoundedQueue::new(64));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = q.pop() {
                    got.push(x);
                }
                got
            })
        };
        for i in 0..50 {
            while q.try_push(i).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..50).collect::<Vec<i32>>());
    }
}
