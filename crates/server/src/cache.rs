//! Instance and hierarchy caches.
//!
//! The service's traffic shape (the ROADMAP north star) is heavy query
//! volume over *few* netlists: the same instance partitioned again and
//! again under different balance constraints, part counts, and budgets.
//! Two cache layers exploit that:
//!
//! * the **instance cache** maps a content digest
//!   ([`Hypergraph::content_digest`]) to the parsed CSR, so repeat jobs
//!   skip parsing and share one immutable `Arc<Hypergraph>`;
//! * the **hierarchy cache** maps `(digest, coarsening config, seed)` to
//!   a frozen [`SharedHierarchy`], so a re-query with a new balance or
//!   `k` pays only initial partitioning + refinement. The key includes
//!   the seed because the hierarchy is a pure function of
//!   `(instance, config, seed)` — a hit is *bitwise* the hierarchy a
//!   fresh build would produce, which is what keeps cache hits
//!   trace-equivalent to cold runs (modulo the leading
//!   `hierarchy_reused` event).
//!
//! Both caches are bounded FIFO maps: small, predictable, and free of
//! clock-driven eviction so behavior stays deterministic under test.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hypart_core::SharedHierarchy;
use hypart_hypergraph::Hypergraph;
use hypart_ml::coarsen::{CoarsenConfig, CoarsenScheme};

struct FifoMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V: Clone> FifoMap<K, V> {
    fn new(capacity: usize) -> Self {
        FifoMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get(&self, key: &K) -> Option<V> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: K, value: V) {
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Digest-keyed cache of parsed instances. Hit/miss counters are
/// monotonically increasing and exposed through the `stats` op.
pub struct InstanceCache {
    inner: Mutex<FifoMap<u128, Arc<Hypergraph>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl InstanceCache {
    /// Creates a cache retaining at most `capacity` instances (FIFO).
    pub fn new(capacity: usize) -> Self {
        InstanceCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks an instance up by digest, counting a hit or miss.
    pub fn get(&self, digest: u128) -> Option<Arc<Hypergraph>> {
        let found = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&digest);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Registers a freshly parsed instance under its digest.
    pub fn insert(&self, digest: u128, h: Arc<Hypergraph>) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(digest, h);
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of instances currently retained (for the `ping` health
    /// snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The hierarchy-cache key: instance digest plus every knob the
/// hierarchy depends on. `CoarsenConfig` carries `f64` fields, so the
/// key stores their IEEE bit patterns — exact equality, no float
/// comparison pitfalls (a NaN-configured cache key would simply never
/// hit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HierarchyKey {
    digest: u128,
    scheme: u8,
    stop_size: usize,
    shrink_bits: u64,
    max_net_size: usize,
    cap_bits: u64,
    seed: u64,
}

impl HierarchyKey {
    /// Builds the key for `(digest, config, seed)`.
    pub fn new(digest: u128, config: &CoarsenConfig, seed: u64) -> Self {
        HierarchyKey {
            digest,
            scheme: match config.scheme {
                CoarsenScheme::FirstChoice => 0,
                CoarsenScheme::HeavyEdge => 1,
            },
            stop_size: config.stop_size,
            shrink_bits: config.shrink_threshold.to_bits(),
            max_net_size: config.max_net_size_for_matching,
            cap_bits: config.cluster_cap_multiple.to_bits(),
            seed,
        }
    }
}

/// `(digest, coarsening config, seed)`-keyed cache of frozen coarsening
/// hierarchies.
pub struct HierarchyCache {
    inner: Mutex<FifoMap<HierarchyKey, SharedHierarchy>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl HierarchyCache {
    /// Creates a cache retaining at most `capacity` hierarchies (FIFO).
    pub fn new(capacity: usize) -> Self {
        HierarchyCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks a hierarchy up, counting a hit or miss. Concurrent misses
    /// for the same key may each build the hierarchy; both builds are
    /// bitwise identical (pure function of the key), so last-insert-wins
    /// is harmless.
    pub fn get(&self, key: &HierarchyKey) -> Option<SharedHierarchy> {
        let found = self
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Registers a freshly built hierarchy.
    pub fn insert(&self, key: HierarchyKey, hierarchy: SharedHierarchy) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, hierarchy);
    }

    /// Cumulative hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cumulative miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of hierarchies currently retained (for the `ping` health
    /// snapshot).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use hypart_core::Hierarchy;

    fn toy_graph(n: usize) -> Arc<Hypergraph> {
        let mut b = hypart_hypergraph::HypergraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|_| b.add_vertex(1)).collect();
        for w in vs.windows(2) {
            b.add_net([w[0], w[1]], 1).unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn instance_cache_hits_and_evicts_fifo() {
        let cache = InstanceCache::new(2);
        let (a, b, c) = (toy_graph(3), toy_graph(4), toy_graph(5));
        let (da, db, dc) = (a.content_digest(), b.content_digest(), c.content_digest());
        assert!(cache.get(da).is_none());
        cache.insert(da, Arc::clone(&a));
        cache.insert(db, Arc::clone(&b));
        assert!(cache.get(da).is_some());
        assert!(cache.get(db).is_some());
        cache.insert(dc, Arc::clone(&c)); // evicts the oldest (a)
        assert!(cache.get(da).is_none());
        assert!(cache.get(dc).is_some());
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn hierarchy_key_distinguishes_every_knob() {
        let base = CoarsenConfig::default();
        let k0 = HierarchyKey::new(1, &base, 7);
        assert_eq!(k0, HierarchyKey::new(1, &base, 7));
        assert_ne!(k0, HierarchyKey::new(2, &base, 7));
        assert_ne!(k0, HierarchyKey::new(1, &base, 8));
        let mut cfg = base;
        cfg.scheme = CoarsenScheme::HeavyEdge;
        assert_ne!(k0, HierarchyKey::new(1, &cfg, 7));
        let mut cfg = base;
        cfg.stop_size += 1;
        assert_ne!(k0, HierarchyKey::new(1, &cfg, 7));
        let mut cfg = base;
        cfg.shrink_threshold += 0.01;
        assert_ne!(k0, HierarchyKey::new(1, &cfg, 7));
        let mut cfg = base;
        cfg.cluster_cap_multiple += 0.5;
        assert_ne!(k0, HierarchyKey::new(1, &cfg, 7));
    }

    #[test]
    fn hierarchy_cache_round_trips() {
        let cache = HierarchyCache::new(4);
        let key = HierarchyKey::new(9, &CoarsenConfig::default(), 3);
        assert!(cache.get(&key).is_none());
        cache.insert(key, Hierarchy::new(Vec::new()).into_shared());
        let hit = cache.get(&key).unwrap();
        assert!(hit.is_empty());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
