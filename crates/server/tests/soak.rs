//! Daemon soak: ≥1000 mixed concurrent jobs over many client threads,
//! zero leaked threads after shutdown, audit-clean results, per-job
//! trace determinism across clients, measurable hierarchy-cache reuse,
//! and deterministic overload shedding with queue-depth payloads.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hypart_server::protocol::{EvalRequest, InstanceRef, PartitionRequest, Request};
use hypart_server::{Client, JobOutcome, Server, ServerConfig};
use hypart_trace::{RunEvent, StopReason};

const CLIENTS: usize = 8;
const JOBS_PER_CLIENT: usize = 130; // 8 × 130 = 1040 ≥ 1000
const BATCH: usize = 10; // in-flight jobs per client; 8 × 10 ≤ queue capacity

fn hgr_text(cells: usize, seed: u64) -> String {
    let h = hypart_benchgen::mcnc_like(cells, seed);
    let mut text = Vec::new();
    hypart_hypergraph::io::hgr::write(&h, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

/// Thread count of this process from `/proc/self/status`; `None` off
/// Linux (the leak assertion is then skipped).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// What one client observed, to be cross-checked against the others.
struct ClientReport {
    finished: usize,
    cancelled: usize,
    reuse_seen: usize,
    /// Trace of the fixed traced job (same digest/seed/fraction on every
    /// client), with any leading `hierarchy_reused` stripped — must be
    /// identical across all clients and all repeats.
    canonical_trace: Vec<String>,
    eval_matches: usize,
}

fn client_worker(addr: std::net::SocketAddr, client_idx: usize) -> ClientReport {
    let mut client = Client::connect(addr).unwrap();
    let mut report = ClientReport {
        finished: 0,
        cancelled: 0,
        reuse_seen: 0,
        canonical_trace: Vec::new(),
        eval_matches: 0,
    };

    // Upload the shared instance inline once; all clients upload the same
    // content, so they converge on one digest (and later jobs go by it).
    let mut seeded = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(140, 0xD00D)), 17);
    seeded.include_assignment = true;
    client.send(&Request::Partition(seeded)).unwrap();
    let (digest, saved_assignment) = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, .. } => (result.digest, result.assignment.unwrap()),
        other => panic!("client {client_idx}: upload job failed: {other:?}"),
    };
    report.finished += 1;
    let saved_cut = {
        // Re-derive the reference cut via eval so the mixed-job check
        // below has a self-consistent expectation.
        client
            .send(&Request::Eval(EvalRequest {
                id: 2,
                instance: InstanceRef::Digest(digest),
                assignment: saved_assignment.clone(),
                k: 2,
                fraction: 0.1,
                request_token: None,
            }))
            .unwrap();
        match client.wait_outcome(2).unwrap() {
            JobOutcome::Finished { result, .. } => {
                report.finished += 1;
                result.cut
            }
            other => panic!("client {client_idx}: reference eval failed: {other:?}"),
        }
    };

    let mut next_id: u64 = 10;
    let mut in_flight: Vec<(u64, u8)> = Vec::new();
    let mut launched = 2usize;
    while launched < JOBS_PER_CLIENT {
        while in_flight.len() < BATCH && launched < JOBS_PER_CLIENT {
            let id = next_id;
            next_id += 1;
            let kind = (launched % 5) as u8;
            match kind {
                0 => {
                    // Budgeted 2-way sweep with a tiny budget.
                    let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 17 + id);
                    req.budget_ms = Some(8);
                    client.send(&Request::Partition(req)).unwrap();
                }
                1 => {
                    // The canonical traced job: same digest, same seed,
                    // same fraction on every client — the cache hammer.
                    let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 17);
                    req.trace = true;
                    client.send(&Request::Partition(req)).unwrap();
                }
                2 => {
                    // 4-way recursive bisection.
                    let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 29 + id);
                    req.k = 4;
                    client.send(&Request::Partition(req)).unwrap();
                }
                3 => {
                    // Eval of the saved assignment: fixed expected cut.
                    client
                        .send(&Request::Eval(EvalRequest {
                            id,
                            instance: InstanceRef::Digest(digest),
                            assignment: saved_assignment.clone(),
                            k: 2,
                            fraction: 0.1,
                            request_token: None,
                        }))
                        .unwrap();
                }
                _ => {
                    // Plain 2-way, fresh seed each time.
                    let req = PartitionRequest::new(id, InstanceRef::Digest(digest), 1000 + id);
                    client.send(&Request::Partition(req)).unwrap();
                }
            }
            in_flight.push((id, kind));
            launched += 1;
        }
        for (id, kind) in in_flight.drain(..) {
            match client.wait_outcome(id).unwrap() {
                JobOutcome::Finished { result, events } => {
                    report.finished += 1;
                    assert!(
                        result.audit_clean,
                        "client {client_idx} job {id}: audit failure"
                    );
                    assert_eq!(result.digest, digest);
                    match kind {
                        0 => {
                            assert!(result.starts >= 1);
                            assert!(matches!(
                                result.stopped,
                                StopReason::Completed | StopReason::Deadline
                            ));
                        }
                        1 => {
                            if result.hierarchy_reused {
                                report.reuse_seen += 1;
                                assert!(matches!(
                                    events.first(),
                                    Some(RunEvent::HierarchyReused { .. })
                                ));
                            }
                            let stripped: Vec<String> = events
                                .iter()
                                .filter(|e| !matches!(e, RunEvent::HierarchyReused { .. }))
                                .map(|e| format!("{e:?}"))
                                .collect();
                            assert!(!stripped.is_empty());
                            if report.canonical_trace.is_empty() {
                                report.canonical_trace = stripped;
                            } else {
                                assert_eq!(
                                    report.canonical_trace, stripped,
                                    "client {client_idx} job {id}: canonical trace drifted"
                                );
                            }
                        }
                        2 => assert!(result.cut > 0 || result.balanced),
                        3 => {
                            assert_eq!(result.cut, saved_cut);
                            report.eval_matches += 1;
                        }
                        _ => assert_eq!(result.stopped, StopReason::Completed),
                    }
                }
                JobOutcome::Rejected { .. } => {
                    panic!("client {client_idx} job {id}: shed despite sized batches")
                }
                JobOutcome::Failed { code, detail } => {
                    panic!("client {client_idx} job {id}: {code}: {detail}")
                }
            }
        }
    }

    // One cooperative cancellation per client: submit with a long budget,
    // cancel immediately; either the cancel lands in time (result says
    // `cancelled`) or the job won the race and completed — both legal,
    // but the connection must stay coherent through it.
    let id = next_id;
    let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 999);
    req.budget_ms = Some(30_000);
    client.send(&Request::Partition(req)).unwrap();
    let _ = client.cancel(id).unwrap();
    match client.wait_outcome(id).unwrap() {
        JobOutcome::Finished { result, .. } => {
            report.finished += 1;
            if result.stopped == StopReason::Cancelled {
                report.cancelled += 1;
            }
        }
        other => panic!("client {client_idx}: cancel-race job failed: {other:?}"),
    }

    report
}

#[test]
fn soak_thousand_mixed_jobs_with_cache_reuse_and_clean_shutdown() {
    let baseline_threads = os_thread_count();

    let config = ServerConfig {
        workers: 4,
        queue_capacity: 128,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|i| std::thread::spawn(move || client_worker(addr, i)))
        .collect();
    let reports: Vec<ClientReport> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    let total_finished: usize = reports.iter().map(|r| r.finished).sum();
    assert!(
        total_finished >= 1000,
        "soak must complete ≥1000 jobs, got {total_finished}"
    );
    let total_reuse: usize = reports.iter().map(|r| r.reuse_seen).sum();
    assert!(
        total_reuse >= CLIENTS,
        "the repeated (digest, seed) job must hit the hierarchy cache, saw {total_reuse}"
    );
    let evals: usize = reports.iter().map(|r| r.eval_matches).sum();
    assert!(evals >= CLIENTS * (JOBS_PER_CLIENT / 5 - 1));

    // Trace determinism ACROSS clients: every canonical trace is the
    // same event stream regardless of which worker ran it or whether the
    // hierarchy came from the cache.
    let reference = &reports[0].canonical_trace;
    assert!(!reference.is_empty());
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            &r.canonical_trace, reference,
            "client {i}'s canonical trace diverged from client 0's"
        );
    }

    // Daemon-side accounting agrees.
    let mut probe = Client::connect(addr).unwrap();
    let stats = probe.stats().unwrap();
    assert!(
        stats.completed >= 1000,
        "daemon completed {}",
        stats.completed
    );
    assert_eq!(stats.rejected_overload, 0, "sized batches must not shed");
    assert!(stats.hierarchy_hits >= CLIENTS as u64);
    assert!(
        stats.instance_hits >= (CLIENTS - 1) as u64,
        "clients after the first re-upload the same content"
    );
    drop(probe);

    server.shutdown();

    // Zero leaked threads: give the OS a beat to reap, then compare.
    if let Some(baseline) = baseline_threads {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let now = os_thread_count().unwrap();
            if now <= baseline {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "threads leaked after shutdown: baseline {baseline}, now {now}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Overload shedding is typed and carries the live queue depth: with one
/// stalled worker and a two-slot queue, a burst of submissions must see
/// `Rejected { queue_depth, queue_capacity }` frames, and the daemon
/// counts them.
#[test]
fn overload_sheds_with_queue_depth_payload() {
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 2,
        worker_delay_ms: 120,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let text = hgr_text(60, 0xFEED);
    let burst = 8u64;
    for id in 1..=burst {
        let req = PartitionRequest::new(id, InstanceRef::Inline(text.clone()), id);
        client.send(&Request::Partition(req)).unwrap();
    }

    let mut finished = 0usize;
    let mut shed = 0usize;
    for id in 1..=burst {
        match client.wait_outcome(id).unwrap() {
            JobOutcome::Finished { result, .. } => {
                finished += 1;
                assert!(result.audit_clean);
            }
            JobOutcome::Rejected {
                queue_depth,
                queue_capacity,
            } => {
                shed += 1;
                assert_eq!(queue_capacity, 2);
                assert!(
                    queue_depth >= 1 && queue_depth <= queue_capacity,
                    "rejection must report the live depth, got {queue_depth}"
                );
            }
            JobOutcome::Failed { code, detail } => panic!("job {id}: {code}: {detail}"),
        }
    }
    assert!(
        shed >= 1,
        "a 2-slot queue with a 120 ms worker stall must shed"
    );
    assert!(finished >= 1, "accepted jobs still run to completion");
    assert_eq!(finished + shed, burst as usize);

    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_overload, shed as u64);
    server.shutdown();
}
