//! Chaos soak: hundreds of mixed jobs driven through the deterministic
//! chaos proxy by a self-healing client, plus targeted tests for the
//! robustness features it leans on — idempotent replay, the watchdog,
//! and declared-size admission control.
//!
//! The headline assertions mirror the in-process fault-injection suite:
//! every job ends in exactly one terminal outcome, the whole run is
//! bitwise-reproducible from `(seed, plan)`, and no OS thread outlives
//! the harness.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::time::Duration;

use hypart_core::derive_seed;
use hypart_server::chaos::{ChaosPlan, ChaosProxy};
use hypart_server::protocol::{EvalRequest, InstanceRef, PartitionRequest, Request};
use hypart_server::{Client, JobOutcome, RetryPolicy, Server, ServerConfig};
use hypart_trace::StopReason;

const CHAOS_SEED: u64 = 0xC0FFEE;
const SOAK_JOBS: u64 = 500;

fn hgr_text(cells: usize, seed: u64) -> String {
    let h = hypart_benchgen::mcnc_like(cells, seed);
    let mut text = Vec::new();
    hypart_hypergraph::io::hgr::write(&h, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

/// Thread count of this process from `/proc/self/status`; `None` off
/// Linux (the leak assertion is then skipped).
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("Threads:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A compact, comparable fingerprint of one job's terminal outcome.
fn outcome_key(id: u64, outcome: &JobOutcome) -> String {
    match outcome {
        JobOutcome::Finished { result, .. } => format!(
            "{id}:finished:{}:{}:{}:{:?}",
            result.cut, result.balanced, result.audit_clean, result.stopped
        ),
        JobOutcome::Rejected { .. } => format!("{id}:rejected"),
        JobOutcome::Failed { code, .. } => format!("{id}:failed:{code}"),
    }
}

struct SoakRun {
    outcomes: Vec<String>,
    finished_clean: usize,
    client_retries: u64,
    dedup_hits: u64,
    hierarchy_hits: u64,
}

/// One full soak: daemon + seeded proxy + one self-healing client
/// pushing `SOAK_JOBS` mixed jobs through the hostile plan, one at a
/// time (so every outcome is a pure function of its request and the
/// run is comparable across reruns).
fn run_soak(seed: u64) -> SoakRun {
    let server = Server::start(ServerConfig {
        workers: 2,
        queue_capacity: 64,
        ..ServerConfig::default()
    })
    .unwrap();
    let proxy = ChaosProxy::start(ChaosPlan::hostile(seed), server.local_addr()).unwrap();

    let policy = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        jitter_seed: seed,
        // Short enough that a scripted stall or a lost response heals
        // quickly, long enough for any real job to answer.
        read_timeout: Duration::from_secs(2),
    };
    let mut client = Client::connect_with_retry(&proxy.local_addr().to_string(), policy).unwrap();

    // Upload the instance (token-stamped like everything else: the
    // upload itself may be torn mid-frame and resubmitted).
    let mut upload = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(120, 0xD00D)), 17);
    upload.include_assignment = true;
    upload.request_token = Some(derive_seed(seed, 1));
    client.send(&Request::Partition(upload)).unwrap();
    let (digest, assignment) = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, .. } => (result.digest, result.assignment.unwrap()),
        other => panic!("upload failed: {other:?}"),
    };

    let mut outcomes = Vec::with_capacity(SOAK_JOBS as usize);
    let mut finished_clean = 0usize;
    for i in 0..SOAK_JOBS {
        let id = 10 + i;
        // The token is a pure function of (chaos seed, job id): reruns
        // stamp identical tokens, and a resubmission after a fault
        // carries the same token as the original.
        let token = Some(derive_seed(seed, id));
        let request = match i % 4 {
            0 => {
                // Plain 2-way, fresh seed per job.
                let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 1000 + id);
                req.request_token = token;
                Request::Partition(req)
            }
            1 => {
                // The fixed traced job: hammers the hierarchy cache.
                let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 17);
                req.trace = true;
                req.request_token = token;
                Request::Partition(req)
            }
            2 => {
                // 4-way recursive bisection.
                let mut req = PartitionRequest::new(id, InstanceRef::Digest(digest), 29 + id);
                req.k = 4;
                req.request_token = token;
                Request::Partition(req)
            }
            _ => Request::Eval(EvalRequest {
                id,
                instance: InstanceRef::Digest(digest),
                assignment: assignment.clone(),
                k: 2,
                fraction: 0.1,
                request_token: token,
            }),
        };
        client.send(&request).unwrap();
        let outcome = client.wait_outcome(id).unwrap();
        if let JobOutcome::Finished { result, .. } = &outcome {
            if result.audit_clean && result.stopped == StopReason::Completed {
                finished_clean += 1;
            }
        }
        outcomes.push(outcome_key(id, &outcome));
    }

    // Counter evidence straight from the daemon, bypassing the proxy.
    let mut probe = Client::connect(server.local_addr()).unwrap();
    let stats = probe.stats().unwrap();
    let client_retries = client.retries();
    drop(client);
    drop(probe);
    proxy.shutdown();
    server.shutdown();

    SoakRun {
        outcomes,
        finished_clean,
        client_retries,
        dedup_hits: stats.dedup_hits,
        hierarchy_hits: stats.hierarchy_hits,
    }
}

#[test]
fn chaos_soak_heals_every_fault_and_replays_bitwise() {
    let baseline_threads = os_thread_count();

    let first = run_soak(CHAOS_SEED);
    assert_eq!(
        first.outcomes.len(),
        SOAK_JOBS as usize,
        "every job must end in exactly one terminal outcome"
    );
    // The hostile plan disconnects a third of all connections, so the
    // client must actually have healed, and resubmissions must have
    // been deduplicated rather than recomputed.
    assert!(
        first.client_retries >= 1,
        "pinned plan must force at least one heal, saw {}",
        first.client_retries
    );
    assert!(
        first.dedup_hits >= 1,
        "resubmitted tokens must hit the dedup path, saw {}",
        first.dedup_hits
    );
    assert!(
        first.hierarchy_hits >= 1,
        "the repeated traced job must reuse its hierarchy"
    );
    // The overwhelming majority of jobs must come back as clean audited
    // results (scripted corruption may turn a few into typed errors).
    assert!(
        first.finished_clean >= (SOAK_JOBS as usize) * 9 / 10,
        "only {}/{SOAK_JOBS} jobs finished clean",
        first.finished_clean
    );

    // Replayability: the same (seed, plan) reproduces the same faults
    // and therefore bitwise the same outcome for every single job.
    let second = run_soak(CHAOS_SEED);
    assert_eq!(
        first.outcomes, second.outcomes,
        "rerun of the same (seed, plan) must be bitwise identical"
    );

    // Zero leaked threads once both runs are fully torn down.
    if let Some(baseline) = baseline_threads {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let now = os_thread_count().unwrap();
            if now <= baseline {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "threads leaked: baseline {baseline}, now {now}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// The dedup contract in isolation (no proxy): a token resubmitted
/// after completion is answered from the outcome cache — same result,
/// `dedup_hits` evidence, and no second execution (`submitted` does not
/// move) — and a fresh same-seed job shows the `hierarchy_reused`
/// cache path is live.
#[test]
fn idempotent_retry_replays_cached_outcome_without_recompute() {
    let server = Server::start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let mut original = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(100, 7)), 23);
    original.request_token = Some(0xBEEF);
    client.send(&Request::Partition(original.clone())).unwrap();
    let first = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, .. } => result,
        other => panic!("original failed: {other:?}"),
    };
    let submitted_before = client.stats().unwrap().submitted;

    // Simulate the client crashing and retrying from scratch: new
    // connection, same token, different job id.
    drop(client);
    let mut retry_client = Client::connect(addr).unwrap();
    let mut retried = original;
    retried.id = 99;
    retry_client.send(&Request::Partition(retried)).unwrap();
    let replayed = match retry_client.wait_outcome(99).unwrap() {
        JobOutcome::Finished { result, .. } => result,
        other => panic!("replay failed: {other:?}"),
    };
    assert_eq!(first, replayed, "replay must be the cached result, bitwise");

    let stats = retry_client.stats().unwrap();
    assert_eq!(
        stats.submitted, submitted_before,
        "a deduplicated retry must not be admitted as a new job"
    );
    assert!(stats.dedup_hits >= 1, "replay must count as a dedup hit");

    // The sibling cache path: a *fresh* job with the same (digest,
    // config, seed) reuses the hierarchy the original built and says so
    // in its trace.
    let mut fresh = PartitionRequest::new(100, InstanceRef::Digest(first.digest), 23);
    fresh.trace = true;
    retry_client.send(&Request::Partition(fresh)).unwrap();
    match retry_client.wait_outcome(100).unwrap() {
        JobOutcome::Finished { result, events } => {
            assert!(result.hierarchy_reused, "same-key job must hit the cache");
            assert!(matches!(
                events.first(),
                Some(hypart_trace::RunEvent::HierarchyReused { .. })
            ));
            assert_eq!(result.cut, first.cut);
        }
        other => panic!("fresh same-seed job failed: {other:?}"),
    }
    server.shutdown();
}

/// The watchdog force-cancels a job that overshoots its budget (here: a
/// worker stalled artificially for far longer than `budget_ms *
/// factor`) and answers with the typed `watchdog_cancelled` error.
#[test]
fn watchdog_force_cancels_overshooting_jobs() {
    let server = Server::start(ServerConfig {
        workers: 1,
        watchdog_factor: 2.0,
        watchdog_poll_ms: 5,
        // The stall happens after watchdog registration, so it models a
        // job hanging past its budget.
        worker_delay_ms: 300,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut req = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(80, 3)), 5);
    req.budget_ms = Some(10); // overshoot deadline = 20 ms « 300 ms stall
    client.send(&Request::Partition(req)).unwrap();
    match client.wait_outcome(1).unwrap() {
        JobOutcome::Failed { code, .. } => assert_eq!(code, "watchdog_cancelled"),
        other => panic!("expected watchdog_cancelled, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.watchdog_cancelled >= 1);

    // An unbudgeted job on the same daemon is untouched by the watchdog.
    let req = PartitionRequest::new(2, InstanceRef::Inline(hgr_text(80, 3)), 5);
    client.send(&Request::Partition(req)).unwrap();
    match client.wait_outcome(2).unwrap() {
        JobOutcome::Finished { result, .. } => assert!(result.audit_clean),
        other => panic!("unbudgeted job failed: {other:?}"),
    }
    server.shutdown();
}

/// Declared-size admission control rejects an oversized instance from
/// its header alone — typed `rejected_too_large`, before parsing.
#[test]
fn oversized_declared_instance_is_rejected_before_parse() {
    let server = Server::start(ServerConfig {
        max_cells: 1000,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // The header declares a million vertices; the body is absent, which
    // would be a parse error — proving rejection happened first.
    let huge = "% comment\n5 1000000\n".to_string();
    let req = PartitionRequest::new(1, InstanceRef::Inline(huge), 1);
    client.send(&Request::Partition(req)).unwrap();
    match client.wait_outcome(1).unwrap() {
        JobOutcome::Failed { code, detail } => {
            assert_eq!(code, "rejected_too_large");
            assert!(
                detail.contains("1000000"),
                "detail carries the counts: {detail}"
            );
        }
        other => panic!("expected rejected_too_large, got {other:?}"),
    }

    // Within bounds: admitted and parsed as usual.
    let req = PartitionRequest::new(2, InstanceRef::Inline(hgr_text(100, 9)), 1);
    client.send(&Request::Partition(req)).unwrap();
    match client.wait_outcome(2).unwrap() {
        JobOutcome::Finished { result, .. } => assert!(result.audit_clean),
        other => panic!("in-bounds job failed: {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(stats.rejected_too_large, 1);
    server.shutdown();
}

/// The `ping` op answers with a live health snapshot and works as a
/// readiness probe through a self-healing client.
#[test]
fn ping_reports_health_and_serves_as_readiness_probe() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let mut client =
        Client::connect_with_retry(&server.local_addr().to_string(), RetryPolicy::default())
            .unwrap();

    let health = client.ping().unwrap();
    assert_eq!(health.queue_depth, 0);
    assert!(health.queue_capacity > 0);
    assert_eq!(health.instances_cached, 0);

    // Run one cached job; the snapshot must reflect it.
    let mut req = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(80, 2)), 3);
    req.request_token = Some(42);
    client.send(&Request::Partition(req)).unwrap();
    match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { .. } => {}
        other => panic!("job failed: {other:?}"),
    }
    let health = client.ping().unwrap();
    assert_eq!(health.instances_cached, 1);
    assert_eq!(health.hierarchies_cached, 1);
    assert_eq!(health.tokens_cached, 1);
    server.shutdown();
}
