//! Edge-case coverage for the framing layer: `read_frame` (and through
//! it `read_exact_retry`) against interrupted syscalls, read timeouts
//! before vs inside a frame, torn streams, and payloads at the frame
//! cap boundary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::VecDeque;
use std::io::Read;

use hypart_server::protocol::{is_timeout, read_frame, FrameError};

/// One scripted reader step: deliver bytes, or fail with an error kind.
enum Step {
    Data(Vec<u8>),
    Fail(std::io::ErrorKind),
}

/// A `Read` impl that replays a fixed script, after which it reports
/// clean EOF. Each `Data` step is delivered as one `read` return (the
/// chunking is part of the script).
struct Scripted {
    steps: VecDeque<Step>,
}

impl Scripted {
    fn new(steps: Vec<Step>) -> Self {
        Scripted {
            steps: steps.into(),
        }
    }
}

impl Read for Scripted {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.steps.pop_front() {
            None => Ok(0),
            Some(Step::Fail(kind)) => Err(std::io::Error::new(kind, "scripted")),
            Some(Step::Data(mut bytes)) => {
                let n = bytes.len().min(buf.len());
                buf[..n].copy_from_slice(&bytes[..n]);
                if n < bytes.len() {
                    bytes.drain(..n);
                    self.steps.push_front(Step::Data(bytes));
                }
                Ok(n)
            }
        }
    }
}

/// A length-prefixed frame around the given JSON text.
fn frame(text: &str) -> Vec<u8> {
    let mut bytes = (u32::try_from(text.len()).unwrap()).to_be_bytes().to_vec();
    bytes.extend_from_slice(text.as_bytes());
    bytes
}

const CAP: usize = 1 << 16;

#[test]
fn interrupted_mid_frame_is_ridden_out() {
    // Interruptions scattered through the prefix and the payload must
    // all be transparent.
    let bytes = frame("{\"op\":\"stats\"}");
    let mut steps = vec![Step::Data(bytes[..1].to_vec())];
    for b in &bytes[1..] {
        steps.push(Step::Fail(std::io::ErrorKind::Interrupted));
        steps.push(Step::Data(vec![*b]));
    }
    let value = read_frame(&mut Scripted::new(steps), CAP).unwrap().unwrap();
    assert_eq!(
        value.get("op").and_then(|v| v.as_str()),
        Some("stats"),
        "interrupted reads must not lose or reorder bytes"
    );
}

#[test]
fn timeout_before_first_byte_surfaces_as_timeout() {
    // Idle timeout at a frame boundary: the caller's poll signal.
    let steps = vec![Step::Fail(std::io::ErrorKind::WouldBlock)];
    match read_frame(&mut Scripted::new(steps), CAP) {
        Err(FrameError::Io(e)) => assert!(is_timeout(&e), "expected a timeout kind, got {e:?}"),
        other => panic!("expected an Io timeout, got {other:?}"),
    }
}

#[test]
fn timeout_mid_frame_is_ridden_out() {
    // Once a frame has started, timeouts (WouldBlock and TimedOut alike)
    // must NOT surface — a slow writer is not a desynchronized stream.
    let bytes = frame("{\"op\":\"ping\"}");
    let steps = vec![
        Step::Data(bytes[..3].to_vec()), // partial length prefix
        Step::Fail(std::io::ErrorKind::WouldBlock),
        Step::Data(bytes[3..7].to_vec()), // rest of prefix + payload start
        Step::Fail(std::io::ErrorKind::TimedOut),
        Step::Data(bytes[7..].to_vec()),
    ];
    let value = read_frame(&mut Scripted::new(steps), CAP).unwrap().unwrap();
    assert_eq!(value.get("op").and_then(|v| v.as_str()), Some("ping"));
}

#[test]
fn eof_at_boundary_is_clean_but_mid_frame_is_an_error() {
    // Clean EOF before any byte: Ok(None).
    assert!(read_frame(&mut Scripted::new(Vec::new()), CAP)
        .unwrap()
        .is_none());
    // EOF after a partial frame: UnexpectedEof, never Ok(None) — the
    // client maps this distinction to `Disconnected { mid_frame }`.
    let bytes = frame("{\"op\":\"stats\"}");
    for cut in [1, 3, 4, 9] {
        let steps = vec![Step::Data(bytes[..cut].to_vec())];
        match read_frame(&mut Scripted::new(steps), CAP) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected UnexpectedEof, got {other:?}"),
        }
    }
}

#[test]
fn payload_exactly_at_cap_is_accepted() {
    // A JSON string payload padded to exactly CAP bytes.
    let text = format!("\"{}\"", "a".repeat(CAP - 2));
    assert_eq!(text.len(), CAP);
    let steps = vec![Step::Data(frame(&text))];
    let value = read_frame(&mut Scripted::new(steps), CAP).unwrap().unwrap();
    assert_eq!(value.as_str().map(str::len), Some(CAP - 2));
}

#[test]
fn payload_one_past_cap_is_rejected_without_reading_it() {
    let text = format!("\"{}\"", "a".repeat(CAP - 1));
    assert_eq!(text.len(), CAP + 1);
    let steps = vec![Step::Data(frame(&text))];
    let mut reader = Scripted::new(steps);
    match read_frame(&mut reader, CAP) {
        Err(FrameError::TooLarge { declared, max }) => {
            assert_eq!(declared, CAP + 1);
            assert_eq!(max, CAP);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}
