//! Live-socket tests of the daemon: typed errors, cancellation,
//! trace streaming, the hierarchy-cache trace contract, and
//! poisoned-stream aborts.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use hypart_server::protocol::{digest_to_hex, EvalRequest, InstanceRef, PartitionRequest, Request};
use hypart_server::{Client, JobOutcome, Server, ServerConfig};
use hypart_trace::{RunEvent, StopReason};

fn hgr_text(cells: usize, seed: u64) -> String {
    let h = hypart_benchgen::mcnc_like(cells, seed);
    let mut text = Vec::new();
    hypart_hypergraph::io::hgr::write(&h, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

fn start_default() -> hypart_server::ServerHandle {
    Server::start(ServerConfig::default()).unwrap()
}

#[test]
fn malformed_frame_gets_typed_parse_error_and_connection_survives() {
    let server = start_default();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // A syntactically broken frame: valid length prefix, junk payload.
    let junk = b"{not json";
    raw.write_all(&(junk.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(junk).unwrap();
    raw.flush().unwrap();

    // The same socket still serves real requests afterwards.
    let mut client = Client::connect(server.local_addr()).unwrap();
    client
        .send(&Request::Partition(PartitionRequest::new(
            1,
            InstanceRef::Inline(hgr_text(60, 1)),
            7,
        )))
        .unwrap();
    let outcome = client.wait_outcome(1).unwrap();
    assert!(matches!(outcome, JobOutcome::Finished { .. }));
    let stats = client.stats().unwrap();
    assert!(stats.errors >= 1, "the junk frame must be counted");
    server.shutdown();
}

#[test]
fn unknown_digest_and_bad_requests_fail_typed() {
    let server = start_default();
    let mut client = Client::connect(server.local_addr()).unwrap();

    client
        .send(&Request::Partition(PartitionRequest::new(
            5,
            InstanceRef::Digest(0xDEAD_BEEF),
            1,
        )))
        .unwrap();
    match client.wait_outcome(5).unwrap() {
        JobOutcome::Failed { code, .. } => assert_eq!(code, "unknown_instance"),
        other => panic!("expected unknown_instance, got {other:?}"),
    }

    // k = 3 violates the power-of-two validation; the raw frame carries
    // an id, so the error comes back job-scoped.
    let text = format!(
        r#"{{"op":"partition","id":6,"digest":"{}","k":3}}"#,
        digest_to_hex(1)
    );
    let value = hypart_trace::json::JsonValue::parse(&text).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    let bytes = value.to_string();
    raw.write_all(&(bytes.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(bytes.as_bytes()).unwrap();
    raw.flush().unwrap();
    // Read the job-scoped error reply off the raw socket — a
    // deterministic sync point (no sleeping and hoping the reader
    // thread got there) before checking the counter.
    let reply = hypart_server::protocol::read_frame(&mut raw, 1 << 20)
        .unwrap()
        .unwrap();
    assert_eq!(
        reply.get("reply").and_then(|v| v.as_str()),
        Some("error"),
        "raw k=3 frame must fail typed: {reply:?}"
    );
    let stats = client.stats().unwrap();
    assert!(stats.errors >= 2);

    // Eval with mismatched assignment length.
    client
        .send(&Request::Partition(PartitionRequest::new(
            7,
            InstanceRef::Inline(hgr_text(40, 2)),
            1,
        )))
        .unwrap();
    let digest = match client.wait_outcome(7).unwrap() {
        JobOutcome::Finished { result, .. } => result.digest,
        other => panic!("setup job failed: {other:?}"),
    };
    client
        .send(&Request::Eval(EvalRequest {
            id: 8,
            instance: InstanceRef::Digest(digest),
            assignment: vec![0, 1],
            k: 2,
            fraction: 0.1,
            request_token: None,
        }))
        .unwrap();
    match client.wait_outcome(8).unwrap() {
        JobOutcome::Failed { code, .. } => assert_eq!(code, "bad_request"),
        other => panic!("expected bad_request, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn cancel_stops_a_queued_job_and_unknown_cancel_is_typed() {
    let config = ServerConfig {
        workers: 1,
        worker_delay_ms: 150,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    client
        .send(&Request::Partition(PartitionRequest::new(
            1,
            InstanceRef::Inline(hgr_text(80, 3)),
            5,
        )))
        .unwrap();
    // The worker is sleeping on the delay knob; the cancel lands while
    // the job is queued/starting, so the engine observes the token.
    assert!(client.cancel(1).unwrap(), "in-flight cancel must ack");
    match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, .. } => {
            assert_eq!(result.stopped, StopReason::Cancelled);
            assert_eq!(result.starts, 1, "the mandatory start still runs");
        }
        other => panic!("expected a cancelled result, got {other:?}"),
    }

    assert!(
        !client.cancel(99).unwrap(),
        "unknown job cancel returns false"
    );
    server.shutdown();
}

#[test]
fn eval_scores_an_assignment_without_running_engines() {
    let server = start_default();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let mut req = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(60, 4)), 9);
    req.include_assignment = true;
    client.send(&Request::Partition(req)).unwrap();
    let (digest, assignment, cut) = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, .. } => (
            result.digest,
            result.assignment.clone().unwrap(),
            result.cut,
        ),
        other => panic!("setup job failed: {other:?}"),
    };
    client
        .send(&Request::Eval(EvalRequest {
            id: 2,
            instance: InstanceRef::Digest(digest),
            assignment,
            k: 2,
            fraction: 0.1,
            request_token: None,
        }))
        .unwrap();
    match client.wait_outcome(2).unwrap() {
        JobOutcome::Finished { result, .. } => {
            assert_eq!(result.cut, cut, "eval must agree with the engine's cut");
            assert_eq!(result.starts, 0);
            assert_eq!(result.stopped, StopReason::Completed);
        }
        other => panic!("eval failed: {other:?}"),
    }
    server.shutdown();
}

/// The acceptance contract of the hierarchy cache: a re-query with the
/// same `(digest, coarsening config, seed)` replays the cold run's
/// trace bitwise, prefixed by exactly one `hierarchy_reused` event; a
/// re-query with a *new balance* still skips hierarchy construction
/// (observable from the same leading event) while refining differently.
#[test]
fn cache_hit_trace_is_cold_trace_plus_reuse_prefix() {
    let server = start_default();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut cold = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(90, 5)), 11);
    cold.trace = true;
    client.send(&Request::Partition(cold)).unwrap();
    let (digest, cold_events, cold_result) = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, events } => (result.digest, events, result),
        other => panic!("cold job failed: {other:?}"),
    };
    assert!(!cold_result.hierarchy_reused);
    assert!(!cold_events.is_empty());
    assert!(
        !cold_events
            .iter()
            .any(|e| matches!(e, RunEvent::HierarchyReused { .. })),
        "a cold run must not claim reuse"
    );

    // Identical re-query: bitwise replay plus the one-event prefix.
    let mut warm = PartitionRequest::new(2, InstanceRef::Digest(digest), 11);
    warm.trace = true;
    client.send(&Request::Partition(warm)).unwrap();
    let (warm_events, warm_result) = match client.wait_outcome(2).unwrap() {
        JobOutcome::Finished { result, events } => (events, result),
        other => panic!("warm job failed: {other:?}"),
    };
    assert!(warm_result.hierarchy_reused);
    assert_eq!(warm_result.levels, cold_result.levels);
    assert_eq!(warm_result.cut, cold_result.cut);
    match warm_events.first() {
        Some(RunEvent::HierarchyReused { levels }) => {
            assert_eq!(*levels, cold_result.levels)
        }
        other => panic!("warm trace must lead with hierarchy_reused, got {other:?}"),
    }
    assert_eq!(
        &warm_events[1..],
        &cold_events[..],
        "a cache hit must replay the cold trace bitwise after the reuse prefix"
    );

    // New balance over the cached hierarchy: construction still skipped.
    let mut rebalanced = PartitionRequest::new(3, InstanceRef::Digest(digest), 11);
    rebalanced.trace = true;
    rebalanced.fraction = 0.3;
    client.send(&Request::Partition(rebalanced)).unwrap();
    match client.wait_outcome(3).unwrap() {
        JobOutcome::Finished { result, events } => {
            assert!(result.hierarchy_reused);
            assert!(matches!(
                events.first(),
                Some(RunEvent::HierarchyReused { .. })
            ));
        }
        other => panic!("rebalanced job failed: {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert!(stats.hierarchy_hits >= 2);
    assert!(stats.hierarchy_misses >= 1);
    assert!(
        stats.instance_hits >= 2,
        "digest re-queries hit the instance cache"
    );
    server.shutdown();
}

/// The wire contract of the `engine` field: n-level jobs run end to end
/// over a live socket (2-way and recursive-bisection k-way), replay
/// bitwise on a re-query, never touch the hierarchy cache, and emit the
/// contraction/uncontraction bracket events.
#[test]
fn nlevel_engine_jobs_run_deterministically_and_skip_hierarchy_cache() {
    let server = start_default();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut first = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(90, 5)), 11);
    first.engine = hypart_core::EngineKind::NLevel;
    first.trace = true;
    client.send(&Request::Partition(first)).unwrap();
    let (digest, first_events, first_result) = match client.wait_outcome(1).unwrap() {
        JobOutcome::Finished { result, events } => (result.digest, events, result),
        other => panic!("nlevel job failed: {other:?}"),
    };
    assert!(first_result.audit_clean);
    assert!(first_result.balanced);
    assert!(
        !first_result.hierarchy_reused,
        "n-level never consults the hierarchy cache"
    );
    assert!(
        first_events
            .iter()
            .any(|e| matches!(e, RunEvent::ContractionBegin { .. })),
        "n-level traces must open a contraction bracket"
    );
    assert!(
        first_events
            .iter()
            .any(|e| matches!(e, RunEvent::UncontractionEnd { .. })),
        "n-level traces must close the uncontraction bracket"
    );

    // Identical re-query by digest: bitwise trace replay, no reuse event
    // (the hierarchy cache never engages for this backend).
    let mut again = PartitionRequest::new(2, InstanceRef::Digest(digest), 11);
    again.engine = hypart_core::EngineKind::NLevel;
    again.trace = true;
    client.send(&Request::Partition(again)).unwrap();
    match client.wait_outcome(2).unwrap() {
        JobOutcome::Finished { result, events } => {
            assert_eq!(result.cut, first_result.cut);
            assert!(!result.hierarchy_reused);
            assert_eq!(
                events, first_events,
                "n-level re-queries must replay the trace bitwise"
            );
        }
        other => panic!("nlevel re-query failed: {other:?}"),
    }

    // k-way via recursive bisection inherits the backend choice.
    let mut kway = PartitionRequest::new(3, InstanceRef::Digest(digest), 7);
    kway.engine = hypart_core::EngineKind::NLevel;
    kway.k = 4;
    client.send(&Request::Partition(kway)).unwrap();
    match client.wait_outcome(3).unwrap() {
        JobOutcome::Finished { result, .. } => {
            assert!(result.audit_clean);
            assert!(result.balanced);
        }
        other => panic!("nlevel k-way job failed: {other:?}"),
    }

    let stats = client.stats().unwrap();
    assert_eq!(
        stats.hierarchy_hits + stats.hierarchy_misses,
        0,
        "n-level jobs must not touch the hierarchy cache"
    );
    server.shutdown();
}

/// Disconnecting mid-stream poisons the connection writer; the daemon
/// cancels the job and counts a `stream_aborted` instead of pretending
/// the truncated trace was delivered.
#[test]
fn client_disconnect_mid_trace_counts_stream_aborted() {
    let config = ServerConfig {
        workers: 1,
        worker_delay_ms: 100,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();

    {
        let mut doomed = Client::connect(server.local_addr()).unwrap();
        let mut req = PartitionRequest::new(1, InstanceRef::Inline(hgr_text(120, 6)), 13);
        req.trace = true;
        doomed.send(&Request::Partition(req)).unwrap();
        // Drop the connection while the job is still queued behind the
        // worker delay: every later write to it fails.
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut observer = Client::connect(server.local_addr()).unwrap();
    loop {
        let stats = observer.stats().unwrap();
        if stats.stream_aborted >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon never counted the poisoned stream: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn remote_shutdown_op_stops_the_daemon() {
    let server = start_default();
    let addr = server.local_addr();
    let waiter = std::thread::spawn(move || server.wait());
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    waiter.join().unwrap();
    // The port is released once wait() returns; a fresh connect fails
    // (or connects to nothing that answers — accept loop is gone).
    std::thread::sleep(Duration::from_millis(50));
    let mut probe = Client::connect(addr);
    if let Ok(probe) = probe.as_mut() {
        assert!(
            probe.stats().is_err(),
            "daemon must not answer after shutdown"
        );
    }
}
