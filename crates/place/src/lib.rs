//! Top-down min-cut global placement — the driving application of the
//! paper's §2.1.
//!
//! "A modern top-down standard-cell placement tool might perform …
//! recursive min-cut bisection of a cell-level netlist to obtain a
//! 'coarse placement', which is then refined into a 'detailed placement'."
//! This crate implements that flow on top of the `hypart` partitioners:
//!
//! * [`Rect`] / [`Placement`] — geometry and per-cell coordinates;
//! * [`TopDownPlacer`] — recursive min-cut bisection with alternating
//!   cutline direction, area-proportional region splitting, and
//!   Dunlop–Kernighan **terminal propagation** (external pins of crossing
//!   nets are projected onto the region boundary as fixed dummy
//!   terminals — the §2.1 reason real partitioning instances have many
//!   fixed vertices);
//! * [`hpwl`] — half-perimeter wirelength, the application-level quality
//!   metric that makes partitioner comparisons "meaningful in light of
//!   the driving application";
//! * [`RowLegalizer`] — snaps a coarse placement onto cell rows
//!   (non-overlapping sites), the hand-off point to detailed placement.
//!
//! # Example
//!
//! ```
//! use hypart_place::{hpwl, PlacerConfig, Rect, TopDownPlacer};
//! use hypart_benchgen::toys::grid;
//!
//! let h = grid(8, 8);
//! let die = Rect::new(0.0, 0.0, 100.0, 100.0);
//! let placement = TopDownPlacer::new(PlacerConfig::default()).run(&h, die, 1);
//! assert_eq!(placement.len(), h.num_vertices());
//! assert!(hpwl(&h, &placement) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geometry;
mod legalize;
mod placer;
mod wirelength;

pub use geometry::{Placement, Point, Rect};
pub use legalize::{LegalizedPlacement, RowLegalizer};
pub use placer::{PlacerConfig, TopDownPlacer};
pub use wirelength::{hpwl, net_hpwl};
