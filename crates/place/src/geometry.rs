//! Placement geometry: points, rectangles, and per-cell coordinates.

use hypart_hypergraph::VertexId;

/// A 2-D point in placement coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// x coordinate.
    pub x: f64,
    /// y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }
}

/// An axis-aligned rectangle `[x0, x1] × [y0, y1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if `x1 < x0` or `y1 < y0`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        assert!(x1 >= x0 && y1 >= y0, "degenerate rectangle");
        Rect { x0, y0, x1, y1 }
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// `true` if `p` is inside (inclusive).
    pub fn contains(&self, p: Point) -> bool {
        (self.x0..=self.x1).contains(&p.x) && (self.y0..=self.y1).contains(&p.y)
    }

    /// Projects `p` onto the nearest point of this rectangle (identity if
    /// inside) — the terminal-propagation projection of Dunlop–Kernighan.
    pub fn project(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Splits vertically at fraction `f` of the width: returns (left,
    /// right).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1]`.
    pub fn split_vertical(&self, f: f64) -> (Rect, Rect) {
        assert!((0.0..=1.0).contains(&f), "split fraction out of range");
        let xm = self.x0 + self.width() * f;
        (
            Rect::new(self.x0, self.y0, xm, self.y1),
            Rect::new(xm, self.y0, self.x1, self.y1),
        )
    }

    /// Splits horizontally at fraction `f` of the height: returns
    /// (bottom, top).
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1]`.
    pub fn split_horizontal(&self, f: f64) -> (Rect, Rect) {
        assert!((0.0..=1.0).contains(&f), "split fraction out of range");
        let ym = self.y0 + self.height() * f;
        (
            Rect::new(self.x0, self.y0, self.x1, ym),
            Rect::new(self.x0, ym, self.x1, self.y1),
        )
    }
}

/// Per-cell coordinates: `positions[v]` is the location of vertex `v`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Placement {
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement with all cells at the origin.
    pub fn new(num_cells: usize) -> Self {
        Placement {
            positions: vec![Point::default(); num_cells],
        }
    }

    /// Number of placed cells.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if there are no cells.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of vertex `v`.
    #[inline]
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.index()]
    }

    /// Sets the position of vertex `v`.
    #[inline]
    pub fn set_position(&mut self, v: VertexId, p: Point) {
        self.positions[v.index()] = p;
    }

    /// Iterates over `(vertex, position)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, Point)> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| (VertexId::from_index(i), p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_basics() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.center(), Point::new(5.0, 2.0));
        assert!(r.contains(Point::new(10.0, 4.0)));
        assert!(!r.contains(Point::new(10.1, 4.0)));
    }

    #[test]
    fn projection_clamps() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.project(Point::new(-5.0, 3.0)), Point::new(0.0, 3.0));
        assert_eq!(r.project(Point::new(20.0, 20.0)), Point::new(10.0, 10.0));
        assert_eq!(r.project(Point::new(4.0, 4.0)), Point::new(4.0, 4.0));
    }

    #[test]
    fn splits_partition_the_area() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let (l, rr) = r.split_vertical(0.3);
        assert_eq!(l.width(), 3.0);
        assert_eq!(rr.width(), 7.0);
        assert_eq!(l.x1, rr.x0);
        let (b, t) = r.split_horizontal(0.5);
        assert_eq!(b.height(), 5.0);
        assert_eq!(t.y0, 5.0);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn inverted_rect_panics() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn placement_get_set() {
        let mut p = Placement::new(3);
        assert_eq!(p.len(), 3);
        p.set_position(VertexId::new(1), Point::new(2.0, 3.0));
        assert_eq!(p.position(VertexId::new(1)), Point::new(2.0, 3.0));
        assert_eq!(p.iter().count(), 3);
    }
}
