//! Row legalization: snapping a coarse placement onto standard-cell rows.
//!
//! The §2.1 use model refines the coarse min-cut placement "into a
//! 'detailed placement'"; legalization is the hand-off: each cell is
//! assigned to a row and packed left-to-right without overlap, staying as
//! close as possible to its coarse position. (Footnote 8 of the paper —
//! the discrete nature of cell rows — is exactly why horizontal cutlines
//! need tighter balance: rows quantize capacity.)

use hypart_hypergraph::{Hypergraph, VertexId};

use crate::geometry::{Placement, Point, Rect};

/// A row-based legalizer: `rows` equal-height rows spanning the die.
#[derive(Clone, Copy, Debug)]
pub struct RowLegalizer {
    die: Rect,
    rows: usize,
}

/// Result of legalization.
#[derive(Clone, Debug)]
pub struct LegalizedPlacement {
    /// The legalized placement (row-center y, packed x).
    pub placement: Placement,
    /// Row index per cell.
    pub row_of: Vec<usize>,
    /// Total displacement (sum of |Δx| + |Δy|) from the input placement.
    pub total_displacement: f64,
}

impl RowLegalizer {
    /// Creates a legalizer for `rows` rows across `die`.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    pub fn new(die: Rect, rows: usize) -> Self {
        assert!(rows >= 1, "need at least one row");
        RowLegalizer { die, rows }
    }

    /// Center y of row `r`.
    pub fn row_y(&self, r: usize) -> f64 {
        self.die.y0 + self.die.height() * (r as f64 + 0.5) / self.rows as f64
    }

    /// Legalizes `placement`: assigns each cell to the nearest row with
    /// free capacity (capacity = die width, cell width = its area /
    /// row height), then packs each row left-to-right in coarse-x order.
    ///
    /// Cell footprints are area-proportional: width = area / row_height,
    /// so total area capacity matches the die. Cells keep their relative
    /// x order within a row; rows overflow to the next-nearest row.
    pub fn legalize(&self, h: &Hypergraph, placement: &Placement) -> LegalizedPlacement {
        let row_height = self.die.height() / self.rows as f64;
        let capacity = self.die.width();
        let mut row_used = vec![0.0f64; self.rows];
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); self.rows];
        let mut row_of = vec![0usize; h.num_vertices()];

        // Greedy assignment in descending area (big cells first, the
        // standard packing heuristic).
        let mut order: Vec<VertexId> = h.vertices().collect();
        order.sort_by_key(|&v| std::cmp::Reverse(h.vertex_weight(v)));
        for v in order {
            let width = cell_width(h, v, row_height);
            let y = placement.position(v).y;
            let nearest = (((y - self.die.y0) / row_height - 0.5).round() as i64)
                .clamp(0, self.rows as i64 - 1) as usize;
            // Try rows in order of distance from the nearest.
            let mut chosen = None;
            for offset in 0..self.rows as i64 {
                for candidate in [nearest as i64 - offset, nearest as i64 + offset] {
                    if (0..self.rows as i64).contains(&candidate) {
                        let r = candidate as usize;
                        if row_used[r] + width <= capacity {
                            chosen = Some(r);
                            break;
                        }
                    }
                }
                if chosen.is_some() {
                    break;
                }
            }
            // If every row is "full" (over-utilized die), spill into the
            // least-used row rather than failing.
            let r = chosen.unwrap_or_else(|| {
                row_used
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN"))
                    .map(|(i, _)| i)
                    .expect("rows >= 1")
            });
            row_used[r] += width;
            members[r].push(v);
            row_of[v.index()] = r;
        }

        // Pack each row left-to-right in coarse-x order.
        let mut legal = Placement::new(h.num_vertices());
        let mut total_displacement = 0.0;
        for (r, row_members) in members.iter_mut().enumerate() {
            row_members.sort_by(|&a, &b| {
                placement
                    .position(a)
                    .x
                    .partial_cmp(&placement.position(b).x)
                    .expect("no NaN")
            });
            // Position-preserving packing: each cell goes as close to its
            // coarse x as the already-packed prefix allows, then the whole
            // row is shifted left if it overflowed the right edge.
            let mut cursor = self.die.x0;
            let mut placed: Vec<(VertexId, f64, f64)> = Vec::with_capacity(row_members.len());
            for &v in row_members.iter() {
                let width = cell_width(h, v, row_height);
                let desired_left = placement.position(v).x - width / 2.0;
                let left = desired_left.max(cursor);
                placed.push((v, left, width));
                cursor = left + width;
            }
            if cursor > self.die.x1 {
                // The row ran past the right edge: right-to-left pass that
                // clamps each cell against the cell after it (or the die
                // edge). If the row's total width exceeds the die width
                // (overfull spill case) the leftmost cells stop at x0 and
                // may overlap — capacity-checked assignment above makes
                // that possible only when the whole die is over-utilized.
                let mut right = self.die.x1;
                for entry in placed.iter_mut().rev() {
                    let left = (right - entry.2).min(entry.1).max(self.die.x0);
                    entry.1 = left;
                    right = left;
                }
            }
            for (v, left, width) in placed {
                let target = Point::new(left + width / 2.0, self.row_y(r));
                let coarse = placement.position(v);
                total_displacement += (target.x - coarse.x).abs() + (target.y - coarse.y).abs();
                legal.set_position(v, target);
            }
        }
        LegalizedPlacement {
            placement: legal,
            row_of,
            total_displacement,
        }
    }
}

fn cell_width(h: &Hypergraph, v: VertexId, row_height: f64) -> f64 {
    (h.vertex_weight(v) as f64 / row_height).max(f64::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placer::{PlacerConfig, TopDownPlacer};
    use hypart_benchgen::mcnc_like;

    fn die() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn rows_are_respected_and_disjoint() {
        let h = mcnc_like(64, 2);
        let coarse = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 1);
        let legalizer = RowLegalizer::new(die(), 5);
        let legal = legalizer.legalize(&h, &coarse);

        // Every cell sits exactly on a row center line.
        for (v, p) in legal.placement.iter() {
            let r = legal.row_of[v.index()];
            assert!((p.y - legalizer.row_y(r)).abs() < 1e-9);
        }
        // Within a row, footprints do not overlap.
        let row_height = die().height() / 5.0;
        for r in 0..5 {
            let mut spans: Vec<(f64, f64)> = legal
                .placement
                .iter()
                .filter(|(v, _)| legal.row_of[v.index()] == r)
                .map(|(v, p)| {
                    let w = h.vertex_weight(v) as f64 / row_height;
                    (p.x - w / 2.0, p.x + w / 2.0)
                })
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
            for pair in spans.windows(2) {
                assert!(
                    pair[0].1 <= pair[1].0 + 1e-9,
                    "row {r}: spans overlap: {pair:?}"
                );
            }
            for &(l, rr) in &spans {
                assert!(
                    l >= die().x0 - 1e-9 && rr <= die().x1 + 1e-9,
                    "row {r}: span [{l}, {rr}] escapes the die"
                );
            }
        }
    }

    #[test]
    fn displacement_is_reported() {
        let h = mcnc_like(32, 1);
        let coarse = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 1);
        let legal = RowLegalizer::new(die(), 4).legalize(&h, &coarse);
        assert!(legal.total_displacement >= 0.0);
        assert!(legal.total_displacement.is_finite());
    }

    #[test]
    fn overfull_die_spills_without_panicking() {
        // Total area 1000 in a 100x10 die with 1 row: capacity 100 width
        // units at row height 10 = area 1000 exactly; add more to overflow.
        let mut b = hypart_hypergraph::HypergraphBuilder::new();
        b.add_vertices(30, 50);
        let h = b.build().unwrap();
        let small_die = Rect::new(0.0, 0.0, 100.0, 10.0);
        let coarse = Placement::new(h.num_vertices());
        let legal = RowLegalizer::new(small_die, 1).legalize(&h, &coarse);
        assert_eq!(legal.placement.len(), 30);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let _ = RowLegalizer::new(die(), 0);
    }
}
