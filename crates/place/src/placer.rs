//! The recursive min-cut top-down placer.

use hypart_core::BalanceConstraint;
use hypart_hypergraph::{Hypergraph, HypergraphBuilder, PartId, VertexId};
use hypart_ml::{MlConfig, MlPartitioner};

use crate::geometry::{Placement, Point, Rect};

/// Configuration of [`TopDownPlacer`].
#[derive(Clone, Debug, PartialEq)]
pub struct PlacerConfig {
    /// Multilevel partitioner used at every bisection node.
    pub ml: MlConfig,
    /// Balance tolerance per split (fraction of region weight).
    pub tolerance: f64,
    /// Regions at or below this many cells are placed directly.
    pub min_region_cells: usize,
    /// Recursion depth cap (safety bound; 2^depth regions).
    pub max_depth: usize,
    /// Dunlop–Kernighan terminal propagation: project external pins of
    /// crossing nets onto the region and pin them as fixed zero-weight
    /// pseudo-terminals. Disable to measure its effect.
    pub terminal_propagation: bool,
}

impl Default for PlacerConfig {
    fn default() -> Self {
        PlacerConfig {
            ml: MlConfig::default(),
            tolerance: 0.10,
            min_region_cells: 8,
            max_depth: 24,
            terminal_propagation: true,
        }
    }
}

/// A top-down global placer: recursive min-cut bisection with alternating
/// cutline direction and area-proportional region splitting.
#[derive(Clone, Debug)]
pub struct TopDownPlacer {
    config: PlacerConfig,
}

impl TopDownPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(config: PlacerConfig) -> Self {
        TopDownPlacer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlacerConfig {
        &self.config
    }

    /// Places every cell of `h` inside `die`, deterministically from
    /// `seed`. The input hypergraph's own fixed-vertex flags are ignored
    /// (they encode partition sides, not locations); all cells are treated
    /// as movable.
    pub fn run(&self, h: &Hypergraph, die: Rect, seed: u64) -> Placement {
        let ml = MlPartitioner::new(self.config.ml.clone());
        let mut placement = Placement::new(h.num_vertices());
        // Initial estimate: everything at the die center (refined as the
        // recursion descends; terminal propagation reads these estimates).
        for v in h.vertices() {
            placement.set_position(v, die.center());
        }

        let mut queue: Vec<(Vec<VertexId>, Rect, usize)> = vec![(h.vertices().collect(), die, 0)];
        let mut region_counter: u64 = 0;

        while let Some((cells, rect, depth)) = queue.pop() {
            if cells.len() <= self.config.min_region_cells || depth >= self.config.max_depth {
                place_leaf(&cells, rect, &mut placement);
                continue;
            }
            region_counter += 1;
            let split_vertical = rect.width() >= rect.height();
            let (sub, dummies) =
                self.build_region_instance(h, &cells, rect, split_vertical, &placement);
            let constraint =
                BalanceConstraint::with_fraction(sub.total_vertex_weight(), self.config.tolerance);
            let out = ml.run(
                &sub,
                &constraint,
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(region_counter),
            );

            // Children, ignoring the pseudo-terminal dummies at the tail.
            let mut first = Vec::new();
            let mut second = Vec::new();
            let mut weight = [0u64; 2];
            for (i, &orig) in cells.iter().enumerate() {
                let side = out.assignment[i];
                weight[side.index()] += h.vertex_weight(orig);
                match side {
                    PartId::P0 => first.push(orig),
                    PartId::P1 => second.push(orig),
                }
            }
            let _ = dummies;
            let total = (weight[0] + weight[1]).max(1);
            // Area-proportional cutline, kept away from the edges so thin
            // slivers cannot starve a child region.
            let fraction = (weight[0] as f64 / total as f64).clamp(0.1, 0.9);
            let (rect0, rect1) = if split_vertical {
                rect.split_vertical(fraction)
            } else {
                rect.split_horizontal(fraction)
            };
            // Refine the position estimates for subsequent terminal
            // propagation at deeper levels.
            for &v in &first {
                placement.set_position(v, rect0.center());
            }
            for &v in &second {
                placement.set_position(v, rect1.center());
            }
            if first.is_empty() || second.is_empty() {
                // Degenerate split (e.g. one giant macro): place directly.
                place_leaf(&cells, rect, &mut placement);
                continue;
            }
            queue.push((first, rect0, depth + 1));
            queue.push((second, rect1, depth + 1));
        }
        placement
    }

    /// Builds the partitioning instance for one region: the induced
    /// sub-hypergraph plus (optionally) two fixed zero-weight
    /// pseudo-terminals that crossing nets are pinned to, on the side
    /// nearest the projection of their external pins.
    fn build_region_instance(
        &self,
        h: &Hypergraph,
        cells: &[VertexId],
        rect: Rect,
        split_vertical: bool,
        placement: &Placement,
    ) -> (Hypergraph, usize) {
        let mut index_of = vec![u32::MAX; h.num_vertices()];
        let mut builder = HypergraphBuilder::with_capacity(cells.len() + 2, cells.len());
        for (i, &v) in cells.iter().enumerate() {
            index_of[v.index()] = i as u32;
            builder.add_vertex(h.vertex_weight(v));
        }
        // Pseudo-terminals (zero weight so balance is unaffected).
        let left_terminal = builder.add_vertex(0);
        let right_terminal = builder.add_vertex(0);
        builder.fix_vertex(left_terminal, PartId::P0);
        builder.fix_vertex(right_terminal, PartId::P1);
        let mut dummies_used = 0usize;

        let center = rect.center();
        let mut seen = std::collections::HashSet::new();
        for &v in cells {
            for &e in h.vertex_nets(v) {
                if !seen.insert(e) {
                    continue;
                }
                let mut pins: Vec<VertexId> = Vec::new();
                let mut ext_x = 0.0f64;
                let mut ext_y = 0.0f64;
                let mut ext_count = 0usize;
                for &p in h.net_pins(e) {
                    if index_of[p.index()] != u32::MAX {
                        pins.push(VertexId::new(index_of[p.index()]));
                    } else {
                        let pos = placement.position(p);
                        ext_x += pos.x;
                        ext_y += pos.y;
                        ext_count += 1;
                    }
                }
                if self.config.terminal_propagation && ext_count > 0 && !pins.is_empty() {
                    let centroid = Point::new(ext_x / ext_count as f64, ext_y / ext_count as f64);
                    let projected = rect.project(centroid);
                    let to_first = if split_vertical {
                        projected.x <= center.x
                    } else {
                        projected.y <= center.y
                    };
                    pins.push(if to_first {
                        left_terminal
                    } else {
                        right_terminal
                    });
                    dummies_used += 1;
                }
                if pins.len() >= 2 {
                    builder
                        .add_net(pins, h.net_weight(e))
                        .expect("region pins are valid");
                }
            }
        }
        (
            builder.build().expect("region instance is valid"),
            dummies_used,
        )
    }
}

/// Places a leaf region's cells on a regular grid inside its rectangle
/// (deterministic; avoids stacking everything on the center point).
fn place_leaf(cells: &[VertexId], rect: Rect, placement: &mut Placement) {
    if cells.is_empty() {
        return;
    }
    let cols = (cells.len() as f64).sqrt().ceil() as usize;
    let rows = cells.len().div_ceil(cols);
    for (i, &v) in cells.iter().enumerate() {
        let col = i % cols;
        let row = i / cols;
        let x = rect.x0 + rect.width() * (col as f64 + 0.5) / cols as f64;
        let y = rect.y0 + rect.height() * (row as f64 + 0.5) / rows as f64;
        placement.set_position(v, Point::new(x, y));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wirelength::hpwl;
    use hypart_benchgen::toys::grid;
    use hypart_benchgen::{ispd98_like, mcnc_like};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn die() -> Rect {
        Rect::new(0.0, 0.0, 1000.0, 1000.0)
    }

    fn random_placement(h: &Hypergraph, die: Rect, seed: u64) -> Placement {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut p = Placement::new(h.num_vertices());
        for v in h.vertices() {
            p.set_position(
                v,
                Point::new(
                    rng.gen_range(die.x0..=die.x1),
                    rng.gen_range(die.y0..=die.y1),
                ),
            );
        }
        p
    }

    #[test]
    fn all_cells_land_inside_the_die() {
        let h = mcnc_like(300, 3);
        let placement = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 1);
        for (_, p) in placement.iter() {
            assert!(die().contains(p), "{p:?} escaped the die");
        }
    }

    #[test]
    fn min_cut_placement_beats_random_on_hpwl() {
        let h = ispd98_like(1, 0.04, 3);
        let placed = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 1);
        let random = random_placement(&h, die(), 1);
        let placed_hpwl = hpwl(&h, &placed);
        let random_hpwl = hpwl(&h, &random);
        assert!(
            placed_hpwl * 2.0 < random_hpwl,
            "placed {placed_hpwl:.0} should be far below random {random_hpwl:.0}"
        );
    }

    #[test]
    fn terminal_propagation_helps_wirelength() {
        let h = ispd98_like(1, 0.04, 9);
        let with_tp = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 2);
        let without_tp = TopDownPlacer::new(PlacerConfig {
            terminal_propagation: false,
            ..PlacerConfig::default()
        })
        .run(&h, die(), 2);
        let hp_with = hpwl(&h, &with_tp);
        let hp_without = hpwl(&h, &without_tp);
        assert!(
            hp_with < hp_without * 1.02,
            "terminal propagation should not hurt: {hp_with:.0} vs {hp_without:.0}"
        );
    }

    #[test]
    fn grid_placement_recovers_locality() {
        // Neighbors in the logical grid should end up near each other.
        let h = grid(10, 10);
        let placement = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 5);
        // Average net length must be well below the die diagonal scale.
        let avg = hpwl(&h, &placement) / h.num_nets() as f64;
        assert!(avg < 400.0, "avg net HPWL {avg:.0}");
    }

    #[test]
    fn deterministic_per_seed() {
        let h = mcnc_like(200, 1);
        let a = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 7);
        let b = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_instance_is_a_single_leaf() {
        let h = mcnc_like(8, 1);
        let placement = TopDownPlacer::new(PlacerConfig::default()).run(&h, die(), 0);
        // 8 cells <= min_region_cells: straight to the leaf grid.
        let mut xs: Vec<f64> = placement.iter().map(|(_, p)| p.x).collect();
        xs.dedup();
        assert!(xs.len() > 1, "leaf grid should spread cells");
    }
}
