//! Half-perimeter wirelength (HPWL) — the standard global-placement
//! quality metric, and the application-level measure that makes
//! partitioner comparisons meaningful for the §2.1 use model.

use crate::geometry::Placement;
use hypart_hypergraph::{Hypergraph, NetId};

/// HPWL of a single net: half the perimeter of the bounding box of its
/// pins, weighted by the net weight. Single-pin nets cost 0.
pub fn net_hpwl(h: &Hypergraph, placement: &Placement, e: NetId) -> f64 {
    let pins = h.net_pins(e);
    if pins.len() < 2 {
        return 0.0;
    }
    let mut min_x = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for &v in pins {
        let p = placement.position(v);
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    f64::from(h.net_weight(e)) * ((max_x - min_x) + (max_y - min_y))
}

/// Total HPWL of a placement: Σ over nets of [`net_hpwl`].
///
/// ```
/// use hypart_place::{hpwl, Placement, Point};
/// use hypart_hypergraph::{HypergraphBuilder, VertexId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = HypergraphBuilder::new();
/// let v: Vec<_> = (0..2).map(|_| b.add_vertex(1)).collect();
/// b.add_net([v[0], v[1]], 1)?;
/// let h = b.build()?;
/// let mut p = Placement::new(2);
/// p.set_position(v[0], Point::new(0.0, 0.0));
/// p.set_position(v[1], Point::new(3.0, 4.0));
/// assert_eq!(hpwl(&h, &p), 7.0);
/// # Ok(())
/// # }
/// ```
pub fn hpwl(h: &Hypergraph, placement: &Placement) -> f64 {
    h.nets().map(|e| net_hpwl(h, placement, e)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use hypart_hypergraph::{HypergraphBuilder, VertexId};

    fn place(coords: &[(f64, f64)]) -> Placement {
        let mut p = Placement::new(coords.len());
        for (i, &(x, y)) in coords.iter().enumerate() {
            p.set_position(VertexId::from_index(i), Point::new(x, y));
        }
        p
    }

    #[test]
    fn bounding_box_half_perimeter() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..3).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1], v[2]], 1).unwrap();
        let h = b.build().unwrap();
        let p = place(&[(0.0, 0.0), (2.0, 1.0), (1.0, 5.0)]);
        assert_eq!(net_hpwl(&h, &p, hypart_hypergraph::NetId::new(0)), 7.0);
        assert_eq!(hpwl(&h, &p), 7.0);
    }

    #[test]
    fn weighted_nets_scale() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 3).unwrap();
        let h = b.build().unwrap();
        let p = place(&[(0.0, 0.0), (1.0, 1.0)]);
        assert_eq!(hpwl(&h, &p), 6.0);
    }

    #[test]
    fn coincident_pins_cost_zero() {
        let mut b = HypergraphBuilder::new();
        let v: Vec<_> = (0..2).map(|_| b.add_vertex(1)).collect();
        b.add_net([v[0], v[1]], 1).unwrap();
        let h = b.build().unwrap();
        let p = place(&[(4.0, 4.0), (4.0, 4.0)]);
        assert_eq!(hpwl(&h, &p), 0.0);
    }

    #[test]
    fn single_pin_net_costs_zero() {
        let mut b = HypergraphBuilder::new();
        let v0 = b.add_vertex(1);
        b.add_net([v0], 1).unwrap();
        let h = b.build().unwrap();
        let p = place(&[(1.0, 2.0)]);
        assert_eq!(hpwl(&h, &p), 0.0);
    }
}
