//! Published size profiles of the ISPD98 IBM benchmark suite.
//!
//! Cell/net/pin counts follow the figures published with the suite
//! \[Alpert, ISPD-98\]. The synthetic generator reproduces these aggregate
//! counts (scaled on request), not the actual netlist topologies, which are
//! not redistributable.

/// Size profile of one ISPD98 benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ispd98Profile {
    /// Benchmark name, `"ibm01"` … `"ibm18"`.
    pub name: &'static str,
    /// Number of cells (movable modules + pads).
    pub cells: usize,
    /// Number of nets.
    pub nets: usize,
    /// Number of pins.
    pub pins: usize,
    /// Whether the design contains large macro cells (drives the
    /// actual-area / corking behaviour; all IBM designs do).
    pub has_macros: bool,
}

impl Ispd98Profile {
    /// Average net size implied by the profile.
    pub fn avg_net_size(&self) -> f64 {
        self.pins as f64 / self.nets as f64
    }

    /// Average vertex degree implied by the profile.
    pub fn avg_degree(&self) -> f64 {
        self.pins as f64 / self.cells as f64
    }

    /// Looks a profile up by 1-based index (`1` → ibm01).
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `1..=18`.
    pub fn by_index(index: usize) -> &'static Ispd98Profile {
        assert!(
            (1..=18).contains(&index),
            "ISPD98 index must be 1..=18, got {index}"
        );
        &IBM_PROFILES[index - 1]
    }

    /// Looks a profile up by name (`"ibm01"`).
    pub fn by_name(name: &str) -> Option<&'static Ispd98Profile> {
        IBM_PROFILES.iter().find(|p| p.name == name)
    }
}

/// The eighteen IBM benchmark profiles, in order.
pub const IBM_PROFILES: [Ispd98Profile; 18] = [
    Ispd98Profile {
        name: "ibm01",
        cells: 12_752,
        nets: 14_111,
        pins: 50_566,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm02",
        cells: 19_601,
        nets: 19_584,
        pins: 81_199,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm03",
        cells: 23_136,
        nets: 27_401,
        pins: 93_573,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm04",
        cells: 27_507,
        nets: 31_970,
        pins: 105_859,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm05",
        cells: 29_347,
        nets: 28_446,
        pins: 126_308,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm06",
        cells: 32_498,
        nets: 34_826,
        pins: 128_182,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm07",
        cells: 45_926,
        nets: 48_117,
        pins: 175_639,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm08",
        cells: 51_309,
        nets: 50_513,
        pins: 204_890,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm09",
        cells: 53_395,
        nets: 60_902,
        pins: 222_088,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm10",
        cells: 69_429,
        nets: 75_196,
        pins: 297_567,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm11",
        cells: 70_558,
        nets: 81_454,
        pins: 280_786,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm12",
        cells: 71_076,
        nets: 77_240,
        pins: 317_760,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm13",
        cells: 84_199,
        nets: 99_666,
        pins: 357_075,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm14",
        cells: 147_605,
        nets: 152_772,
        pins: 546_816,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm15",
        cells: 161_570,
        nets: 186_608,
        pins: 715_823,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm16",
        cells: 183_484,
        nets: 190_048,
        pins: 778_823,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm17",
        cells: 185_495,
        nets: 189_581,
        pins: 860_036,
        has_macros: true,
    },
    Ispd98Profile {
        name: "ibm18",
        cells: 210_613,
        nets: 201_920,
        pins: 819_697,
        has_macros: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_attributes() {
        for p in &IBM_PROFILES {
            // "number of hyperedges very close to the number of vertices"
            let ratio = p.nets as f64 / p.cells as f64;
            assert!((0.8..=1.3).contains(&ratio), "{}: ratio {ratio}", p.name);
            // "average net sizes typically between 3 and 5"
            let avg = p.avg_net_size();
            assert!((3.0..=5.0).contains(&avg), "{}: avg net {avg}", p.name);
            let deg = p.avg_degree();
            assert!((3.0..=5.0).contains(&deg), "{}: avg deg {deg}", p.name);
        }
    }

    #[test]
    fn by_index_and_name_agree() {
        assert_eq!(Ispd98Profile::by_index(1).name, "ibm01");
        assert_eq!(Ispd98Profile::by_index(18).name, "ibm18");
        assert_eq!(
            Ispd98Profile::by_name("ibm05").unwrap().cells,
            IBM_PROFILES[4].cells
        );
        assert!(Ispd98Profile::by_name("ibm99").is_none());
    }

    #[test]
    #[should_panic(expected = "1..=18")]
    fn index_zero_panics() {
        let _ = Ispd98Profile::by_index(0);
    }

    #[test]
    fn sizes_are_monotone_enough() {
        // ibm18 is the largest; ibm01 the smallest.
        assert!(IBM_PROFILES[17].cells > IBM_PROFILES[0].cells * 15);
    }
}
