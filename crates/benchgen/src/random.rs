//! Structure-free random hypergraphs for property-based testing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hypart_hypergraph::{Hypergraph, HypergraphBuilder, VertexId};

/// Generates a random hypergraph with `vertices` vertices and `nets` nets,
/// each net a uniform sample of 2..=`max_net_size` distinct vertices;
/// vertex weights uniform in 1..=`max_vertex_weight`.
///
/// # Panics
///
/// Panics if `vertices < 2`, `max_net_size < 2`, or `max_vertex_weight == 0`.
pub fn random_hypergraph(
    vertices: usize,
    nets: usize,
    max_net_size: usize,
    max_vertex_weight: u64,
    seed: u64,
) -> Hypergraph {
    assert!(vertices >= 2, "need at least 2 vertices");
    assert!(max_net_size >= 2, "need max_net_size >= 2");
    assert!(max_vertex_weight >= 1, "need max_vertex_weight >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::with_capacity(vertices, nets);
    for _ in 0..vertices {
        builder.add_vertex(rng.gen_range(1..=max_vertex_weight));
    }
    for _ in 0..nets {
        let size = rng.gen_range(2..=max_net_size.min(vertices));
        let mut pins = Vec::with_capacity(size);
        while pins.len() < size {
            let v = VertexId::from_index(rng.gen_range(0..vertices));
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        builder.add_net(pins, 1).expect("pins valid");
    }
    builder
        .name(format!("rand{vertices}x{nets}"))
        .build()
        .expect("generated hypergraph is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_parameters() {
        let h = random_hypergraph(50, 80, 6, 10, 3);
        assert_eq!(h.num_vertices(), 50);
        assert_eq!(h.num_nets(), 80);
        assert!(h.max_net_size() <= 6);
        assert!(h.max_vertex_weight() <= 10);
        h.validate().unwrap();
    }

    #[test]
    fn nets_have_at_least_two_pins() {
        let h = random_hypergraph(10, 30, 4, 1, 9);
        for e in h.nets() {
            assert!(h.net_size(e) >= 2);
        }
    }

    #[test]
    fn deterministic() {
        let a = random_hypergraph(20, 20, 5, 5, 42);
        let b = random_hypergraph(20, 20, 5, 5, 42);
        for e in a.nets() {
            assert_eq!(a.net_pins(e), b.net_pins(e));
        }
    }
}
