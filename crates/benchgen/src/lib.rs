//! Synthetic benchmark generation for VLSI hypergraph partitioning.
//!
//! The ISPD98 IBM suite and the MCNC suite the paper evaluates on are not
//! redistributable, so this crate synthesizes seeded stand-ins that match
//! the *salient attributes* the paper says drive partitioner behaviour
//! (§2.1): instance size, sparsity (|E| ≈ |V|), average degree and net
//! size between 3 and 5, a small number of very large (clock-like) nets,
//! and — crucially for the corking experiments — wide cell-area variation
//! with large macros.
//!
//! * [`ispd98_like`] — actual-area circuits following the published
//!   ibm01–ibm18 size profiles (scalable for quick runs);
//! * [`mcnc_like`] — small unit-area circuits (the regime that *masks*
//!   corking, per §2.3);
//! * [`random_hypergraph`] — structure-free random instances for property
//!   tests;
//! * [`toys`] — tiny deterministic instances with known optima;
//! * [`with_pad_ring`] — adds fixed terminals, emulating the top-down
//!   placement use model.
//!
//! All generators are deterministic functions of their explicit `u64`
//! seed.
//!
//! # Example
//!
//! ```
//! use hypart_benchgen::{ispd98_like, IBM_PROFILES};
//! use hypart_hypergraph::stats::InstanceStats;
//!
//! let h = ispd98_like(1, 0.05, 42); // 5 % scale ibm01-like
//! let s = InstanceStats::of(&h);
//! assert!(s.avg_net_size > 2.0 && s.avg_net_size < 6.0);
//! assert!(s.max_weight_fraction > 0.01); // macros exist
//! assert_eq!(IBM_PROFILES[0].name, "ibm01");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ispd98;
mod mcnc;
mod pads;
mod profile;
mod random;
pub mod toys;

pub use ispd98::ispd98_like;
pub use mcnc::mcnc_like;
pub use pads::with_pad_ring;
pub use profile::{Ispd98Profile, IBM_PROFILES};
pub use random::random_hypergraph;
