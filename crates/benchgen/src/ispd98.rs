//! ISPD98-like actual-area circuit synthesis.
//!
//! The generator reproduces the aggregate attributes of each IBM profile:
//!
//! * cell and net counts (scaled by the caller's `scale`);
//! * net-size distribution with the profile's average (a mass at 2-pin
//!   nets plus a geometric tail), and a *small number of extremely large
//!   nets* standing in for clock/reset trees;
//! * locality: pins are drawn near their driver in a latent linear
//!   arrangement, so good bisections with small cuts exist, as in real
//!   layouts;
//! * actual areas with wide variation: a deep-submicron drive-range body
//!   (1–16) plus large macros, the biggest holding several percent of
//!   total area — wide enough to exceed a 2 % balance window, which is
//!   what makes CLIP corking reproducible (§2.3).

use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::profile::Ispd98Profile;
use hypart_hypergraph::{Hypergraph, HypergraphBuilder, VertexId};

/// Fraction of nets that are "huge" (clock/reset-like).
const HUGE_NET_FRACTION: f64 = 0.001;
/// Cap on huge-net size as a fraction of the cell count.
const HUGE_NET_MAX_FRACTION: f64 = 0.05;
/// Fraction of cells that are macros.
const MACRO_FRACTION: f64 = 0.002;

/// Generates an ISPD98-like circuit for benchmark `index` (1..=18) at the
/// given `scale` (1.0 = full published size; use e.g. 0.05 for quick
/// experiments), deterministically from `seed`.
///
/// The instance name records the index and scale, e.g. `"ibm01s@0.05"`.
///
/// # Panics
///
/// Panics if `index` is not in `1..=18` or `scale` is not in `(0, 1]`.
pub fn ispd98_like(index: usize, scale: f64, seed: u64) -> Hypergraph {
    let profile = Ispd98Profile::by_index(index);
    assert!(
        scale > 0.0 && scale <= 1.0,
        "scale must be in (0, 1], got {scale}"
    );
    let n = ((profile.cells as f64 * scale).round() as usize).max(16);
    let m = ((profile.nets as f64 * scale).round() as usize).max(16);
    let avg_net = profile.avg_net_size();
    let mut rng = SmallRng::seed_from_u64(seed ^ (index as u64) << 32);

    let mut builder = HypergraphBuilder::with_capacity(n, m);

    // --- Areas: drive-range body + macros --------------------------------
    // Body: discrete log-uniform over 1..=16 (deep-submicron drive range).
    // Macros: MACRO_FRACTION of cells get areas of 100–2000 body units,
    // and one "giant" macro gets ~4 % of expected total area so that 2 %
    // windows exhibit corking, as on the real ibm designs.
    let num_macros = ((n as f64 * MACRO_FRACTION).round() as usize).max(2);
    let expected_body_total: f64 = n as f64 * 5.3; // E[log-uniform 1..=16]
                                                   // Macro areas scale with the design so the area *profile* (fractions
                                                   // of total) is scale-invariant: the giant macro holds ~4 % of the
                                                   // area, other macros 0.2-2 % — wide enough to exceed a 2 % balance
                                                   // window (corking), never so wide that 10 % windows become infeasible.
    let giant_area = ((expected_body_total * 0.04) as u64).max(32);
    let macro_low = ((expected_body_total * 0.002) as u64).max(16);
    let macro_high = ((expected_body_total * 0.02) as u64).max(macro_low + 1);
    for i in 0..n {
        let area = if i == 0 {
            giant_area
        } else if i < num_macros {
            rng.gen_range(macro_low..=macro_high)
        } else {
            log_uniform_1_16(&mut rng)
        };
        builder.add_vertex(area);
    }

    // --- Nets: locality in a latent linear arrangement -------------------
    // Each net has a driver at a random position; sinks are offset from the
    // driver by geometrically distributed distances, giving the linear
    // locality that makes min-cut structure (and hence partitioning
    // research) meaningful. Macros participate like any other cell, so
    // high-degree/high-area correlation emerges at the huge nets.
    let huge_nets = ((m as f64 * HUGE_NET_FRACTION).ceil() as usize).max(1);
    let two_pin_mass = 0.55f64;
    // Solve the geometric tail mean so the overall average matches:
    // avg = 2 + (1 - two_pin_mass) * tail_mean  (tail adds extra pins past 2)
    let tail_mean = ((avg_net - 2.0) / (1.0 - two_pin_mass)).max(0.25);
    let reach = (n / 20).clamp(4, 2000); // locality window half-width

    for net_idx in 0..m {
        let size = if net_idx < huge_nets {
            let cap = ((n as f64 * HUGE_NET_MAX_FRACTION) as usize).max(60);
            rng.gen_range(60..=cap.max(61))
        } else if rng.gen::<f64>() < two_pin_mass {
            2
        } else {
            2 + sample_geometric(&mut rng, tail_mean).min(40)
        };
        let driver = rng.gen_range(0..n);
        let mut pins = Vec::with_capacity(size);
        pins.push(VertexId::from_index(driver));
        let mut guard = 0;
        while pins.len() < size && guard < size * 8 {
            guard += 1;
            let offset = 1 + sample_geometric(&mut rng, reach as f64 / 3.0);
            let target = if rng.gen::<bool>() {
                driver.saturating_add(offset)
            } else {
                driver.saturating_sub(offset)
            };
            let target = target.min(n - 1);
            let vid = VertexId::from_index(target);
            if !pins.contains(&vid) {
                pins.push(vid);
            }
        }
        builder
            .add_net(pins, 1)
            .expect("generated pins are always valid");
    }

    builder
        .name(format!("{}s@{scale}", profile.name))
        .build()
        .expect("generated hypergraph is always valid")
}

/// Discrete log-uniform sample over `1..=16`.
fn log_uniform_1_16<R: Rng>(rng: &mut R) -> u64 {
    let exp = rand::distributions::Uniform::new(0.0f64, 4.0).sample(rng);
    (2f64.powf(exp)).floor() as u64
}

/// Geometric-ish sample with the given mean (floor of an exponential).
fn sample_geometric<R: Rng>(rng: &mut R, mean: f64) -> usize {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-u.ln() * mean).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_hypergraph::stats::InstanceStats;

    #[test]
    fn matches_profile_counts_at_scale() {
        let h = ispd98_like(1, 0.1, 7);
        let p = Ispd98Profile::by_index(1);
        assert_eq!(h.num_vertices(), (p.cells as f64 * 0.1).round() as usize);
        assert_eq!(h.num_nets(), (p.nets as f64 * 0.1).round() as usize);
        h.validate().unwrap();
    }

    #[test]
    fn aggregate_shape_matches_paper_attributes() {
        for index in [1, 3, 5] {
            let h = ispd98_like(index, 0.08, 11);
            let s = InstanceStats::of(&h);
            assert!(
                (2.2..=5.5).contains(&s.avg_net_size),
                "ibm{index:02}: avg net {}",
                s.avg_net_size
            );
            assert!(s.num_large_nets >= 1, "ibm{index:02}: no clock-like nets");
            assert!(
                s.max_weight_fraction > 0.02,
                "ibm{index:02}: biggest macro only {} of area — corking impossible",
                s.max_weight_fraction
            );
            assert!(!h.is_unit_area());
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = ispd98_like(2, 0.05, 99);
        let b = ispd98_like(2, 0.05, 99);
        assert_eq!(a.num_pins(), b.num_pins());
        for e in a.nets() {
            assert_eq!(a.net_pins(e), b.net_pins(e));
        }
        let c = ispd98_like(2, 0.05, 100);
        let differs = a.nets().any(|e| a.net_pins(e) != c.net_pins(e));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn locality_produces_partitionable_structure() {
        // A contiguous half-split along the latent arrangement should cut
        // far fewer nets than a random interleave.
        use hypart_hypergraph::PartId;
        let h = ispd98_like(1, 0.05, 3);
        let n = h.num_vertices();
        let contiguous: Vec<PartId> = (0..n)
            .map(|i| if i < n / 2 { PartId::P0 } else { PartId::P1 })
            .collect();
        let interleaved: Vec<PartId> = (0..n)
            .map(|i| if i % 2 == 0 { PartId::P0 } else { PartId::P1 })
            .collect();
        let cut_contig = hypart_core_free_cut(&h, &contiguous);
        let cut_inter = hypart_core_free_cut(&h, &interleaved);
        assert!(
            cut_contig * 3 < cut_inter,
            "contiguous {cut_contig} vs interleaved {cut_inter}"
        );
    }

    /// Local cut computation (this crate must not depend on hypart-core).
    fn hypart_core_free_cut(h: &Hypergraph, parts: &[hypart_hypergraph::PartId]) -> usize {
        h.nets()
            .filter(|&e| {
                let mut seen = [false; 2];
                for &v in h.net_pins(e) {
                    seen[parts[v.index()].index()] = true;
                }
                seen[0] && seen[1]
            })
            .count()
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = ispd98_like(1, 0.0, 1);
    }

    #[test]
    fn name_encodes_index_and_scale() {
        let h = ispd98_like(4, 0.25, 0);
        assert_eq!(h.name(), "ibm04s@0.25");
    }
}
