//! MCNC-like unit-area circuit synthesis.
//!
//! The paper notes (§2.3, footnote 4) that "the older MCNC test cases lack
//! large cells, and have historically been used in 'unit-area' mode" —
//! which is exactly the regime that masked CLIP corking. This generator
//! produces such instances: small, unit-area, no macros, no huge nets.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hypart_hypergraph::{Hypergraph, HypergraphBuilder, VertexId};

/// Generates an MCNC-like unit-area circuit with `cells` cells,
/// deterministically from `seed`. Net count ≈ cells, average net size
/// ≈ 3, maximum net size 12, all areas 1.
///
/// # Panics
///
/// Panics if `cells < 8`.
pub fn mcnc_like(cells: usize, seed: u64) -> Hypergraph {
    assert!(cells >= 8, "mcnc_like needs at least 8 cells, got {cells}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let nets = cells;
    let mut builder = HypergraphBuilder::with_capacity(cells, nets);
    builder.add_vertices(cells, 1);
    let reach = (cells / 16).clamp(3, 200);
    for _ in 0..nets {
        let size = match rng.gen_range(0u32..100) {
            0..=54 => 2,
            55..=79 => 3,
            80..=91 => 4,
            92..=96 => 5,
            _ => rng.gen_range(6..=12usize.min(cells)),
        };
        let driver = rng.gen_range(0..cells);
        let mut pins = vec![VertexId::from_index(driver)];
        let mut guard = 0;
        while pins.len() < size && guard < size * 8 {
            guard += 1;
            let offset = rng.gen_range(1..=reach);
            let target = if rng.gen::<bool>() {
                driver.saturating_add(offset)
            } else {
                driver.saturating_sub(offset)
            }
            .min(cells - 1);
            let vid = VertexId::from_index(target);
            if !pins.contains(&vid) {
                pins.push(vid);
            }
        }
        builder.add_net(pins, 1).expect("pins valid");
    }
    builder
        .name(format!("mcnc{cells}"))
        .build()
        .expect("generated hypergraph is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypart_hypergraph::stats::InstanceStats;

    #[test]
    fn unit_area_no_macros_no_huge_nets() {
        let h = mcnc_like(500, 5);
        assert!(h.is_unit_area());
        let s = InstanceStats::of(&h);
        assert_eq!(s.max_vertex_weight, 1);
        assert_eq!(s.num_large_nets, 0);
        assert!(s.max_net_size <= 12);
        assert!((2.0..=4.5).contains(&s.avg_net_size), "{}", s.avg_net_size);
        h.validate().unwrap();
    }

    #[test]
    fn deterministic() {
        let a = mcnc_like(100, 1);
        let b = mcnc_like(100, 1);
        assert_eq!(a.num_pins(), b.num_pins());
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn too_small_panics() {
        let _ = mcnc_like(4, 0);
    }
}
