//! Tiny deterministic instances with known optimal cuts, for tests,
//! examples, and sanity benches.

use hypart_hypergraph::{Hypergraph, HypergraphBuilder, VertexId};

/// A cycle of `n` unit vertices connected by `n` 2-pin nets. Optimal
/// balanced bisection cut: 2.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Hypergraph {
    assert!(n >= 3, "ring needs at least 3 vertices");
    let mut b = HypergraphBuilder::with_capacity(n, n);
    let first = b.add_vertices(n, 1);
    for i in 0..n {
        let u = VertexId::new(first.raw() + i as u32);
        let v = VertexId::new(first.raw() + ((i + 1) % n) as u32);
        b.add_net([u, v], 1).expect("pins valid");
    }
    b.name(format!("ring{n}")).build().expect("valid")
}

/// A `w × h` grid of unit vertices with 2-pin nets between 4-neighbors.
/// Optimal balanced bisection cut: `min(w, h)` (a straight cutline).
///
/// # Panics
///
/// Panics if `w < 2` or `h < 2`.
pub fn grid(w: usize, h: usize) -> Hypergraph {
    assert!(w >= 2 && h >= 2, "grid needs at least 2x2");
    let mut b = HypergraphBuilder::with_capacity(w * h, 2 * w * h);
    b.add_vertices(w * h, 1);
    let at = |x: usize, y: usize| VertexId::from_index(y * w + x);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_net([at(x, y), at(x + 1, y)], 1).expect("pins valid");
            }
            if y + 1 < h {
                b.add_net([at(x, y), at(x, y + 1)], 1).expect("pins valid");
            }
        }
    }
    b.name(format!("grid{w}x{h}")).build().expect("valid")
}

/// Two unit-weight cliques of `k` vertices each, bridged by `bridges`
/// 2-pin nets. Optimal balanced bisection cut: `bridges`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn two_clusters(k: usize, bridges: usize) -> Hypergraph {
    assert!(k >= 2, "clusters need at least 2 vertices each");
    let mut b = HypergraphBuilder::new();
    let left: Vec<_> = (0..k).map(|_| b.add_vertex(1)).collect();
    let right: Vec<_> = (0..k).map(|_| b.add_vertex(1)).collect();
    for grp in [&left, &right] {
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_net([grp[i], grp[j]], 1).expect("pins valid");
            }
        }
    }
    for i in 0..bridges {
        b.add_net([left[i % k], right[i % k]], 1)
            .expect("pins valid");
    }
    b.name(format!("clusters{k}b{bridges}"))
        .build()
        .expect("valid")
}

/// A star: one hub vertex on `leaves` 2-pin nets, plus a chain through the
/// leaves so the graph is connected beyond the hub. The hub has the highest
/// degree — useful for exercising high-degree corner cases.
///
/// # Panics
///
/// Panics if `leaves < 2`.
pub fn star(leaves: usize) -> Hypergraph {
    assert!(leaves >= 2, "star needs at least 2 leaves");
    let mut b = HypergraphBuilder::new();
    let hub = b.add_vertex(1);
    let leaf: Vec<_> = (0..leaves).map(|_| b.add_vertex(1)).collect();
    for &l in &leaf {
        b.add_net([hub, l], 1).expect("pins valid");
    }
    for w in leaf.windows(2) {
        b.add_net([w[0], w[1]], 1).expect("pins valid");
    }
    b.name(format!("star{leaves}")).build().expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let h = ring(8);
        assert_eq!(h.num_vertices(), 8);
        assert_eq!(h.num_nets(), 8);
        assert_eq!(h.max_vertex_degree(), 2);
        h.validate().unwrap();
    }

    #[test]
    fn grid_shape() {
        let h = grid(4, 3);
        assert_eq!(h.num_vertices(), 12);
        assert_eq!(h.num_nets(), 3 * 3 + 4 * 2); // horizontal + vertical
        h.validate().unwrap();
    }

    #[test]
    fn two_clusters_shape() {
        let h = two_clusters(4, 2);
        assert_eq!(h.num_vertices(), 8);
        assert_eq!(h.num_nets(), 2 * 6 + 2);
        h.validate().unwrap();
    }

    #[test]
    fn star_hub_has_max_degree() {
        let h = star(10);
        assert_eq!(h.vertex_degree(VertexId::new(0)), 10);
        assert_eq!(h.max_vertex_degree(), 10);
        h.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = ring(2);
    }
}
