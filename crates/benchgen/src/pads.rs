//! Fixed-terminal ("pad") augmentation.
//!
//! In top-down placement "almost all hypergraph partitioning instances
//! have many vertices fixed in partitions due to terminal propagation or
//! pad locations" (§2.1). This helper turns any instance into such a
//! fixed-terminal instance.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use hypart_hypergraph::{Hypergraph, PartId};

/// Returns a copy of `h` with `count` randomly chosen free vertices fixed,
/// alternating between the two partitions (so the fixed area is split
/// roughly evenly, as terminal propagation produces).
///
/// If fewer than `count` free vertices exist, all of them are fixed.
pub fn with_pad_ring(h: &Hypergraph, count: usize, seed: u64) -> Hypergraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut free: Vec<_> = h.vertices().filter(|&v| !h.is_fixed(v)).collect();
    free.shuffle(&mut rng);
    let mut out = h.clone();
    for (i, &v) in free.iter().take(count).enumerate() {
        let part = if i % 2 == 0 { PartId::P0 } else { PartId::P1 };
        out = out.with_fixed(v, Some(part));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcnc_like;

    #[test]
    fn fixes_requested_count_alternating() {
        let h = mcnc_like(100, 1);
        let fixed = with_pad_ring(&h, 10, 2);
        assert_eq!(fixed.num_fixed(), 10);
        let p0 = fixed
            .vertices()
            .filter(|&v| fixed.fixed_part(v) == Some(PartId::P0))
            .count();
        assert_eq!(p0, 5);
    }

    #[test]
    fn caps_at_available_free_vertices() {
        let h = mcnc_like(16, 1);
        let fixed = with_pad_ring(&h, 1000, 2);
        assert_eq!(fixed.num_fixed(), 16);
    }

    #[test]
    fn original_is_untouched() {
        let h = mcnc_like(32, 1);
        let _ = with_pad_ring(&h, 8, 2);
        assert_eq!(h.num_fixed(), 0);
    }
}
