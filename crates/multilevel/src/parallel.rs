//! The shared-memory parallel multilevel engine: parallel hierarchy
//! construction, a parallel initial-partition portfolio, and parallel
//! refinement by synchronized move rounds.
//!
//! Selected by [`MlConfig::threads`] `>= 1`; `threads == 0` keeps the
//! serial legacy engine. The lane count is a *logical* knob: it shapes the
//! work decomposition, while the physical worker count comes from the
//! rayon pool. In deterministic mode ([`MlConfig::deterministic`], the
//! default) the run is a pure function of `(graph, config, seed)` —
//! independent of both the lane count and the physical thread count — so
//! traces are bitwise identical at any `RAYON_NUM_THREADS`. In relaxed
//! mode results may vary with the lane count but are always race-free and
//! audit-clean: speculation reads frozen snapshots, and every state
//! mutation happens on the serial commit path.
//!
//! Budgets, cancellation, auditing, and fault isolation flow through the
//! same [`RunCtx`] plumbing as the serial engine: deadlines and cancel
//! tokens are polled at level and round boundaries, the final whole-run
//! audit checkpoint is identical, and a panicking portfolio try or
//! refinement shard degrades the run to the best of the survivors
//! ([`RunEvent::StartAborted`] / `ShardAborted`) instead of poisoning a
//! lock or hanging the pool.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coarsen::CoarseLevel;
use crate::par_coarsen::build_hierarchy_par_with;
use crate::partitioner::{emit_level_downs, MlConfig, MlOutcome, MlPartitioner};
use hypart_core::{
    derive_seed, ensure_lanes, generate_initial, refine_rounds_parallel, AuditError,
    BalanceConstraint, Bisection, FmPartitioner, InitialSolution, ParLane, PartitionAuditor,
    RunCtx, StopReason,
};
use hypart_hypergraph::{Hypergraph, PartId};
use hypart_trace::{MemorySink, NullSink, RunEvent, TraceSink};

/// Vertex-count threshold for parallel refinement: levels at or above it
/// are refined by the synchronized-round engine, smaller levels by the
/// serial flat engine. A *size* threshold — never a thread-count test —
/// so the dispatch (and the shared rng consumption of the serial levels)
/// is identical for every lane count.
pub const PAR_REFINE_MIN_VERTICES: usize = 256;

/// One completed initial-portfolio try, buffered on its worker lane.
struct TryResult {
    violation: u64,
    cut: u64,
    assignment: Vec<PartId>,
    audit_failure: Option<AuditError>,
    buffer: MemorySink,
}

impl MlPartitioner {
    /// Parallel counterpart of [`run_with`](MlPartitioner::run_with);
    /// entered from it when [`MlConfig::threads`] `>= 1`.
    pub(crate) fn run_parallel_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        ctx: &mut RunCtx<'_>,
    ) -> MlOutcome {
        let config = self.config().clone();
        let lane_count = config.threads.max(1);
        ensure_lanes(&mut ctx.lanes, lane_count);
        let mut lanes = std::mem::take(&mut ctx.lanes);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let mut probe = ctx.probe();
        let levels = build_hierarchy_par_with(
            h,
            &config.coarsen,
            None,
            &mut rng,
            &mut ctx.coarsen,
            &mut lanes,
            config.deterministic,
            &mut probe,
        );
        emit_level_downs(&levels, ctx.sink);
        let coarsest: &Hypergraph = levels.last().map_or(h, |l| &l.graph);

        let mut audit_failure = None;
        let initial = parallel_initial(
            &config,
            coarsest,
            constraint,
            ctx,
            lane_count,
            &mut audit_failure,
        );
        let out = parallel_uncoarsen(
            &config,
            h,
            &levels,
            initial,
            constraint,
            &mut rng,
            ctx,
            &mut lanes,
            audit_failure,
        );
        ctx.lanes = lanes;
        out
    }

    /// Parallel counterpart of [`vcycle_with`](MlPartitioner::vcycle_with).
    pub(crate) fn vcycle_parallel_with(
        &self,
        h: &Hypergraph,
        constraint: &BalanceConstraint,
        assignment: &[PartId],
        ctx: &mut RunCtx<'_>,
    ) -> MlOutcome {
        assert_eq!(
            assignment.len(),
            h.num_vertices(),
            "assignment length mismatch"
        );
        let config = self.config().clone();
        let lane_count = config.threads.max(1);
        ensure_lanes(&mut ctx.lanes, lane_count);
        let mut lanes = std::mem::take(&mut ctx.lanes);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        let mut probe = ctx.probe();
        let levels = build_hierarchy_par_with(
            h,
            &config.coarsen,
            Some(assignment),
            &mut rng,
            &mut ctx.coarsen,
            &mut lanes,
            config.deterministic,
            &mut probe,
        );
        emit_level_downs(&levels, ctx.sink);

        // Project the current solution down the (restricted) hierarchy:
        // every cluster is on one side by construction.
        let mut coarse_assignment = assignment.to_vec();
        for level in &levels {
            let mut next = vec![PartId::P0; level.graph.num_vertices()];
            for (fine, coarse) in level.map.iter().enumerate() {
                next[coarse.index()] = coarse_assignment[fine];
            }
            coarse_assignment = next;
        }

        let out = parallel_uncoarsen(
            &config,
            h,
            &levels,
            coarse_assignment,
            constraint,
            &mut rng,
            ctx,
            &mut lanes,
            None,
        );
        ctx.lanes = lanes;
        out
    }
}

/// The parallel initial-partition portfolio: `initial_tries` seeded
/// starts, each a pure function of `derive_seed(ctx.seed, t)`, spread
/// over the lanes in contiguous chunks. Each try buffers its trace in a
/// private [`MemorySink`]; buffers are flushed in try order, so the
/// emitted stream — and the winner, chosen by `(violation, cut, try)` —
/// is independent of the lane count and the physical thread count.
///
/// A panicking try is dropped and announced with
/// [`RunEvent::StartAborted`]; the portfolio degrades to the best of the
/// survivors. Only if *every* try panics is try 0 re-run without the
/// panic boundary, so the underlying fault surfaces instead of being
/// silently swallowed.
///
/// # Seed schedule: intentional divergence from the serial engine
///
/// The serial engine's initial portfolio draws every try from **one**
/// shared `SmallRng` stream seeded with `ctx.seed` (and already advanced
/// by hierarchy construction), so try *t*'s randomness depends on how
/// much entropy tries `0..t` consumed. That schedule is inherently
/// sequential — it cannot be decomposed across lanes without replaying
/// the predecessors. The parallel engine therefore gives try *t* its own
/// pure seed `derive_seed(ctx.seed, t)` (SplitMix64), which is what makes
/// the portfolio lane-count-invariant: any lane can run any try and
/// produce the identical result. The two engines consequently produce
/// **different** (each internally deterministic) results for the same
/// `(instance, config, seed)` — including at `threads: 1`, which selects
/// the parallel engine's schedule with one lane, *not* the serial
/// engine's schedule. `threads: 0` is the serial schedule. This contract
/// is pinned by `tests/seed_schedule.rs`.
fn parallel_initial(
    config: &MlConfig,
    coarsest: &Hypergraph,
    constraint: &BalanceConstraint,
    ctx: &mut RunCtx<'_>,
    lane_count: usize,
    audit_failure: &mut Option<AuditError>,
) -> Vec<PartId> {
    let tries = config.initial_tries.max(1);
    let engine = FmPartitioner::new(config.refine);
    let base_seed = ctx.seed;
    let traced = ctx.sink.is_enabled();
    let deadline = ctx.deadline();
    let token = ctx.cancel_token();
    let check_moves = ctx.move_check_interval();
    let audit = ctx.audit();
    let fault = ctx.fault_plan().clone();

    let run_try = |t: usize, buffer: &MemorySink| -> (u64, u64, Vec<PartId>, Option<AuditError>) {
        fault.trip_start(t as u64);
        let seed = derive_seed(base_seed, t as u64);
        let sink: &dyn TraceSink = if traced { buffer } else { &NullSink };
        let mut child = RunCtx::new(seed)
            .with_cancel_token(token.clone())
            .with_move_check_interval(check_moves)
            .with_audit(audit)
            .with_fault_plan(fault.clone())
            .with_sink(sink);
        if let Some(d) = deadline {
            child = child.with_deadline(d);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let rule = if t.is_multiple_of(2) {
            InitialSolution::AreaSortedGreedy
        } else {
            InitialSolution::RandomBalanced
        };
        let parts = generate_initial(coarsest, rule, &mut rng);
        let mut bisection = match Bisection::new(coarsest, parts) {
            Ok(b) => b,
            Err(e) => unreachable!("generated initial is valid: {e}"),
        };
        let stats = engine.refine_with(&mut bisection, constraint, &mut rng, &mut child);
        (
            constraint.total_violation(&bisection),
            bisection.cut(),
            bisection.into_assignment(),
            stats.audit_failure,
        )
    };

    let mut slots: Vec<Option<TryResult>> = Vec::new();
    slots.resize_with(tries, || None);
    {
        let run_try = &run_try;
        let chunk_len = tries.div_ceil(lane_count).max(1);
        rayon::scope(|sc| {
            let mut rest: &mut [Option<TryResult>] = &mut slots;
            let mut t0 = 0usize;
            while !rest.is_empty() {
                let take = chunk_len.min(rest.len());
                let (chunk, r) = rest.split_at_mut(take);
                rest = r;
                let start_t = t0;
                sc.spawn(move |_| {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        let t = start_t + j;
                        let buffer = MemorySink::new();
                        let attempt = catch_unwind(AssertUnwindSafe(|| run_try(t, &buffer)));
                        *slot = attempt
                            .ok()
                            .map(|(violation, cut, assignment, af)| TryResult {
                                violation,
                                cut,
                                assignment,
                                audit_failure: af,
                                buffer,
                            });
                    }
                });
                t0 += take;
            }
        });
    }

    // Flush, merge, and select in try order: the stream and the winner
    // are pure functions of the per-try results.
    let mut best: Option<(u64, u64, usize)> = None;
    for (t, slot) in slots.iter().enumerate() {
        match slot {
            Some(r) => {
                if traced {
                    r.buffer.flush_into(ctx.sink);
                }
                if audit_failure.is_none() {
                    *audit_failure = r.audit_failure.clone();
                }
                if best.is_none_or(|(v, c, _)| (r.violation, r.cut) < (v, c)) {
                    best = Some((r.violation, r.cut, t));
                }
            }
            None => {
                ctx.sink.emit(RunEvent::StartAborted {
                    index: t as u64,
                    seed: derive_seed(base_seed, t as u64),
                });
            }
        }
    }
    match best {
        Some((_, _, t)) => match slots.into_iter().nth(t).flatten() {
            Some(r) => r.assignment,
            None => unreachable!("the selected try was observed above"),
        },
        None => {
            // Every try panicked: re-run try 0 unprotected so the fault
            // propagates to the caller's isolation boundary.
            let buffer = MemorySink::new();
            let (_, _, assignment, af) = run_try(0, &buffer);
            if traced {
                buffer.flush_into(ctx.sink);
            }
            if audit_failure.is_none() {
                *audit_failure = af;
            }
            assignment
        }
    }
}

/// Parallel counterpart of the serial uncoarsening loop: project level by
/// level, refining large levels with the synchronized-round engine and
/// small levels with the serial flat engine. Identical budget handling
/// and final whole-run audit checkpoint to the serial path.
#[allow(clippy::too_many_arguments)]
fn parallel_uncoarsen<R: Rng>(
    config: &MlConfig,
    h: &Hypergraph,
    levels: &[CoarseLevel],
    coarsest_assignment: Vec<PartId>,
    constraint: &BalanceConstraint,
    rng: &mut R,
    ctx: &mut RunCtx<'_>,
    lanes: &mut [ParLane],
    mut audit_failure: Option<AuditError>,
) -> MlOutcome {
    let engine = FmPartitioner::new(config.refine);
    let mut corked_passes = 0usize;
    let mut total_passes = 0usize;
    let mut assignment = coarsest_assignment;
    let mut probe = ctx.probe();
    let mut stopped = StopReason::Completed;

    for i in (0..=levels.len()).rev() {
        let graph: &Hypergraph = if i == 0 { h } else { &levels[i - 1].graph };
        if i < levels.len() {
            assignment = levels[i].project(&assignment);
        }
        if stopped.is_stopped() {
            continue;
        }
        if let Some(reason) = probe.stop_now() {
            stopped = reason;
            ctx.sink.emit(RunEvent::BudgetExhausted { reason });
            continue;
        }
        if ctx.sink.is_enabled() {
            ctx.sink.emit(RunEvent::LevelUp {
                level: i,
                vertices: graph.num_vertices(),
                nets: graph.num_nets(),
            });
        }
        let mut bisection = match Bisection::new(graph, assignment) {
            Ok(b) => b,
            Err(e) => unreachable!("projected assignment is valid: {e}"),
        };
        if graph.num_vertices() >= PAR_REFINE_MIN_VERTICES {
            let out = refine_rounds_parallel(&mut bisection, constraint, lanes, ctx);
            total_passes += out.rounds;
            if audit_failure.is_none() {
                audit_failure = out.audit_failure;
            }
            stopped = out.stopped;
        } else {
            let stats = engine.refine_with(&mut bisection, constraint, rng, ctx);
            corked_passes += stats.corked_passes();
            total_passes += stats.num_passes();
            if audit_failure.is_none() {
                audit_failure = stats.audit_failure.clone();
            }
            stopped = stats.stopped;
        }
        assignment = bisection.into_assignment();
    }

    let bisection = match Bisection::new(h, assignment) {
        Ok(b) => b,
        Err(e) => unreachable!("refined assignment is valid: {e}"),
    };
    let balanced = constraint.is_satisfied(&bisection);
    // Final whole-run checkpoint, identical to the serial engine's:
    // re-verify the claimed solution on the input graph from scratch.
    if ctx.audit().is_on() {
        let window = balanced.then(|| (constraint.lower(), constraint.upper()));
        if let Err(e) = PartitionAuditor::audit_bisection(&bisection, window) {
            ctx.sink.emit(RunEvent::InvariantViolation {
                check: e.check().to_string(),
                detail: e.to_string(),
            });
            if audit_failure.is_none() {
                audit_failure = Some(e);
            }
        }
    }
    MlOutcome {
        cut: bisection.cut(),
        balanced,
        levels: levels.len(),
        corked_passes,
        total_passes,
        stopped,
        audit_failure,
        assignment: bisection.into_assignment(),
    }
}
